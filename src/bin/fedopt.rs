//! The `fedopt` CLI: the eight historical per-figure binaries as one spec-driven tool.
//! All logic lives in [`fedopt::experiments::cli`] so it is unit-testable; this wrapper only
//! forwards `argv`, prints the payload to stdout, and maps errors to exit codes
//! (2 = usage, 1 = runtime).
//!
//! The same executable plays both fleet roles: `run --shards N` makes it a coordinator
//! that spawns copies of itself (`std::env::current_exe`) as workers, and
//! `run --spec - --shard-json` makes it a worker that reads a shard spec from stdin,
//! heartbeats progress on stderr, and streams the checksummed shard result back on
//! stdout (see [`fedopt::experiments::shard`]). Workers also honor the
//! `FEDOPT_FAULT_PLAN` chaos variable ([`fedopt::experiments::fault`]), which is how
//! the crash/stall/corruption hardening of the coordinator is tested end to end.
//!
//! `serve` turns the same binary into a long-lived allocation service
//! ([`fedopt::experiments::serve`]): JSON-lines requests in, one typed JSON response
//! per request out, and SIGTERM drains gracefully instead of killing mid-response —
//! the only verb that traps a signal.

use std::process::ExitCode;

/// Routes SIGTERM into the serve module's drain flag so `fedopt serve` finishes
/// in-flight requests and exits with its stats line instead of dying mid-response.
/// The handler body is a single atomic store ([`request_drain`] is async-signal-safe
/// by construction); installation failure is ignored — the worst case is the
/// pre-handler behavior, a hard kill.
#[cfg(unix)]
fn install_sigterm_drain() {
    use fedopt::experiments::serve::request_drain;
    extern "C" fn on_sigterm(_signum: i32) {
        request_drain();
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the C standard library's handler registration; the handler
    // only performs an atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Graceful drain is a service concern: only the serve verb traps SIGTERM; every
    // other verb keeps the default die-now semantics (a killed sweep must not linger).
    #[cfg(unix)]
    if args.first().is_some_and(|arg| arg == "serve") {
        install_sigterm_drain();
    }
    match fedopt::experiments::cli::main_with(&args) {
        Ok(payload) => {
            print!("{payload}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedopt: {e}");
            if e.usage {
                eprintln!("\n{}", fedopt::experiments::cli::USAGE);
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
