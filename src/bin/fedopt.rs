//! The `fedopt` CLI: the eight historical per-figure binaries as one spec-driven tool.
//! All logic lives in [`fedopt::experiments::cli`] so it is unit-testable; this wrapper only
//! forwards `argv`, prints the payload to stdout, and maps errors to exit codes
//! (2 = usage, 1 = runtime).
//!
//! The same executable plays both fleet roles: `run --shards N` makes it a coordinator
//! that spawns copies of itself (`std::env::current_exe`) as workers, and
//! `run --spec - --shard-json` makes it a worker that reads a shard spec from stdin,
//! heartbeats progress on stderr, and streams the checksummed shard result back on
//! stdout (see [`fedopt::experiments::shard`]). Workers also honor the
//! `FEDOPT_FAULT_PLAN` chaos variable ([`fedopt::experiments::fault`]), which is how
//! the crash/stall/corruption hardening of the coordinator is tested end to end.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fedopt::experiments::cli::main_with(&args) {
        Ok(payload) => {
            print!("{payload}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fedopt: {e}");
            if e.usage {
                eprintln!("\n{}", fedopt::experiments::cli::USAGE);
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
