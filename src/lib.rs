//! # fedopt
//!
//! A reproduction of *"Joint Optimization of Energy Consumption and Completion Time in
//! Federated Learning"* (Zhou, Zhao, Han, Guet — IEEE ICDCS 2022).
//!
//! The crate is a facade over the workspace members; most users only need the re-exports
//! below.
//!
//! ## Running experiments: the spec API
//!
//! The blessed way to describe and run a sweep is the declarative
//! [`ExperimentSpec`]: a serializable value holding
//! the sweep axis, scenario template, arms, seed policy, solver and engine options, and
//! the reports to render. The paper's figures are preset specs in
//! [`presets`], and the `fedopt` binary
//! (`cargo run --release --bin fedopt`) runs any of them — or any spec JSON file.
//!
//! ```rust
//! use fedopt::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut spec = fedopt::presets::spec(2, fedopt::presets::Variant::Quick).unwrap();
//! spec.scenario.devices = Some(6); // shrink the doctest
//! spec.seeds = fedopt::experiments::spec::SeedSpec::count(1);
//!
//! // Specs are data: lossless JSON round trip, byte-stable serialization.
//! let text = spec.to_json_string();
//! assert_eq!(ExperimentSpec::from_json_str(&text)?, spec);
//!
//! let run = spec.run_with_engine(&SweepEngine::single_thread())?;
//! println!("{}", run.reports[0].to_table_string());
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart
//!
//! ```rust
//! use fedopt::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the simulation scenario used in Section VII-A of the paper (50 devices,
//! // 500 m disc, 20 MHz, 12 dBm power cap, 2 GHz frequency cap).
//! let scenario = ScenarioBuilder::paper_default().with_devices(10).build(42)?;
//!
//! // Weighted objective: w1 on energy, w2 on completion time.
//! let weights = Weights::new(0.5, 0.5)?;
//!
//! let solver = JointOptimizer::new(SolverConfig::default());
//! let outcome = solver.solve(&scenario, weights)?;
//!
//! println!("energy = {:.2} J, delay = {:.2} s", outcome.total_energy_j, outcome.total_time_s);
//! assert!(outcome.allocation.is_feasible(&scenario, 1e-6));
//! # Ok(())
//! # }
//! ```
//!
//! ## Workspace layout
//!
//! | crate | contents |
//! |---|---|
//! | [`numopt`] | numerical-optimization substrate (Lambert W, bisection, projections, fractional programming) |
//! | [`wireless`] | FDMA channel model: path loss, shadowing, Shannon rate |
//! | [`flsys`] | FL system model: devices, energy/latency formulas, scenarios |
//! | [`fedopt_core`] | the paper's resource-allocation algorithm (Subproblems 1 & 2, Algorithm 2) |
//! | [`baselines`] | benchmark, communication-only, computation-only, Scheme 1 comparisons |
//! | [`fedsim`] | FedAvg training simulator with energy/time accounting |
//! | [`experiments`] | figure-by-figure reproduction harness for the paper's evaluation |

pub use baselines;
pub use experiments;
pub use fedopt_core;
pub use fedsim;
pub use flsys;
pub use numopt;
pub use wireless;

// The blessed experiment entry points, re-exported at the facade root.
pub use experiments::presets;
pub use experiments::spec;
pub use experiments::{ExperimentSpec, FigureReport, SpecError, SpecRun, SweepEngine};

/// Convenient re-exports of the types used by nearly every program built on this workspace.
pub mod prelude {
    pub use baselines::{
        BenchmarkAllocator, CommOnlyAllocator, CompOnlyAllocator, Scheme1Allocator,
    };
    pub use experiments::{ExperimentSpec, FigureReport, SweepEngine};
    pub use fedopt_core::{JointOptimizer, SolverConfig, SolverWorkspace, Weights};
    pub use flsys::{Allocation, Scenario, ScenarioBuilder, SystemParams};
    pub use wireless::units::{Db, Dbm, Hertz, Watts};
}
