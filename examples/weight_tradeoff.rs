//! The energy/latency trade-off knob: sweep the five weight pairs used in the paper's
//! evaluation and print the resulting operating points.
//!
//! The introduction motivates two extremes — low-battery devices (care about energy) and
//! latency-critical deployments such as connected vehicles (care about completion time). The
//! weight pair `(w1, w2)` selects the point on that trade-off curve.
//!
//! ```text
//! cargo run --release --example weight_tradeoff
//! ```

use fedopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioBuilder::paper_default().with_devices(20).build(7)?;
    let optimizer = JointOptimizer::new(SolverConfig::default());

    println!("{:>14} {:>14} {:>14} {:>18}", "(w1, w2)", "energy (J)", "time (s)", "scenario");
    let labels =
        ["low battery", "battery-leaning", "balanced", "latency-leaning", "latency-critical"];
    let mut previous_energy = f64::NEG_INFINITY;
    for (weights, label) in Weights::paper_sweep().into_iter().zip(labels) {
        let outcome = optimizer.solve(&scenario, weights)?;
        println!(
            "{:>14} {:>14.2} {:>14.2} {:>18}",
            format!("({:.1}, {:.1})", weights.energy(), weights.time()),
            outcome.total_energy_j,
            outcome.total_time_s,
            label
        );
        // The sweep moves from energy-focused to latency-focused, so energy rises monotonically.
        assert!(outcome.total_energy_j >= previous_energy * 0.95);
        previous_energy = outcome.total_energy_j;
    }

    println!("\nreading the table: move down the rows to trade joules for seconds.");
    Ok(())
}
