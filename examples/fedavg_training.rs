//! End-to-end federated training: run FedAvg on synthetic data twice — once under the
//! optimized resource allocation and once under the random benchmark — and compare the energy
//! and wall-clock cost of reaching the same model.
//!
//! The learning trajectory is identical in both runs (the allocation does not change the
//! math of FedAvg); what changes is what each round costs, which is exactly the quantity the
//! paper optimizes.
//!
//! ```text
//! cargo run --release --example fedavg_training
//! ```

use fedopt::fedsim::prelude::*;
use fedopt::fedsim::FedAvgConfig;
use fedopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = 10;
    let rounds = 30;
    let scenario = ScenarioBuilder::paper_default()
        .with_devices(devices)
        .with_global_rounds(rounds)
        .build(5)?;
    let dataset = FederatedDataset::synthetic(
        &SyntheticConfig::default().with_devices(devices).with_samples_per_device(120),
        5,
    );

    // Optimized allocation (balanced weights) vs the random benchmark.
    let optimizer = JointOptimizer::new(SolverConfig::default());
    let optimized = optimizer.solve(&scenario, Weights::balanced())?;
    let benchmark = BenchmarkAllocator::new().random_frequency(&scenario, 5)?;

    let runner = FedAvgRunner::new(FedAvgConfig::default());
    let run_opt = runner.run(&scenario, &optimized.allocation, &dataset)?;
    let run_bench = runner.run(&scenario, &benchmark.allocation, &dataset)?;

    println!("federated training of a logistic model, {rounds} global rounds, {devices} devices\n");
    println!("{:>24} {:>16} {:>16}", "", "optimized", "benchmark");
    println!(
        "{:>24} {:>16.3} {:>16.3}",
        "final test accuracy", run_opt.final_accuracy, run_bench.final_accuracy
    );
    println!(
        "{:>24} {:>16.3} {:>16.3}",
        "final training loss", run_opt.final_loss, run_bench.final_loss
    );
    println!(
        "{:>24} {:>16.2} {:>16.2}",
        "total energy (J)", run_opt.total_energy_j, run_bench.total_energy_j
    );
    println!(
        "{:>24} {:>16.2} {:>16.2}",
        "total time (s)", run_opt.total_time_s, run_bench.total_time_s
    );

    println!("\nper-round trajectory (optimized run):");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12}",
        "round", "loss", "accuracy", "energy (J)", "time (s)"
    );
    for r in run_opt.rounds.iter().step_by(5) {
        println!(
            "{:>6} {:>12.4} {:>12.3} {:>14.3} {:>12.2}",
            r.round, r.global_loss, r.test_accuracy, r.cumulative_energy_j, r.cumulative_time_s
        );
    }

    assert!((run_opt.final_accuracy - run_bench.final_accuracy).abs() < 1e-9);
    assert!(run_opt.total_energy_j < run_bench.total_energy_j);
    println!(
        "\nsame model, {:.1}% less energy.",
        100.0 * (1.0 - run_opt.total_energy_j / run_bench.total_energy_j)
    );
    Ok(())
}
