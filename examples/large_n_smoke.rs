//! CI smoke of the fleet-scale hot path: one 10⁴-device solve through the `large_n`
//! preset, asserting **completion and counters, never timing** (CI hosts are too noisy
//! for wall-clock gates; the committed before/after numbers live in `BENCH_PR6.json`).
//!
//! ```text
//! cargo run --release --example large_n_smoke            # 10⁴ devices (the CI job)
//! cargo run --release --example large_n_smoke -- --devices 100000
//! ```
//!
//! What must hold for the run to pass:
//!
//! * the sweep completes and every report row is finite (the solver converged through the
//!   struct-of-arrays path at fleet scale);
//! * the scalar searches stayed flat in `n`: the `g'(μ)`-evaluation and SP1-probe counts
//!   are bounded by constants that a per-device (`O(n · evals)`) regression would blow
//!   through by orders of magnitude;
//! * the Theorem-2 step-4b `(ρ, idx)` sort ran at most once per parametric KKT solve.

use fedopt::experiments::presets;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut devices: usize = 10_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--devices" => {
                devices = args.next().ok_or("--devices needs a value")?.parse()?;
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let spec = presets::large_n(devices);
    spec.validate()?;
    let start = Instant::now();
    let run = spec.run()?;
    let wall = start.elapsed();

    for report in &run.reports {
        for (x, ys) in &report.rows {
            for y in ys {
                assert!(y.is_finite(), "report {} has a non-finite value at x = {x}", report.id);
            }
        }
        println!("{}: {:?}", report.id, report.rows);
    }

    let k = run.result.counters.solver;
    println!(
        "devices = {devices}: wall = {wall:.2?} (informational only), \
         outer = {}, jong = {}, kkt = {}, mu_evals = {}, sp1_probes = {}, lp_sorts = {}",
        k.outer_iterations,
        k.jong_iterations,
        k.kkt_solves,
        k.mu_bisect_evals,
        k.sp1_probe_evals,
        k.lp_sorts
    );

    assert!(k.outer_iterations > 0, "the solve never iterated");
    assert!(k.mu_bisect_evals > 0, "the μ-root search never ran");
    // Flat-in-n ceilings: one cold solve measures ~450 μ-evals and ~260 SP1 probes at
    // every device count from 10³ to 10⁵ (BENCH_PR6.json). A regression that made either
    // search iterate per device would overshoot these bounds a thousandfold.
    assert!(
        k.mu_bisect_evals < 5_000,
        "μ-evals exploded: {} (expected a flat, n-independent count)",
        k.mu_bisect_evals
    );
    assert!(
        k.sp1_probe_evals < 5_000,
        "SP1 probes exploded: {} (expected a flat, n-independent count)",
        k.sp1_probe_evals
    );
    assert!(
        k.lp_sorts <= k.kkt_solves,
        "the step-4b LP sorted more than once per KKT solve ({} sorts, {} solves)",
        k.lp_sorts,
        k.kkt_solves
    );

    println!("large_n smoke OK");
    Ok(())
}
