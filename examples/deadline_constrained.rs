//! Deadline-constrained training (the smart-transportation scenario of the paper's
//! introduction): the whole FL job must finish within a hard completion-time budget, and the
//! question is how much energy each allocation scheme needs to make that deadline.
//!
//! Compares the proposed algorithm against Scheme 1 (Yang et al., TWC 2021), the
//! communication-only and the computation-only optimizers — the Figure 7/8 setting.
//!
//! ```text
//! cargo run --release --example deadline_constrained
//! ```

use fedopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario =
        ScenarioBuilder::paper_default().with_devices(20).with_p_max_dbm(10.0).build(99)?;
    let config = SolverConfig::default();
    let optimizer = JointOptimizer::new(config);
    let scheme1 = Scheme1Allocator::new(config);
    let comm_only = CommOnlyAllocator::new(config);
    let comp_only = CompOnlyAllocator::new(config);

    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "deadline (s)", "proposed (J)", "scheme 1 (J)", "comm-only (J)", "comp-only (J)"
    );
    for deadline in [60.0, 90.0, 120.0, 150.0] {
        let proposed = optimizer.solve_with_deadline(&scenario, deadline)?;
        let s1 = scheme1.allocate(&scenario, deadline)?;
        let comm = comm_only.allocate(&scenario, deadline)?;
        let comp = comp_only.allocate(&scenario, deadline)?;
        println!(
            "{:>12.0} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            deadline,
            proposed.total_energy_j,
            s1.total_energy_j(),
            comm.total_energy_j(),
            comp.total_energy_j()
        );
        assert!(
            proposed.total_time_s <= deadline * 1.01,
            "proposed allocation must meet the deadline"
        );
    }

    println!("\nthe tighter the deadline, the larger the advantage of joint optimization (Figs. 7 and 8).");
    Ok(())
}
