//! A 10⁴-draw Figure-2-style sweep in bounded memory — the workload the streaming
//! reduction exists for.
//!
//! ```text
//! cargo run --release --example large_sweep -- --seeds 10000
//! ```
//!
//! The engine evaluates `points × arms × seeds` cells but never materialises them: each
//! worker streams chunks of one point's seeds into `points × arms` constant-size
//! accumulators (plus a bounded window of in-flight chunks), so `--seeds 10000` costs the
//! same memory as `--seeds 10`. Output is bit-identical to the materializing reduction and
//! to a single-threaded run. Drop `--seeds` (or pass a smaller value) for a quicker demo;
//! the default reproduces the full 10⁴-draw grid.

use fedopt::experiments::engine::{SweepEngine, SweepGrid};
use fedopt::experiments::fig2::Fig2Config;
use fedopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seeds: u64 = 10_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args.next().ok_or("--seeds needs a value")?.parse()?;
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    // A solver-bound Figure-2 slice: two p_max points, one energy-leaning weight pair,
    // small devices so 10⁴ draws finish in minutes rather than hours.
    let solver = SolverConfig::fast();
    let mut grid = SweepGrid::new((0..seeds).collect::<Vec<u64>>());
    for p_max_dbm in [5.0, 12.0] {
        grid = grid.point(
            p_max_dbm,
            ScenarioBuilder::paper_default().with_devices(6).with_p_max_dbm(p_max_dbm),
        );
    }
    let grid = grid
        .arm(fedopt::experiments::arms::ProposedArm::new(Weights::new(0.9, 0.1)?, solver))
        .arm(fedopt::experiments::arms::BenchmarkArm::random_frequency());

    let engine = SweepEngine::new(); // streaming reduction is the default
    let (points, arms) = (grid.points.len(), grid.arms.len());
    println!(
        "sweeping {points} points × {arms} arms × {seeds} draws = {} cells on {} thread(s)",
        grid.num_cells(),
        engine.threads(),
    );
    println!(
        "streaming reduction: {points}×{arms} = {} accumulators + a {} seed chunk window \
         (vs {} materialised cells)",
        points * arms,
        engine.seed_chunk(),
        grid.num_cells(),
    );

    let started = std::time::Instant::now();
    let result = engine.run(&grid)?;
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "done in {elapsed:.1}s ({:.0} cells/sec, scenarios built: {})\n",
        grid.num_cells() as f64 / elapsed,
        result.counters.scenarios_built,
    );

    println!("{:>12}  {:>24}  {:>24}", "p_max (dBm)", "mean energy (J)", "mean time (s)");
    for (x, row) in result.xs.iter().zip(&result.aggregates) {
        for (name, agg) in result.arm_names.iter().zip(row) {
            println!(
                "{x:>12}  {:>24}  {:>24}",
                format!("{:.2} ± {:.2} [{name}]", agg.mean_energy_j, agg.std_energy_j),
                format!("{:.2} ± {:.2}", agg.mean_time_s, agg.std_time_s),
            );
        }
    }
    let _ = Fig2Config::paper(); // see the full eight-figure presets in `experiments`
    Ok(())
}
