//! Quickstart: build the paper's default scenario, run the joint optimizer, and compare it
//! against the random benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! For the declarative route — describing a whole sweep as one serializable
//! `ExperimentSpec` value — see the sibling `spec_quickstart.rs`.

use fedopt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a wireless FL deployment: 20 devices in a 250 m cell, 20 MHz of uplink
    //    bandwidth, 400 global rounds of 10 local iterations each (Section VII-A defaults).
    let scenario = ScenarioBuilder::paper_default().with_devices(20).build(2024)?;
    println!(
        "scenario: {} devices, {:.0} MHz uplink, R_g = {}, R_l = {}",
        scenario.num_devices(),
        scenario.params.total_bandwidth.value() / 1e6,
        scenario.params.global_rounds,
        scenario.params.local_iterations,
    );

    // 2. Pick the trade-off: w1 weighs energy, w2 weighs completion time.
    let weights = Weights::new(0.5, 0.5)?;

    // 3. Run the paper's Algorithm 2.
    let optimizer = JointOptimizer::new(SolverConfig::default());
    let outcome = optimizer.solve(&scenario, weights)?;
    assert!(outcome.allocation.is_feasible(&scenario, 1e-6));

    println!("\nproposed allocation (Algorithm 2):");
    println!("  total energy      : {:>10.2} J", outcome.total_energy_j);
    println!("  total completion  : {:>10.2} s", outcome.total_time_s);
    println!("  weighted objective: {:>10.2}", outcome.objective);
    println!("  outer iterations  : {:>10}", outcome.trace.len());

    // 4. Compare with the paper's random benchmark (max power, random frequency, equal band).
    let benchmark = BenchmarkAllocator::new().random_frequency(&scenario, 2024)?;
    println!("\nrandom benchmark:");
    println!("  total energy      : {:>10.2} J", benchmark.total_energy_j());
    println!("  total completion  : {:>10.2} s", benchmark.total_time_s());

    let saving = 100.0 * (1.0 - outcome.total_energy_j / benchmark.total_energy_j());
    println!("\nenergy saving vs benchmark: {saving:.1} %");
    Ok(())
}
