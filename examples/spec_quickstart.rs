//! Spec-driven quickstart: the declarative sibling of `quickstart.rs`.
//!
//! Where `quickstart.rs` calls the solver imperatively, this example describes a whole
//! sweep as one serializable [`ExperimentSpec`] value — starts from the Figure-2 preset,
//! reshapes it into a custom experiment the paper never ran, round-trips it through JSON
//! (the form you could ship over a wire, cache, or shard by seed range), and runs it.
//!
//! ```text
//! cargo run --release --example spec_quickstart
//! ```

use fedopt::prelude::*;
use fedopt::spec::{ArmKind, ArmSpec, BenchmarkDraw, SeedSpec};
use fedopt::{presets, ExperimentSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start from the Figure-2 preset (energy/delay vs p_max) ...
    let mut spec = presets::spec(2, presets::Variant::Quick).expect("figure 2 exists");

    // 2. ... and reshape it into a custom experiment: 10 devices, a wider power sweep,
    //    two weight pairs against the benchmark, 4 draws per point. No new module, no new
    //    binary — the experiment is a value.
    spec.id = "custom-pmax".to_string();
    spec.description = "two weight pairs vs the benchmark over a wide power sweep".to_string();
    spec.scenario.devices = Some(10);
    spec.axis.values = vec![2.0, 6.0, 10.0, 14.0];
    spec.arms = vec![
        ArmSpec::new(ArmKind::Proposed { weights: Weights::new(0.9, 0.1)? }),
        ArmSpec::new(ArmKind::Proposed { weights: Weights::new(0.1, 0.9)? }),
        ArmSpec::new(ArmKind::Benchmark { draw: BenchmarkDraw::Frequency }),
    ];
    spec.seeds = SeedSpec::count(4);

    // 3. The spec is data: serialize, ship, parse — losslessly.
    let wire = spec.to_json_string();
    let received = ExperimentSpec::from_json_str(&wire)?;
    assert_eq!(received, spec);
    println!("spec ({} bytes of JSON):\n{wire}", wire.len());

    // 4. Run it. `run()` honors the spec's engine block; pass an explicit engine for
    //    thread-count control (`fedopt run --spec file.json` does exactly this).
    let run = received.run()?;
    for report in &run.reports {
        println!("{}", report.to_table_string());
    }
    println!(
        "evaluated {} cells over {} scenario builds",
        run.result.counters.cells_evaluated, run.result.counters.scenarios_built
    );
    Ok(())
}
