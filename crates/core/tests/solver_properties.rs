//! Property-based tests of the resource-allocation solver's invariants.

use fedopt_core::{JointOptimizer, SolverConfig, SolverWorkspace, Weights};
use flsys::{Allocation, ScenarioBuilder};
use proptest::prelude::*;

proptest! {
    // Each case runs the full solver, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any scenario and any valid weight pair, the solver returns a feasible allocation
    /// whose weighted objective does not exceed the naive equal-split allocation's.
    #[test]
    fn solver_output_is_feasible_and_no_worse_than_naive(
        seed in 0u64..200,
        devices in 3usize..10,
        w1_tenths in 1u32..10,
    ) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let w1 = f64::from(w1_tenths) / 10.0;
        let weights = Weights::new(w1, 1.0 - w1).unwrap();
        let optimizer = JointOptimizer::new(SolverConfig::fast());
        let outcome = optimizer.solve(&scenario, weights).unwrap();

        prop_assert!(outcome.allocation.is_feasible(&scenario, 1e-5));
        prop_assert!(outcome.objective.is_finite());
        prop_assert!(outcome.total_energy_j > 0.0);
        prop_assert!(outcome.total_time_s > 0.0);

        let naive = scenario.cost(&Allocation::equal_split_max(&scenario)).unwrap();
        prop_assert!(outcome.objective <= naive.objective(weights) * (1.0 + 1e-9));
    }

    /// The warm-start continuation converges to the same fixed point as the cold reference
    /// path: objectives agree within `outer_tol` (relative), the convergence flags match,
    /// and the warm best iterate is feasible — across random scenarios, device counts
    /// 2–25 and the whole weight range.
    #[test]
    fn warm_start_agrees_with_cold_within_outer_tol(
        seed in 0u64..300,
        devices in 2usize..26,
        w1_tenths in 1u32..10,
    ) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let w1 = f64::from(w1_tenths) / 10.0;
        let weights = Weights::new(w1, 1.0 - w1).unwrap();
        // Warm start is the library default now — the cold reference must opt out.
        let cold_cfg = SolverConfig::fast().with_warm_start(false);
        let warm_cfg = cold_cfg.with_warm_start(true);

        let mut cold_ws = SolverWorkspace::new();
        let mut warm_ws = SolverWorkspace::new();
        let cold = JointOptimizer::new(cold_cfg)
            .solve_summary_with(&scenario, weights, &mut cold_ws)
            .unwrap();
        let warm = JointOptimizer::new(warm_cfg)
            .solve_summary_with(&scenario, weights, &mut warm_ws)
            .unwrap();

        let rel = (warm.objective - cold.objective).abs() / cold.objective;
        prop_assert!(
            rel <= cold_cfg.outer_tol,
            "warm {} vs cold {} (rel {rel})", warm.objective, cold.objective
        );
        prop_assert!(warm.converged == cold.converged,
            "convergence flags diverged (warm {}, cold {})", warm.converged, cold.converged);
        prop_assert!(warm_ws.best.is_feasible(&scenario, 1e-5));
        // Warm must never do *more* inner work than cold.
        prop_assert!(warm_ws.counters.jong_iterations <= cold_ws.counters.jong_iterations,
            "warm jong {} > cold {}",
            warm_ws.counters.jong_iterations, cold_ws.counters.jong_iterations);
    }

    /// The deadline-constrained variant either meets the deadline or reports infeasibility —
    /// it never silently violates the constraint.
    #[test]
    fn deadline_variant_is_honest(seed in 0u64..200, devices in 3usize..9, deadline in 20.0f64..200.0) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let optimizer = JointOptimizer::new(SolverConfig::fast());
        match optimizer.solve_with_deadline(&scenario, deadline) {
            Ok(outcome) => {
                prop_assert!(outcome.allocation.is_feasible(&scenario, 1e-5));
                prop_assert!(outcome.total_time_s <= deadline * 1.01,
                    "returned {} for deadline {deadline}", outcome.total_time_s);
            }
            Err(fedopt_core::CoreError::InfeasibleDeadline { achievable_s, .. }) => {
                prop_assert!(achievable_s > deadline * 0.99);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}

/// One cold solve's counters at a given device count.
fn cold_solve_counters(devices: usize, superlinear: bool) -> fedopt_core::SolveCounters {
    let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(11).unwrap();
    let cfg = SolverConfig::fast().with_warm_start(false).with_superlinear_mu(superlinear);
    let mut ws = SolverWorkspace::with_capacity(devices);
    JointOptimizer::new(cfg)
        .solve_summary_with(&scenario, Weights::new(0.5, 0.5).unwrap(), &mut ws)
        .unwrap();
    ws.counters
}

/// The `μ`-root searches iterate in `μ`, not in `n`: quadrupling the device count must not
/// even double the per-solve `g'(μ)` evaluation count. This is the counter-level evidence
/// that per-evaluation work is the only thing that grows with the fleet size — the number
/// of evaluations stays flat — so whole solves scale `O(n)`–`O(n log n)`, not `O(n·evals)`
/// with `evals` itself creeping up.
#[test]
fn mu_eval_count_scales_sublinearly_in_device_count() {
    let small = cold_solve_counters(50, true);
    let large = cold_solve_counters(200, true);
    assert!(small.mu_bisect_evals > 0, "the small solve must exercise the μ-root search");
    assert!(
        large.mu_bisect_evals < 2 * small.mu_bisect_evals,
        "μ-evals grew superlinearly with n: {} at 200 devices vs {} at 50",
        large.mu_bisect_evals,
        small.mu_bisect_evals
    );
    // The step-4b (ρ, idx) sort happens once per parametric KKT solve, never per μ-eval.
    assert!(small.lp_sorts <= small.kkt_solves, "more sorts than KKT solves at n = 50");
    assert!(large.lp_sorts <= large.kkt_solves, "more sorts than KKT solves at n = 200");
}

/// The safeguarded-Brent `μ`-root step must spend strictly fewer `g'(μ)` evaluations than
/// the legacy pure bisection it replaced, on the same scenario and tolerances.
#[test]
fn brent_mu_root_beats_pure_bisection_on_evals() {
    for devices in [25usize, 100] {
        let brent = cold_solve_counters(devices, true);
        let bisect = cold_solve_counters(devices, false);
        assert!(
            brent.mu_bisect_evals < bisect.mu_bisect_evals,
            "Brent spent {} μ-evals, pure bisection {} at n = {devices}",
            brent.mu_bisect_evals,
            bisect.mu_bisect_evals
        );
    }
}
