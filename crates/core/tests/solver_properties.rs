//! Property-based tests of the resource-allocation solver's invariants.

use fedopt_core::{JointOptimizer, SolverConfig, SolverWorkspace, Weights};
use flsys::{Allocation, ScenarioBuilder};
use proptest::prelude::*;

proptest! {
    // Each case runs the full solver, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any scenario and any valid weight pair, the solver returns a feasible allocation
    /// whose weighted objective does not exceed the naive equal-split allocation's.
    #[test]
    fn solver_output_is_feasible_and_no_worse_than_naive(
        seed in 0u64..200,
        devices in 3usize..10,
        w1_tenths in 1u32..10,
    ) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let w1 = f64::from(w1_tenths) / 10.0;
        let weights = Weights::new(w1, 1.0 - w1).unwrap();
        let optimizer = JointOptimizer::new(SolverConfig::fast());
        let outcome = optimizer.solve(&scenario, weights).unwrap();

        prop_assert!(outcome.allocation.is_feasible(&scenario, 1e-5));
        prop_assert!(outcome.objective.is_finite());
        prop_assert!(outcome.total_energy_j > 0.0);
        prop_assert!(outcome.total_time_s > 0.0);

        let naive = scenario.cost(&Allocation::equal_split_max(&scenario)).unwrap();
        prop_assert!(outcome.objective <= naive.objective(weights) * (1.0 + 1e-9));
    }

    /// The warm-start continuation converges to the same fixed point as the cold reference
    /// path: objectives agree within `outer_tol` (relative), the convergence flags match,
    /// and the warm best iterate is feasible — across random scenarios, device counts
    /// 2–25 and the whole weight range.
    #[test]
    fn warm_start_agrees_with_cold_within_outer_tol(
        seed in 0u64..300,
        devices in 2usize..26,
        w1_tenths in 1u32..10,
    ) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let w1 = f64::from(w1_tenths) / 10.0;
        let weights = Weights::new(w1, 1.0 - w1).unwrap();
        let cold_cfg = SolverConfig::fast();
        let warm_cfg = cold_cfg.with_warm_start(true);

        let mut cold_ws = SolverWorkspace::new();
        let mut warm_ws = SolverWorkspace::new();
        let cold = JointOptimizer::new(cold_cfg)
            .solve_summary_with(&scenario, weights, &mut cold_ws)
            .unwrap();
        let warm = JointOptimizer::new(warm_cfg)
            .solve_summary_with(&scenario, weights, &mut warm_ws)
            .unwrap();

        let rel = (warm.objective - cold.objective).abs() / cold.objective;
        prop_assert!(
            rel <= cold_cfg.outer_tol,
            "warm {} vs cold {} (rel {rel})", warm.objective, cold.objective
        );
        prop_assert!(warm.converged == cold.converged,
            "convergence flags diverged (warm {}, cold {})", warm.converged, cold.converged);
        prop_assert!(warm_ws.best.is_feasible(&scenario, 1e-5));
        // Warm must never do *more* inner work than cold.
        prop_assert!(warm_ws.counters.jong_iterations <= cold_ws.counters.jong_iterations,
            "warm jong {} > cold {}",
            warm_ws.counters.jong_iterations, cold_ws.counters.jong_iterations);
    }

    /// The deadline-constrained variant either meets the deadline or reports infeasibility —
    /// it never silently violates the constraint.
    #[test]
    fn deadline_variant_is_honest(seed in 0u64..200, devices in 3usize..9, deadline in 20.0f64..200.0) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let optimizer = JointOptimizer::new(SolverConfig::fast());
        match optimizer.solve_with_deadline(&scenario, deadline) {
            Ok(outcome) => {
                prop_assert!(outcome.allocation.is_feasible(&scenario, 1e-5));
                prop_assert!(outcome.total_time_s <= deadline * 1.01,
                    "returned {} for deadline {deadline}", outcome.total_time_s);
            }
            Err(fedopt_core::CoreError::InfeasibleDeadline { achievable_s, .. }) => {
                prop_assert!(achievable_s > deadline * 0.99);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}
