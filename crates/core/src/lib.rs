//! # fedopt-core
//!
//! The primary contribution of *"Joint Optimization of Energy Consumption and Completion Time
//! in Federated Learning"* (ICDCS 2022): a resource-allocation algorithm that picks every
//! device's transmit power, CPU frequency and FDMA bandwidth share to minimize the weighted
//! sum `w1·E + w2·R_g·T` of total energy and total completion time.
//!
//! The solver follows the paper's decomposition:
//!
//! * [`sp1`] — Subproblem 1 (frequencies + round time): convex, solved directly and through
//!   the paper's Lagrangian dual (17).
//! * [`sp2`] — Subproblem 2 (powers + bandwidths): a sum-of-ratios problem, solved with the
//!   Newton-like parametric method (the paper's Algorithm 1) whose inner problem is the
//!   Theorem-2 KKT system, plus an independent reference solver for cross-checking.
//! * [`alg2`] — Algorithm 2: the alternating outer loop, the deadline-constrained variant
//!   used by Figures 7–8, and the pure delay-minimization path.
//!
//! ## Example
//!
//! ```rust
//! use fedopt_core::{JointOptimizer, SolverConfig};
//! use flsys::{ScenarioBuilder, Weights};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::paper_default().with_devices(10).build(1)?;
//! let optimizer = JointOptimizer::new(SolverConfig::fast());
//! let outcome = optimizer.solve(&scenario, Weights::new(0.5, 0.5)?)?;
//! assert!(outcome.allocation.is_feasible(&scenario, 1e-5));
//! println!("energy {:.1} J, time {:.1} s", outcome.total_energy_j, outcome.total_time_s);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alg2;
pub mod config;
pub mod error;
pub mod sp1;
pub mod sp2;
pub mod trace;
pub mod workspace;

pub use alg2::{JointOptimizer, Outcome, OutcomeSummary};
pub use config::SolverConfig;
pub use error::CoreError;
pub use sp2::kkt::KktScratch;
pub use sp2::{Sp2Scratch, Sp2Summary};
pub use trace::{OuterIteration, SolveCounters, Trace};
pub use workspace::SolverWorkspace;

// Re-exported so downstream users can write `fedopt_core::Weights` without importing `flsys`.
pub use flsys::Weights;
