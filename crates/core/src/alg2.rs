//! Algorithm 2 — the complete resource-allocation algorithm.
//!
//! [`JointOptimizer::solve`] reproduces the paper's Algorithm 2: starting from a feasible
//! allocation, it alternates
//!
//! 1. **Subproblem 1** (frequencies + auxiliary round time `T`) for the current uplink times,
//! 2. **Subproblem 2** (powers + bandwidths) for the rate floors implied by that `T`,
//!
//! until the solution stops changing or the iteration cap `K` is hit. The weighted objective
//! `w1·E + w2·R_g·T` is evaluated through `flsys` after every outer iteration and the best
//! iterate is returned, so the reported allocation is never worse than the initial feasible
//! point.
//!
//! [`JointOptimizer::solve_with_deadline`] is the deadline-constrained variant used for the
//! comparisons of Figures 7 and 8 (`w1 = 1, w2 = 0`, completion time as a hard constraint),
//! and [`JointOptimizer::minimize_round_time`] is the pure delay-minimization path used when
//! `w2 = 1`.

use crate::config::SolverConfig;
use crate::error::CoreError;
use crate::sp1;
use crate::sp2;
use crate::trace::{OuterIteration, Trace};
use crate::workspace::SolverWorkspace;
use flsys::{Allocation, CostBreakdown, Scenario, ScenarioArrays, Weights};
use wireless::channel::shannon_rate_raw;

/// The scalar outcome of a `*_summary_*` solve: everything the sweep hot path consumes,
/// with no owned buffers. The winning allocation itself stays in
/// [`SolverWorkspace::best`] and the convergence trace in [`SolverWorkspace::trace`] until
/// the next solve overwrites them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeSummary {
    /// The weighted objective `w1·E + w2·R_g·T` of the winning allocation.
    pub objective: f64,
    /// Total energy in joules.
    pub total_energy_j: f64,
    /// Total completion time in seconds.
    pub total_time_s: f64,
    /// Whether the outer loop met its tolerance before the iteration cap.
    pub converged: bool,
}

/// Result of a full resource-allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The allocation the optimizer settled on (always feasible).
    pub allocation: Allocation,
    /// Cost breakdown of that allocation (energy, latency, per-device detail).
    pub cost: CostBreakdown,
    /// The weighted objective `w1·E + w2·R_g·T` of the returned allocation.
    pub objective: f64,
    /// Total energy in joules (convenience copy of `cost.total_energy_j`).
    pub total_energy_j: f64,
    /// Total completion time in seconds (convenience copy of `cost.total_time_s`).
    pub total_time_s: f64,
    /// The weights the run optimized for.
    pub weights: Weights,
    /// Convergence trace (one entry per outer iteration).
    pub trace: Trace,
    /// Whether the outer loop met its tolerance before the iteration cap.
    pub converged: bool,
}

/// The paper's resource-allocation algorithm (Algorithm 2) plus its deadline-constrained and
/// delay-only variants.
#[derive(Debug, Clone, Default)]
pub struct JointOptimizer {
    config: SolverConfig,
}

impl JointOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Solves the weighted joint problem (9) for the given scenario and weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] for invalid inputs or [`CoreError::SolverFailure`] /
    /// [`CoreError::Numerical`] if both Subproblem-2 solvers fail (which the test-suite never
    /// observes on paper-like scenarios).
    pub fn solve(&self, scenario: &Scenario, weights: Weights) -> Result<Outcome, CoreError> {
        self.solve_with(scenario, weights, &mut SolverWorkspace::new())
    }

    /// [`Self::solve`] against a caller-owned [`SolverWorkspace`], so repeated solves (a
    /// figure sweep runs thousands) reuse one set of per-device buffers instead of
    /// allocating per call. The workspace is pure scratch — see [`crate::workspace`] for the
    /// reuse contract — and the result is bit-identical to [`Self::solve`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_with(
        &self,
        scenario: &Scenario,
        weights: Weights,
        ws: &mut SolverWorkspace,
    ) -> Result<Outcome, CoreError> {
        let summary = self.solve_summary_with(scenario, weights, ws)?;
        self.outcome_from_workspace(scenario, weights, ws, summary)
    }

    /// Enforces the caller's wall-clock budget ([`SolverWorkspace::solve_deadline`]) at an
    /// outer-iteration boundary: past the instant, the solve is abandoned with the typed
    /// [`CoreError::DeadlineExpired`] degradation. `iterations` is the count of outer
    /// iterations already completed (what the error reports). A `None` budget — the
    /// default, and every non-serving caller — costs one branch.
    fn check_deadline(ws: &SolverWorkspace, iterations: usize) -> Result<(), CoreError> {
        if let Some(deadline) = ws.solve_deadline {
            if std::time::Instant::now() >= deadline {
                return Err(CoreError::DeadlineExpired { iterations });
            }
        }
        Ok(())
    }

    /// [`Self::solve_with`] without materialising an [`Outcome`]: the sweep hot path.
    ///
    /// Returns the scalar [`OutcomeSummary`] and leaves the winning allocation in
    /// [`SolverWorkspace::best`] (projected feasible) and the convergence trace in
    /// [`SolverWorkspace::trace`]. The numbers are bit-identical to [`Self::solve_with`] —
    /// this entry point merely skips cloning the allocation, the per-device cost breakdown
    /// and the trace, which makes a whole figure cell **allocation-free in steady state**
    /// (after the workspace has grown to the scenario's device count once).
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve`].
    pub fn solve_summary_with(
        &self,
        scenario: &Scenario,
        weights: Weights,
        ws: &mut SolverWorkspace,
    ) -> Result<OutcomeSummary, CoreError> {
        ws.trace.clear();
        Self::check_deadline(ws, 0)?;
        if weights.time() >= 1.0 {
            // Pure delay minimization: energy plays no role, so Subproblem 2's objective is
            // degenerate. Solve the min-max completion-time problem directly.
            let (allocation, _round) = self.minimize_round_time(scenario)?;
            ws.best = allocation;
            return self.finish_summary(scenario, weights, ws, true);
        }

        // Outer-loop continuation (serving layers only; see `SolverConfig`): re-open at the
        // carried best allocation when it plausibly belongs to this scenario, so a repeat
        // of the same problem starts converged and SP2's fast path fires at k = 1. The
        // shape check is a guard against misuse, not the correctness argument — callers
        // must only enable this when the workspace last solved the *same* problem.
        let n = scenario.devices.len();
        let continued = self.config.warm_start
            && self.config.outer_continuation
            && ws.best.powers_w.len() == n
            && ws.best.frequencies_hz.len() == n
            && ws.best.bandwidths_hz.len() == n
            && ws.sp2.solution().powers_w.len() == n
            && ws.sp2.solution().bandwidths_hz.len() == n;
        if continued {
            let SolverWorkspace { allocation, best, .. } = &mut *ws;
            allocation.clone_from(best);
        } else {
            ws.allocation.set_equal_split_max(scenario);
        }
        ws.arrays.rebuild(scenario);
        let mut best_objective = f64::INFINITY;
        let mut have_best = false;
        let mut converged = false;

        for k in 1..=self.config.outer_max_iter {
            // Deadline watchdog: the caller's wall-clock budget is checked at every
            // outer-iteration boundary, so an expired budget costs at most one more
            // (bounded) iteration before the solve degrades to the typed error.
            Self::check_deadline(ws, k - 1)?;
            ws.previous.clone_from(&ws.allocation);

            // --- Subproblem 1: frequencies and the auxiliary round time T. ---
            ws.allocation.rates_bps_into(scenario, &mut ws.rates_bps);
            ws.upload_times_from_rates(scenario);
            let SolverWorkspace {
                uploads_s,
                r_min_bps,
                frequencies_hz,
                sp2,
                allocation,
                previous,
                best,
                trace,
                counters,
                arrays,
                sp1_warm,
                ..
            } = &mut *ws;
            counters.outer_iterations += 1;
            let sp1_sol = match sp1::solve_direct_with_arrays_in(
                scenario,
                arrays,
                weights,
                uploads_s,
                &self.config,
                frequencies_hz,
                sp1_warm,
                &mut counters.sp1_probe_evals,
            ) {
                Ok(sol) => sol,
                // Watchdog: a non-finite subproblem objective (overflowed energy, NaN
                // cost) is a property of the draw, not a solver bug — degrade the whole
                // solve to the typed infeasibility instead of escalating a hard error
                // that would abort an entire sweep shard.
                Err(CoreError::Numerical(numopt::NumError::NonFiniteValue { .. })) => {
                    counters.degraded_solves += 1;
                    return Err(CoreError::NonFiniteObjective { iterations: k });
                }
                Err(e) => return Err(e),
            };
            allocation.frequencies_hz.copy_from_slice(frequencies_hz);

            // --- Subproblem 2: powers and bandwidths under the rate floors implied by T. ---
            rate_floors_into(
                arrays,
                scenario.params.rl(),
                sp1_sol.round_time_s,
                frequencies_hz,
                weights,
                r_min_bps,
            );
            if !(self.config.warm_start && (k > 1 || continued)) {
                // Warm continuation keeps the previous SP2 iterate staged in the scratch
                // (un-projected, which is what the fast path recognises); the cold path
                // restages the projected allocation every iteration, as Algorithm 2 writes.
                // An outer-continued solve extends the same rule to k = 1: the scratch
                // still stages the previous solve's iterate of this very problem.
                sp2.stage_start(&allocation.powers_w, &allocation.bandwidths_hz);
            }
            let sp2_sol = match sp2::solve_with_arrays_in(
                scenario,
                arrays,
                weights,
                r_min_bps,
                &self.config,
                sp2,
            ) {
                Ok(sol) => sol,
                Err(CoreError::Numerical(numopt::NumError::NonFiniteValue { .. })) => {
                    counters.degraded_solves += 1;
                    return Err(CoreError::NonFiniteObjective { iterations: k });
                }
                Err(e) => return Err(e),
            };
            counters.record_sp2(&sp2_sol);
            allocation.powers_w.copy_from_slice(&sp2.solution().powers_w);
            allocation.bandwidths_hz.copy_from_slice(&sp2.solution().bandwidths_hz);
            allocation.project_feasible(scenario);

            // --- Bookkeeping. ---
            let cost = scenario.cost_summary_arrays(arrays, allocation)?;
            let objective = cost.objective(weights);
            let change = allocation.normalized_distance(previous);
            trace.push(OuterIteration {
                k,
                objective,
                total_energy_j: cost.total_energy_j,
                total_time_s: cost.total_time_s,
                solution_change: change,
                sp2_converged: sp2_sol.converged,
                sp2_iterations: sp2_sol.iterations,
            });
            // Watchdog: a non-finite objective (overflowed energy, NaN cost) must never be
            // accepted as "best" — it would propagate straight into the summary totals.
            if objective.is_finite() && (!have_best || objective < best_objective) {
                best_objective = objective;
                have_best = true;
                best.clone_from(allocation);
            }
            if change <= self.config.outer_tol {
                converged = true;
                break;
            }
        }

        if !have_best {
            // Every iteration in the budget produced a non-finite objective: degrade the
            // solve (typed error + counter) instead of panicking or returning garbage.
            // Sweep layers map this to an infeasible cell, so one pathological draw
            // cannot abort a whole shard.
            ws.counters.degraded_solves += 1;
            return Err(CoreError::NonFiniteObjective { iterations: ws.trace.len() });
        }
        self.finish_summary(scenario, weights, ws, converged)
    }

    /// Minimizes total energy subject to a hard completion-time deadline for the whole
    /// training process (the setting of Figures 7 and 8, `w1 = 1, w2 = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InfeasibleDeadline`] when the deadline cannot be met even with
    /// every resource at its maximum, and the same solver errors as [`JointOptimizer::solve`].
    pub fn solve_with_deadline(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
    ) -> Result<Outcome, CoreError> {
        self.solve_with_deadline_in(scenario, total_deadline_s, &mut SolverWorkspace::new())
    }

    /// [`Self::solve_with_deadline`] against a caller-owned [`SolverWorkspace`] (same reuse
    /// contract as [`Self::solve_with`]; bit-identical results).
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve_with_deadline`].
    pub fn solve_with_deadline_in(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<Outcome, CoreError> {
        let summary = self.solve_with_deadline_summary_in(scenario, total_deadline_s, ws)?;
        self.outcome_from_workspace(scenario, Weights::energy_only(), ws, summary)
    }

    /// [`Self::solve_with_deadline_in`] without materialising an [`Outcome`] — the sweep
    /// hot path of Figures 7 and 8, with the same workspace conventions as
    /// [`Self::solve_summary_with`] (winning allocation in [`SolverWorkspace::best`], trace
    /// in [`SolverWorkspace::trace`]; bit-identical numbers).
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve_with_deadline`].
    pub fn solve_with_deadline_summary_in(
        &self,
        scenario: &Scenario,
        total_deadline_s: f64,
        ws: &mut SolverWorkspace,
    ) -> Result<OutcomeSummary, CoreError> {
        if !(total_deadline_s.is_finite() && total_deadline_s > 0.0) {
            return Err(CoreError::Model(flsys::FlError::InvalidParameter {
                name: "total_deadline_s",
                value: total_deadline_s,
            }));
        }
        let weights = Weights::energy_only();
        let round_deadline = total_deadline_s / scenario.params.rg();

        Self::check_deadline(ws, 0)?;
        let (fastest_alloc, fastest_round) = self.minimize_round_time(scenario)?;
        if round_deadline < fastest_round * (1.0 - 1e-9) {
            return Err(CoreError::InfeasibleDeadline {
                requested_s: total_deadline_s,
                achievable_s: fastest_round * scenario.params.rg(),
            });
        }

        // The alternation below is a local search, and at fixed deadlines its quality depends
        // on the starting bandwidth split: the equal split is the better seed when the
        // deadline is loose, the time-optimal split (which hands far devices the bandwidth
        // they need) is the better seed when the deadline is tight. Run both seeds and keep
        // the cheaper feasible result (tracked across both runs in `ws.best`).
        ws.trace.clear();
        ws.arrays.rebuild(scenario);
        let mut best_energy = f64::INFINITY;
        let mut have_best = false;
        let mut converged = false;
        for tight_seed in [false, true] {
            if tight_seed {
                ws.allocation.clone_from(&fastest_alloc);
            } else {
                ws.allocation.set_equal_split_max(scenario);
            }
            converged |= self.deadline_iterations(
                scenario,
                round_deadline,
                &mut best_energy,
                &mut have_best,
                ws,
            )?;
        }

        if !have_best {
            // Every iterate somehow missed the deadline (only possible in pathological corner
            // cases): fall back to the fastest allocation, which was proven to meet it.
            ws.best.clone_from(&fastest_alloc);
        }
        self.finish_summary(scenario, weights, ws, converged)
    }

    /// One run of the deadline-constrained alternation from the allocation staged in
    /// [`SolverWorkspace::allocation`]. Updates the cross-seed best (energy in
    /// `best_energy`/`have_best`, allocation in [`SolverWorkspace::best`]) and returns
    /// whether the loop converged.
    fn deadline_iterations(
        &self,
        scenario: &Scenario,
        round_deadline: f64,
        best_energy: &mut f64,
        have_best: &mut bool,
        ws: &mut SolverWorkspace,
    ) -> Result<bool, CoreError> {
        let weights = Weights::energy_only();
        let mut converged = false;
        let k_offset = ws.trace.len();

        for k in 1..=self.config.outer_max_iter {
            // Same wall-clock watchdog as the weighted loop (see `solve_summary_with`).
            Self::check_deadline(ws, k_offset + k - 1)?;
            ws.previous.clone_from(&ws.allocation);
            let SolverWorkspace {
                r_min_bps,
                frequencies_hz,
                sp2,
                allocation,
                previous,
                best,
                trace,
                counters,
                arrays,
                ..
            } = &mut *ws;
            counters.outer_iterations += 1;

            // Split every device's round deadline between computation and upload so that the
            // *total* per-device energy (computation at the implied frequency plus the
            // cheapest transmission meeting the implied rate) is minimized, given the current
            // bandwidth shares. This plays the role Subproblem 1 plays in the weighted
            // problem: it decides the frequencies and the rate floors handed to Subproblem 2.
            self.optimal_split_for_deadline(
                scenario,
                round_deadline,
                &allocation.bandwidths_hz,
                frequencies_hz,
                r_min_bps,
            );
            allocation.frequencies_hz.copy_from_slice(frequencies_hz);

            // Powers/bandwidths: communication-energy minimization under those rate floors.
            if !(self.config.warm_start && k > 1) {
                // Same warm continuation as the weighted loop — but never across the two
                // seed runs: each run restages its own starting point at k = 1, preserving
                // the dual-seed diversity the deadline search relies on.
                sp2.stage_start(&allocation.powers_w, &allocation.bandwidths_hz);
            }
            let sp2_sol = match sp2::solve_with_arrays_in(
                scenario,
                arrays,
                weights,
                r_min_bps,
                &self.config,
                sp2,
            ) {
                Ok(sol) => sol,
                // Same degradation contract as the weighted loop: non-finite subproblem
                // values become the typed watchdog error, never a shard-killing abort.
                Err(CoreError::Numerical(numopt::NumError::NonFiniteValue { .. })) => {
                    counters.degraded_solves += 1;
                    return Err(CoreError::NonFiniteObjective { iterations: k });
                }
                Err(e) => return Err(e),
            };
            counters.record_sp2(&sp2_sol);
            allocation.powers_w.copy_from_slice(&sp2.solution().powers_w);
            allocation.bandwidths_hz.copy_from_slice(&sp2.solution().bandwidths_hz);
            allocation.project_feasible(scenario);

            let cost = scenario.cost_summary_arrays(arrays, allocation)?;
            // Track energy among allocations that actually meet the deadline (tiny slack for
            // the floating-point repairs in the sanitize pass).
            let meets_deadline = cost.round_time_s <= round_deadline * (1.0 + 1e-3);
            let objective = cost.total_energy_j;
            let change = allocation.normalized_distance(previous);
            trace.push(OuterIteration {
                k: k_offset + k,
                objective,
                total_energy_j: cost.total_energy_j,
                total_time_s: cost.total_time_s,
                solution_change: change,
                sp2_converged: sp2_sol.converged,
                sp2_iterations: sp2_sol.iterations,
            });
            // The same non-finite watchdog as the weighted loop: an overflowed energy can
            // never become "best" (the deadline search falls back to `fastest_alloc` or a
            // typed infeasibility when nothing finite survives).
            if objective.is_finite() && meets_deadline && (!*have_best || objective < *best_energy)
            {
                *best_energy = objective;
                *have_best = true;
                best.clone_from(allocation);
            }
            if change <= self.config.outer_tol {
                converged = true;
                break;
            }
        }
        Ok(converged)
    }

    /// For a fixed round deadline and fixed bandwidth shares, chooses each device's
    /// computation/upload time split to minimize its per-round energy, writing the implied
    /// CPU frequencies and rate floors into the caller's buffers (cleared first).
    ///
    /// For device `n` with bandwidth `B_n`, an upload time `t` implies the frequency
    /// `f_n = R_l c_n D_n / (deadline − t)` and the cheapest power reaching rate `d_n / t`;
    /// the per-round energy `κ R_l c_n D_n f_n² + p(t)·t` is minimized over `t` by a scalar
    /// search (it is unimodal: computation energy falls and transmission energy rises as `t`
    /// shrinks the compute share).
    fn optimal_split_for_deadline(
        &self,
        scenario: &Scenario,
        round_deadline: f64,
        bandwidths_hz: &[f64],
        frequencies: &mut Vec<f64>,
        r_min: &mut Vec<f64>,
    ) {
        let params = &scenario.params;
        let rl = params.rl();
        let n0 = params.noise.watts_per_hz();
        frequencies.clear();
        r_min.clear();

        for (dev, &bandwidth_hz) in scenario.devices.iter().zip(bandwidths_hz) {
            let cycles = rl * dev.cycles_per_local_iteration();
            let b = bandwidth_hz.max(self.config.bandwidth_floor_hz);
            let g = dev.gain.value();
            let t_cmp_min = cycles / dev.f_max.value();
            let upload_budget_max = round_deadline - t_cmp_min;
            if upload_budget_max <= 0.0 {
                // The deadline leaves no room even at f_max: run flat out and hope the upload
                // squeezes through (the caller's feasibility check prevents this in practice).
                frequencies.push(dev.f_max.value());
                r_min.push(dev.upload_bits / 1e-6);
                continue;
            }
            // The shortest upload the device can manage with its current bandwidth is the one
            // at maximum power; restricting the search to [that, remaining budget] keeps every
            // candidate split power-feasible, so the objective below is finite and unimodal
            // (computation energy rises, transmission energy falls, as the upload shrinks the
            // compute share).
            let fastest_rate = wireless::channel::shannon_rate_raw(dev.p_max.value(), b, g, n0);
            let t_up_fastest =
                if fastest_rate > 0.0 { dev.upload_bits / fastest_rate } else { f64::INFINITY };
            if t_up_fastest >= upload_budget_max {
                // Even flat-out transmission cannot fit the deadline with this bandwidth
                // share: use the whole remaining budget and let the rate floor tell
                // Subproblem 2 that this device needs more bandwidth.
                frequencies.push(dev.f_max.value());
                r_min.push(dev.upload_bits / upload_budget_max);
                continue;
            }
            let energy_of_split = |t_up: f64| -> f64 {
                let f = dev.clamp_frequency(cycles / (round_deadline - t_up));
                let comp = params.kappa * rl * dev.cycles_per_local_iteration() * f * f;
                let rate = dev.upload_bits / t_up;
                let p_needed = wireless::channel::power_for_rate(rate, b, g, n0);
                let p = p_needed.clamp(dev.p_min.value(), dev.p_max.value());
                comp + p * t_up
            };
            let best = numopt::scalar::golden_section_min_with_endpoints(
                energy_of_split,
                t_up_fastest,
                upload_budget_max,
                self.config.scalar_tol * upload_budget_max,
                300,
            );
            let t_up = match best {
                Ok(m) => m.argmin,
                Err(_) => t_up_fastest,
            };
            frequencies.push(dev.clamp_frequency(cycles / (round_deadline - t_up)));
            r_min.push(dev.upload_bits / t_up);
        }
    }

    /// Minimizes the per-round completion time (every device at `f_max` / `p_max`, bandwidth
    /// split to equalize finish times). Returns the allocation and its round time in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if the scenario rejects the allocation shape (cannot
    /// happen for scenarios built by `flsys`).
    pub fn minimize_round_time(&self, scenario: &Scenario) -> Result<(Allocation, f64), CoreError> {
        let n = scenario.devices.len();
        let n0 = scenario.params.noise.watts_per_hz();
        let b_total = scenario.params.total_bandwidth.value();
        let floor = self.config.bandwidth_floor_hz;
        let rl = scenario.params.rl();

        let t_cmp: Vec<f64> = scenario
            .devices
            .iter()
            .map(|d| rl * d.cycles_per_local_iteration() / d.f_max.value())
            .collect();

        // Bandwidth needed by device i to finish within round time t (at p_max).
        let bandwidth_needed = |i: usize, t: f64| -> f64 {
            let dev = &scenario.devices[i];
            let budget = t - t_cmp[i];
            if budget <= 0.0 {
                return f64::INFINITY;
            }
            let r_req = dev.upload_bits / budget;
            min_bandwidth_for_rate(dev.gain.value(), dev.p_max.value(), r_req, n0, b_total, floor)
        };
        let feasible = |t: f64| -> bool {
            let mut sum = 0.0;
            for i in 0..n {
                let b = bandwidth_needed(i, t);
                if !b.is_finite() {
                    return false;
                }
                sum += b;
                if sum > b_total {
                    return false;
                }
            }
            true
        };

        // Bracket the smallest feasible round time and bisect.
        let t_lo = t_cmp.iter().cloned().fold(0.0, f64::max);
        let mut hi = t_lo.max(1e-6) * 2.0 + 1e-3;
        let mut expansions = 0;
        while !feasible(hi) && expansions < 80 {
            hi *= 2.0;
            expansions += 1;
        }
        let mut lo = t_lo;
        for _ in 0..90 {
            let mid = 0.5 * (lo + hi);
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let t_star = hi;

        let mut bandwidths: Vec<f64> =
            (0..n).map(|i| bandwidth_needed(i, t_star).min(b_total)).collect();
        // Hand out any slack proportionally — extra bandwidth can only shorten uploads.
        let used: f64 = bandwidths.iter().sum();
        if used < b_total && used > 0.0 {
            let scale = b_total / used;
            for b in &mut bandwidths {
                *b *= scale;
            }
        }
        let mut allocation = Allocation::new(
            scenario.devices.iter().map(|d| d.p_max.value()).collect(),
            scenario.devices.iter().map(|d| d.f_max.value()).collect(),
            bandwidths,
        );
        allocation.project_feasible(scenario);
        let cost = scenario.cost(&allocation)?;
        Ok((allocation, cost.round_time_s))
    }

    /// Projects the winning allocation ([`SolverWorkspace::best`]) feasible and summarises
    /// its cost — the allocation-free tail of every `*_summary_*` path.
    fn finish_summary(
        &self,
        scenario: &Scenario,
        weights: Weights,
        ws: &mut SolverWorkspace,
        converged: bool,
    ) -> Result<OutcomeSummary, CoreError> {
        ws.best.project_feasible(scenario);
        let cost = scenario.cost_summary(&ws.best)?;
        Ok(OutcomeSummary {
            objective: cost.objective(weights),
            total_energy_j: cost.total_energy_j,
            total_time_s: cost.total_time_s,
            converged,
        })
    }

    /// Materialises a full [`Outcome`] (owned allocation, per-device cost breakdown,
    /// cloned trace) from the workspace state a `*_summary_*` solve left behind.
    fn outcome_from_workspace(
        &self,
        scenario: &Scenario,
        weights: Weights,
        ws: &SolverWorkspace,
        summary: OutcomeSummary,
    ) -> Result<Outcome, CoreError> {
        let allocation = ws.best.clone();
        let cost = scenario.cost(&allocation)?;
        Ok(Outcome {
            total_energy_j: cost.total_energy_j,
            total_time_s: cost.total_time_s,
            objective: cost.objective(weights),
            allocation,
            cost,
            weights,
            trace: Trace { iterations: ws.trace.clone() },
            converged: summary.converged,
        })
    }
}

/// Rate floors `r_n^min = d_n / (T − R_l c_n D_n / f_n)` implied by a round deadline `T`.
///
/// With no pressure on time (`w2 = 0` and no explicit deadline handling by the caller) the
/// floors are zero — the paper's constraint (9a) is slack in that regime.
#[cfg(test)]
fn rate_floors(
    scenario: &Scenario,
    round_time_s: f64,
    frequencies_hz: &[f64],
    weights: Weights,
) -> Vec<f64> {
    let arrays = ScenarioArrays::from_scenario(scenario);
    let mut out = Vec::with_capacity(scenario.devices.len());
    rate_floors_into(
        &arrays,
        scenario.params.rl(),
        round_time_s,
        frequencies_hz,
        weights,
        &mut out,
    );
    out
}

/// `rate_floors` into a caller-owned buffer (cleared first) — the hot-path form used by
/// Algorithm 2's outer loop. Reads the [`ScenarioArrays`] lanes (one zip, no per-device
/// struct chasing); `rl` is the scenario's local-iteration count `R_l`.
fn rate_floors_into(
    arrays: &ScenarioArrays,
    rl: f64,
    round_time_s: f64,
    frequencies_hz: &[f64],
    weights: Weights,
    out: &mut Vec<f64>,
) {
    out.clear();
    let unconstrained = weights.time() <= 0.0 && round_time_s.is_infinite();
    out.extend(arrays.cycles_per_iter.iter().zip(&arrays.upload_bits).zip(frequencies_hz).map(
        |((&cd, &d_bits), &f)| {
            if unconstrained {
                return 0.0;
            }
            let t_cmp = rl * cd / f.max(1e-3);
            let budget = round_time_s - t_cmp;
            if budget <= 0.0 {
                // The deadline leaves no room for the upload: ask for the fastest rate the
                // device could possibly need; the sanitize pass will do its best.
                d_bits / 1e-6
            } else {
                d_bits / budget
            }
        },
    ));
}

/// Smallest bandwidth at which a device with channel gain `gain` can reach `r_min` at power
/// `p_max` (monotone bisection), capped at `b_total`.
fn min_bandwidth_for_rate(
    gain: f64,
    p_max: f64,
    r_min: f64,
    n0: f64,
    b_total: f64,
    floor: f64,
) -> f64 {
    if r_min <= 0.0 {
        return floor;
    }
    if shannon_rate_raw(p_max, b_total, gain, n0) < r_min {
        return f64::INFINITY;
    }
    let mut lo = floor;
    let mut hi = b_total;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if shannon_rate_raw(p_max, mid, gain, n0) >= r_min {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-10 {
            break;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    fn scenario(n: usize, seed: u64) -> Scenario {
        ScenarioBuilder::paper_default().with_devices(n).build(seed).unwrap()
    }

    fn optimizer() -> JointOptimizer {
        JointOptimizer::new(SolverConfig::fast())
    }

    #[test]
    fn solve_beats_equal_split_for_all_paper_weights() {
        let s = scenario(10, 31);
        let opt = optimizer();
        let naive = s.cost(&Allocation::equal_split_max(&s)).unwrap();
        for w in Weights::paper_sweep() {
            let out = opt.solve(&s, w).unwrap();
            assert!(out.allocation.is_feasible(&s, 1e-5), "infeasible at {w:?}");
            assert!(
                out.objective <= naive.objective(w) * (1.0 + 1e-9),
                "objective {} worse than naive {} at {w:?}",
                out.objective,
                naive.objective(w)
            );
        }
    }

    #[test]
    fn energy_decreases_as_w1_grows() {
        let s = scenario(10, 32);
        let opt = optimizer();
        let mut energies = Vec::new();
        let mut times = Vec::new();
        for w in Weights::paper_sweep() {
            let out = opt.solve(&s, w).unwrap();
            energies.push(out.total_energy_j);
            times.push(out.total_time_s);
        }
        // paper_sweep is ordered from w1 = 0.9 down to 0.1: energy should (weakly) increase
        // along the sweep and completion time should (weakly) decrease.
        for pair in energies.windows(2) {
            assert!(pair[1] >= pair[0] * (1.0 - 0.05), "energy not monotone: {energies:?}");
        }
        for pair in times.windows(2) {
            assert!(pair[1] <= pair[0] * (1.0 + 0.05), "time not monotone: {times:?}");
        }
    }

    #[test]
    fn watchdog_degrades_non_finite_objectives_to_a_typed_error() {
        // Frequencies around 1e169 Hz make κ·c·f² overflow to +inf for every feasible
        // frequency, so no outer iteration can produce a finite objective. The watchdog
        // must hand back the typed degradation (and count it) — never accept the
        // non-finite iterate as "best", never panic.
        let s = ScenarioBuilder::paper_default()
            .with_devices(4)
            .with_f_min_hz(1e160)
            .with_f_max_ghz(1e160)
            .build(7)
            .unwrap();
        let opt = optimizer();
        let mut ws = SolverWorkspace::new();
        let before = ws.counters;
        match opt.solve_summary_with(&s, Weights::new(0.5, 0.5).unwrap(), &mut ws) {
            Err(CoreError::NonFiniteObjective { iterations }) => {
                assert!(iterations >= 1, "the watchdog must have let the loop run");
            }
            other => panic!("expected NonFiniteObjective, got {other:?}"),
        }
        assert_eq!(ws.counters.since(&before).degraded_solves, 1);
        // The workspace stays usable: a healthy scenario solves fine right after.
        let healthy = scenario(4, 7);
        let out = opt.solve_summary_with(&healthy, Weights::new(0.5, 0.5).unwrap(), &mut ws);
        assert!(out.is_ok(), "degradation must not poison the workspace: {out:?}");
        assert_eq!(ws.counters.degraded_solves, 1, "healthy solve must not count");
    }

    #[test]
    fn an_expired_solve_deadline_degrades_without_poisoning_the_workspace() {
        let s = scenario(10, 35);
        let opt = optimizer();
        let mut ws = SolverWorkspace::new();

        // A budget that is already in the past must stop the solve at the first boundary
        // check — zero outer iterations, typed error, no hang.
        ws.solve_deadline = Some(std::time::Instant::now() - std::time::Duration::from_millis(1));
        match opt.solve_summary_with(&s, Weights::new(0.5, 0.5).unwrap(), &mut ws) {
            Err(CoreError::DeadlineExpired { iterations }) => assert_eq!(iterations, 0),
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        match opt.solve_with_deadline_summary_in(&s, 500.0, &mut ws) {
            Err(CoreError::DeadlineExpired { iterations }) => assert_eq!(iterations, 0),
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        // A deadline miss is a budget property, not workspace corruption: it must not be
        // counted as a degraded (non-finite) solve.
        assert_eq!(ws.counters.degraded_solves, 0);

        // The budget is a caller-managed input — clearing it restores normal behaviour,
        // and a generous budget never fires.
        ws.solve_deadline = None;
        opt.solve_summary_with(&s, Weights::new(0.5, 0.5).unwrap(), &mut ws).unwrap();
        ws.solve_deadline = Some(std::time::Instant::now() + std::time::Duration::from_secs(3600));
        opt.solve_summary_with(&s, Weights::new(0.5, 0.5).unwrap(), &mut ws).unwrap();
        ws.solve_deadline = None;
    }

    #[test]
    fn quarantine_reset_restores_fresh_workspace_behaviour() {
        let s = scenario(8, 36);
        let opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(true));
        let mut ws = SolverWorkspace::new();
        let fresh = opt.solve_summary_with(&s, Weights::balanced(), &mut ws).unwrap();

        // Dirty everything a solve can dirty (plus the deadline input), then quarantine.
        let _ = opt.solve_summary_with(&s, Weights::balanced(), &mut ws);
        ws.solve_deadline = Some(std::time::Instant::now() + std::time::Duration::from_secs(1));
        ws.quarantine_reset();
        assert!(ws.solve_deadline.is_none(), "quarantine must drop the pending budget");
        assert_eq!(
            ws.counters,
            crate::trace::SolveCounters::default(),
            "quarantine must zero the counters"
        );
        let after = opt.solve_summary_with(&s, Weights::balanced(), &mut ws).unwrap();
        assert_eq!(fresh, after, "a quarantined workspace must behave like a fresh one");
    }

    #[test]
    fn time_only_matches_min_round_time() {
        let s = scenario(8, 33);
        let opt = optimizer();
        let out = opt.solve(&s, Weights::time_only()).unwrap();
        let (_, fastest) = opt.minimize_round_time(&s).unwrap();
        assert!((out.cost.round_time_s - fastest).abs() / fastest < 0.05);
    }

    #[test]
    fn deadline_constrained_meets_deadline() {
        let s = scenario(10, 34);
        let opt = optimizer();
        let (_, fastest_round) = opt.minimize_round_time(&s).unwrap();
        let deadline = fastest_round * s.params.rg() * 2.0;
        let out = opt.solve_with_deadline(&s, deadline).unwrap();
        assert!(
            out.total_time_s <= deadline * 1.01,
            "missed deadline: {} > {}",
            out.total_time_s,
            deadline
        );
        assert!(out.allocation.is_feasible(&s, 1e-5));
    }

    #[test]
    fn looser_deadline_never_costs_more_energy() {
        let s = scenario(10, 35);
        let opt = optimizer();
        let (_, fastest_round) = opt.minimize_round_time(&s).unwrap();
        let base = fastest_round * s.params.rg();
        let tight = opt.solve_with_deadline(&s, base * 1.2).unwrap();
        let loose = opt.solve_with_deadline(&s, base * 3.0).unwrap();
        assert!(
            loose.total_energy_j <= tight.total_energy_j * (1.0 + 0.02),
            "loose {} vs tight {}",
            loose.total_energy_j,
            tight.total_energy_j
        );
    }

    #[test]
    fn impossible_deadline_is_reported() {
        let s = scenario(6, 36);
        let opt = optimizer();
        let err = opt.solve_with_deadline(&s, 1e-3).unwrap_err();
        assert!(matches!(err, CoreError::InfeasibleDeadline { .. }));
        let err = opt.solve_with_deadline(&s, -1.0).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn min_round_time_allocation_is_feasible_and_fast() {
        let s = scenario(12, 37);
        let opt = optimizer();
        let (alloc, round) = opt.minimize_round_time(&s).unwrap();
        assert!(alloc.is_feasible(&s, 1e-5));
        // It should be at least as fast as the naive equal split.
        let naive = s.cost(&Allocation::equal_split_max(&s)).unwrap();
        assert!(round <= naive.round_time_s * (1.0 + 1e-6));
    }

    #[test]
    fn trace_records_iterations_and_best_objective_is_returned() {
        let s = scenario(8, 38);
        let opt = optimizer();
        let out = opt.solve(&s, Weights::balanced()).unwrap();
        assert!(!out.trace.is_empty());
        let best_traced = out.trace.best_objective().unwrap();
        assert!(out.objective <= best_traced * (1.0 + 1e-9));
    }

    #[test]
    fn warm_start_matches_cold_within_outer_tol_and_saves_iterations() {
        let s = scenario(10, 40);
        let cold_opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(false));
        let warm_opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(true));
        for w in Weights::paper_sweep() {
            let mut cold_ws = SolverWorkspace::new();
            let mut warm_ws = SolverWorkspace::new();
            let cold = cold_opt.solve_summary_with(&s, w, &mut cold_ws).unwrap();
            let warm = warm_opt.solve_summary_with(&s, w, &mut warm_ws).unwrap();

            let rel = (warm.objective - cold.objective).abs() / cold.objective;
            assert!(
                rel <= cold_opt.config().outer_tol,
                "warm {} vs cold {} (rel {rel}) at {w:?}",
                warm.objective,
                cold.objective
            );
            assert_eq!(warm.converged, cold.converged, "convergence flags diverged at {w:?}");
            assert!(warm_ws.best.is_feasible(&s, 1e-5));

            // The continuation must do less inner work, not just different work.
            assert!(
                warm_ws.counters.jong_iterations <= cold_ws.counters.jong_iterations,
                "warm jong {} > cold {} at {w:?}",
                warm_ws.counters.jong_iterations,
                cold_ws.counters.jong_iterations
            );
            assert!(
                warm_ws.counters.mu_bisect_evals < cold_ws.counters.mu_bisect_evals,
                "warm μ evals {} not below cold {} at {w:?}",
                warm_ws.counters.mu_bisect_evals,
                cold_ws.counters.mu_bisect_evals
            );
        }
    }

    #[test]
    fn warm_start_deadline_variant_meets_deadline_and_matches_cold_energy() {
        let s = scenario(10, 41);
        let cold_opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(false));
        let warm_opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(true));
        let (_, fastest_round) = cold_opt.minimize_round_time(&s).unwrap();
        let deadline = fastest_round * s.params.rg() * 1.8;

        let cold = cold_opt.solve_with_deadline(&s, deadline).unwrap();
        let mut warm_ws = SolverWorkspace::new();
        let warm = warm_opt.solve_with_deadline_summary_in(&s, deadline, &mut warm_ws).unwrap();

        assert!(warm.total_time_s <= deadline * 1.01, "warm run missed the deadline");
        assert!(warm_ws.best.is_feasible(&s, 1e-5));
        let rel = (warm.total_energy_j - cold.total_energy_j).abs() / cold.total_energy_j;
        assert!(
            rel <= 1e-2,
            "warm deadline energy {} vs cold {} (rel {rel})",
            warm.total_energy_j,
            cold.total_energy_j
        );
    }

    #[test]
    fn warm_workspace_is_deterministic_after_reset() {
        // The engine's determinism hinges on reset_warm_start(): a reused warm workspace,
        // once reset, must reproduce the fresh-workspace warm result bit for bit.
        let opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(true));
        let a = scenario(9, 42);
        let b = scenario(6, 43);

        let fresh = opt.solve_with(&b, Weights::balanced(), &mut SolverWorkspace::new()).unwrap();
        let mut reused = SolverWorkspace::new();
        opt.solve_with(&a, Weights::balanced(), &mut reused).unwrap(); // dirty the warm state
        reused.reset_warm_start();
        let after_reset = opt.solve_with(&b, Weights::balanced(), &mut reused).unwrap();
        assert_eq!(after_reset, fresh, "reset_warm_start must restore fresh behaviour");
    }

    #[test]
    fn trace_records_sp2_iterations_and_fast_path_hits_are_counted() {
        let s = scenario(8, 44);
        let warm_opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(true));
        let mut ws = SolverWorkspace::new();
        let out = warm_opt.solve_with(&s, Weights::balanced(), &mut ws).unwrap();
        assert!(!out.trace.is_empty());
        // Jong iterations recorded per outer iteration must sum to the workspace total.
        let traced: u64 = out.trace.iterations.iter().map(|it| it.sp2_iterations as u64).sum();
        assert_eq!(traced, ws.counters.jong_iterations);
        assert_eq!(ws.counters.outer_iterations, out.trace.len() as u64);
        assert_eq!(ws.counters.jong_iterations, ws.counters.kkt_solves);
    }

    #[test]
    fn rate_floors_shrink_with_looser_deadline() {
        let s = scenario(5, 39);
        let freqs: Vec<f64> = s.devices.iter().map(|d| d.f_max.value()).collect();
        let tight = rate_floors(&s, 0.1, &freqs, Weights::balanced());
        let loose = rate_floors(&s, 1.0, &freqs, Weights::balanced());
        for (t, l) in tight.iter().zip(&loose) {
            assert!(t > l);
        }
    }
}
