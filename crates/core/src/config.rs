//! Solver configuration.

use numopt::JongConfig;
use serde::{Deserialize, Serialize};

/// Tunables of the resource-allocation solver (Algorithm 2 and its subproblem solvers).
///
/// The defaults reproduce the paper's setup; they are deliberately conservative so that the
/// evaluation harness never trips over a half-converged inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Maximum outer iterations `K` of Algorithm 2 (alternating Subproblem 1 / Subproblem 2).
    pub outer_max_iter: usize,
    /// Outer convergence tolerance `ε₀` on the normalized change of the solution vector.
    pub outer_tol: f64,
    /// Newton-like loop settings for Subproblem 2 (the paper's Algorithm 1).
    #[serde(skip, default = "default_jong")]
    pub jong: JongConfig,
    /// Relative tolerance of the bisection that finds the bandwidth-budget multiplier `μ`.
    pub mu_tol: f64,
    /// Tolerance of the one-dimensional searches (Subproblem 1 over `T`, baselines).
    pub scalar_tol: f64,
    /// Feasibility tolerance used when validating the final allocation.
    pub feasibility_tol: f64,
    /// Lower floor on any device's bandwidth share in hertz (keeps Shannon rates strictly
    /// positive so the sum-of-ratios denominators never vanish).
    pub bandwidth_floor_hz: f64,
    /// If `true`, Subproblem 2 cross-checks the Newton-like (Theorem 2) solution against a
    /// direct reference solver and keeps whichever attains lower communication energy.
    pub polish_with_reference: bool,
    /// Enables the warm-start continuation through the solver stack: Subproblem 2 seeds its
    /// Newton-like loop with the previous solve's `(β, ν)` multipliers, reuses the previous
    /// `μ`-root bracket, skips the loop entirely once the rate floors stop moving (see
    /// [`SolverConfig::warm_rmin_tol`]), Subproblem 1 narrows its golden-section bracket
    /// around the previous round time, and Algorithm 2 carries the previous `(p, B)`
    /// iterate between outer iterations instead of restaging it.
    ///
    /// `true` (the default) is the production path: the solver converges to the same fixed
    /// point within the configured tolerances (`outer_tol`, `jong.phi_tol`) along a cheaper
    /// trajectory, so the last bits of the result may differ from the cold path; results
    /// can also depend on what a reused [`SolverWorkspace`](crate::SolverWorkspace) solved
    /// last (the sweep engine resets that state at every cell-group boundary to stay
    /// deterministic). `false` is the bit-exact cold reference path: no warm state is ever
    /// read and results are identical to a solver without the continuation — the sweep
    /// engine's `FEDOPT_WARM_START=0` escape hatch forces it sweep-wide.
    #[serde(default)]
    pub warm_start: bool,
    /// Finds the Theorem-2 bandwidth multiplier `μ` with the superlinear Brent iteration
    /// instead of pure bisection (same bracket, same tolerance, bisection safeguard inside
    /// the step — see `numopt::roots::brent`). `true` (the default) typically cuts the
    /// `g'(μ)` evaluation count by an order of magnitude; `false` is the legacy
    /// pure-bisection path, pinned bit-identical by regression goldens. Both paths clamp
    /// identically when the budget constraint is inactive, and the drift between them is
    /// bounded by the `mu_tol`-wide final bracket, i.e. within the solver's own tolerance.
    #[serde(default = "default_superlinear_mu")]
    pub superlinear_mu: bool,
    /// Carries the *width* of the converged warm `μ` bracket across parametric solves in
    /// addition to its center ([`KktScratch`](crate::KktScratch) already carries the
    /// previous root). The first warm bracket after a reset still opens at the
    /// conservative relative half-width `1e-3`; afterwards the width adapts to how far
    /// the root actually moved last time (clamped to `[1e-5, 1e-3]`), so near-stationary
    /// arms validate their bracket with probes that are three orders of magnitude
    /// tighter and the Brent refinement starts essentially converged. `true` (the
    /// default) only changes *which* bracket the warm path searches — the tolerance and
    /// the cold fallback are untouched, so drift stays within the solver's own `mu_tol`
    /// band; `false` restores the fixed-width warm bracket bit-exactly (the gate works
    /// like [`SolverConfig::superlinear_mu`]). Only read when
    /// [`SolverConfig::warm_start`] is set.
    #[serde(default = "default_adaptive_mu_bracket")]
    pub adaptive_mu_bracket: bool,
    /// Maximum relative drift of Subproblem 2's rate floors `r_n^min` (against the previous
    /// solve's floors) under which the warm-start fast path may skip the Newton-like loop.
    /// Only read when [`SolverConfig::warm_start`] is set. The fast path additionally
    /// requires the carried multipliers to satisfy `jong.phi_tol` at the staged point, so
    /// this bound caps the *constraint* staleness the skip can hide; the objective error it
    /// admits is of the same relative order. The defaults therefore track `outer_tol` — a
    /// rate-floor movement the outer alternation itself would already call converged is the
    /// natural definition of "the denominators stopped moving".
    #[serde(default = "default_warm_rmin_tol")]
    pub warm_rmin_tol: f64,
    /// Starts Algorithm 2's weighted outer loop from the workspace's carried best
    /// allocation ([`SolverWorkspace::best`](crate::SolverWorkspace::best)) instead of the
    /// equal-split initial point, when that allocation matches the scenario's device
    /// count. Combined with [`SolverConfig::warm_start`], a re-solve of the *same*
    /// problem then opens at the converged point with matching rate floors, Subproblem
    /// 2's fast path fires on the first outer iteration, and the loop converges
    /// immediately — zero Jong iterations for an identical repeat.
    ///
    /// `false` (the default) keeps the textbook initialization: every solve's trajectory
    /// is independent of what the workspace solved before, which is what sweeps pin
    /// their goldens against. Serving layers that key workspace reuse by request
    /// fingerprint are the intended consumer: they guarantee the carried best belongs to
    /// the same problem, so continuation is a pure speedup toward the same fixed point
    /// (within `outer_tol`). Only read when [`SolverConfig::warm_start`] is set.
    #[serde(default)]
    pub outer_continuation: bool,
}

fn default_jong() -> JongConfig {
    JongConfig::default()
}

fn default_warm_rmin_tol() -> f64 {
    1.0e-4
}

fn default_superlinear_mu() -> bool {
    true
}

fn default_adaptive_mu_bracket() -> bool {
    true
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            outer_max_iter: 25,
            outer_tol: 1.0e-4,
            jong: default_jong(),
            mu_tol: 1.0e-11,
            scalar_tol: 1.0e-7,
            feasibility_tol: 1.0e-6,
            bandwidth_floor_hz: 1.0,
            polish_with_reference: true,
            warm_start: true,
            warm_rmin_tol: default_warm_rmin_tol(),
            superlinear_mu: default_superlinear_mu(),
            adaptive_mu_bracket: default_adaptive_mu_bracket(),
            outer_continuation: false,
        }
    }
}

impl SolverConfig {
    /// A faster, looser configuration for benchmarks and large sweeps.
    pub fn fast() -> Self {
        Self {
            outer_max_iter: 10,
            outer_tol: 1.0e-3,
            jong: JongConfig { max_iter: 25, phi_tol: 1.0e-6, ..JongConfig::default() },
            mu_tol: 1.0e-9,
            scalar_tol: 1.0e-6,
            warm_rmin_tol: 1.0e-3,
            ..Self::default()
        }
    }

    /// This configuration with the warm-start continuation switched on or off.
    #[must_use]
    pub fn with_warm_start(self, warm_start: bool) -> Self {
        Self { warm_start, ..self }
    }

    /// This configuration with the superlinear `μ`-root step switched on or off
    /// (`false` = the legacy pure-bisection path; see [`SolverConfig::superlinear_mu`]).
    #[must_use]
    pub fn with_superlinear_mu(self, superlinear_mu: bool) -> Self {
        Self { superlinear_mu, ..self }
    }

    /// This configuration with the adaptive warm `μ`-bracket width switched on or off
    /// (`false` = the fixed `1e-3` warm bracket; see
    /// [`SolverConfig::adaptive_mu_bracket`]).
    #[must_use]
    pub fn with_adaptive_mu_bracket(self, adaptive_mu_bracket: bool) -> Self {
        Self { adaptive_mu_bracket, ..self }
    }

    /// This configuration with the outer-loop continuation switched on or off
    /// (`false` = the independent-trajectory initialization; see
    /// [`SolverConfig::outer_continuation`]).
    #[must_use]
    pub fn with_outer_continuation(self, outer_continuation: bool) -> Self {
        Self { outer_continuation, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sensible() {
        let c = SolverConfig::default();
        assert!(c.outer_max_iter >= 5);
        assert!(c.outer_tol > 0.0 && c.outer_tol < 1.0);
        assert!(c.bandwidth_floor_hz > 0.0);
        assert!(c.polish_with_reference);
    }

    #[test]
    fn fast_is_looser_than_default() {
        let fast = SolverConfig::fast();
        let def = SolverConfig::default();
        assert!(fast.outer_max_iter <= def.outer_max_iter);
        assert!(fast.outer_tol >= def.outer_tol);
    }

    #[test]
    fn warm_start_defaults_on_and_rmin_tol_tracks_outer_tol() {
        let def = SolverConfig::default();
        assert!(def.warm_start, "warm start is the library-wide default since PR 6");
        assert_eq!(def.warm_rmin_tol, def.outer_tol);
        let fast = SolverConfig::fast();
        assert!(fast.warm_start);
        assert_eq!(fast.warm_rmin_tol, fast.outer_tol);
        assert!(!SolverConfig::default().with_warm_start(false).warm_start);
    }

    #[test]
    fn superlinear_mu_defaults_on_with_a_legacy_gate() {
        assert!(SolverConfig::default().superlinear_mu);
        assert!(SolverConfig::fast().superlinear_mu);
        let legacy = SolverConfig::default().with_superlinear_mu(false);
        assert!(!legacy.superlinear_mu, "the pure-bisection gate must stay selectable");
        assert_eq!(legacy.with_superlinear_mu(true), SolverConfig::default());
    }
}
