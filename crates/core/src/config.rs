//! Solver configuration.

use numopt::JongConfig;
use serde::{Deserialize, Serialize};

/// Tunables of the resource-allocation solver (Algorithm 2 and its subproblem solvers).
///
/// The defaults reproduce the paper's setup; they are deliberately conservative so that the
/// evaluation harness never trips over a half-converged inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Maximum outer iterations `K` of Algorithm 2 (alternating Subproblem 1 / Subproblem 2).
    pub outer_max_iter: usize,
    /// Outer convergence tolerance `ε₀` on the normalized change of the solution vector.
    pub outer_tol: f64,
    /// Newton-like loop settings for Subproblem 2 (the paper's Algorithm 1).
    #[serde(skip, default = "default_jong")]
    pub jong: JongConfig,
    /// Relative tolerance of the bisection that finds the bandwidth-budget multiplier `μ`.
    pub mu_tol: f64,
    /// Tolerance of the one-dimensional searches (Subproblem 1 over `T`, baselines).
    pub scalar_tol: f64,
    /// Feasibility tolerance used when validating the final allocation.
    pub feasibility_tol: f64,
    /// Lower floor on any device's bandwidth share in hertz (keeps Shannon rates strictly
    /// positive so the sum-of-ratios denominators never vanish).
    pub bandwidth_floor_hz: f64,
    /// If `true`, Subproblem 2 cross-checks the Newton-like (Theorem 2) solution against a
    /// direct reference solver and keeps whichever attains lower communication energy.
    pub polish_with_reference: bool,
}

fn default_jong() -> JongConfig {
    JongConfig::default()
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            outer_max_iter: 25,
            outer_tol: 1.0e-4,
            jong: default_jong(),
            mu_tol: 1.0e-11,
            scalar_tol: 1.0e-7,
            feasibility_tol: 1.0e-6,
            bandwidth_floor_hz: 1.0,
            polish_with_reference: true,
        }
    }
}

impl SolverConfig {
    /// A faster, looser configuration for benchmarks and large sweeps.
    pub fn fast() -> Self {
        Self {
            outer_max_iter: 10,
            outer_tol: 1.0e-3,
            jong: JongConfig { max_iter: 25, phi_tol: 1.0e-6, ..JongConfig::default() },
            mu_tol: 1.0e-9,
            scalar_tol: 1.0e-6,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sensible() {
        let c = SolverConfig::default();
        assert!(c.outer_max_iter >= 5);
        assert!(c.outer_tol > 0.0 && c.outer_tol < 1.0);
        assert!(c.bandwidth_floor_hz > 0.0);
        assert!(c.polish_with_reference);
    }

    #[test]
    fn fast_is_looser_than_default() {
        let fast = SolverConfig::fast();
        let def = SolverConfig::default();
        assert!(fast.outer_max_iter <= def.outer_max_iter);
        assert!(fast.outer_tol >= def.outer_tol);
    }
}
