//! Subproblem 1 — computation-energy / completion-time minimization over `(f, T)`.
//!
//! Given the current uplink times `T_n^up` (fixed by the current `(p, B)`), Subproblem 1 of
//! the paper (problem (10)) is
//!
//! ```text
//! min_{f, T}  w1·R_g·Σ_n κ·R_l·c_n·D_n·f_n²  +  w2·R_g·T
//! s.t.        f_n^min ≤ f_n ≤ f_n^max,
//!             R_l·c_n·D_n / f_n + T_n^up ≤ T .
//! ```
//!
//! Two solvers are provided:
//!
//! * [`solve_direct`] eliminates `f` analytically (for a fixed `T`, the cheapest feasible
//!   frequency is the smallest one meeting the deadline) and minimizes the resulting
//!   one-dimensional convex function of `T` by golden-section search. This is the reference
//!   solution.
//! * [`solve_dual`] follows the paper: it maximizes the Lagrangian dual (17) over the scaled
//!   simplex `{λ ≥ 0, Σ λ_n = w2·R_g}` by projected gradient ascent and recovers the primal
//!   frequencies from equations (16) and (18). The two agree (tests cross-check them); the
//!   dual path exists for fidelity to the paper and as an independent check.
//!
//! [`frequencies_for_deadline`] is the fixed-deadline variant used by the comparisons of
//! Figures 7 and 8 (`w1 = 1, w2 = 0` with `T` given): it simply returns the cheapest feasible
//! frequency per device.

use crate::config::SolverConfig;
use crate::error::CoreError;
use flsys::{Scenario, ScenarioArrays, Weights};
use numopt::projgrad::{projected_gradient_ascent, ProjGradConfig};
use numopt::scalar::{clamp, golden_section_min_with_endpoints};
use numopt::simplex::project_simplex;

/// Geometric half-width of the warm-start golden-section bracket: the previous round time
/// `T` brackets the new search as `[T/γ, T·γ]` (intersected with the feasible `[T_min,
/// T_max]`). The outer alternation moves `T` by a few percent per iteration, so γ = 2 keeps
/// the warm bracket generous — a ~4× narrower interval than the cold `[T_min, T_max]` on
/// paper-default scenarios — while the interior-argmin check below catches any stale seed.
const SP1_WARM_BRACKET_FACTOR: f64 = 2.0;

/// Warm-start carry-over of Subproblem 1: the previous solve's optimal round time `T`,
/// used to narrow the golden-section bracket (the objective is unimodal in `T`, so an
/// argmin strictly inside the narrowed bracket is the global one; an argmin on a clipped
/// edge triggers a full-bracket re-search). Only read when
/// [`SolverConfig::warm_start`](crate::SolverConfig) is enabled;
/// [`Sp1WarmState::reset`] drops the seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sp1WarmState {
    t_prev: f64,
    valid: bool,
}

impl Sp1WarmState {
    /// Drops the carried round-time seed: the next solve searches the full bracket.
    pub fn reset(&mut self) {
        self.valid = false;
    }
}

/// Relative slack allowed between the dual ([`solve_dual`]) and direct ([`solve_direct`])
/// Subproblem-1 objectives before the cross-check fails.
///
/// The direct path minimizes over `T` by a tolerance-bounded golden-section search, so the
/// closed-form dual recovery can legitimately undercut it by the search's own numerical
/// slack. How far depends on the scenario draws: with the workspace's deterministic
/// shim PRNG (`crates/shims/rand`, a SplitMix64-style stream standing in for the registry
/// `rand`), the wide-frequency-box draw used by the cross-check test lands near the edge of
/// the search tolerance, and PR 1 loosened the bound to `1e-4` to absorb it. The gap
/// observed on those draws is ~2·10⁻⁵; this constant pins the bound at 5·10⁻⁵ — tight
/// enough to catch a real dual/direct divergence, loose enough for the shim-PRNG draws.
/// If the shims are ever swapped for the registry crates, the realisations change and this
/// slack should be re-measured.
pub const DUAL_DIRECT_REL_SLACK: f64 = 5.0e-5;

/// Result of a Subproblem-1 solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Sp1Solution {
    /// Optimal CPU frequency per device (Hz).
    pub frequencies_hz: Vec<f64>,
    /// Optimal auxiliary round-completion time `T` (seconds).
    pub round_time_s: f64,
    /// Value of the Subproblem-1 objective `w1·R_g·Σ κ R_l c_n D_n f_n² + w2·R_g·T`.
    pub objective: f64,
}

/// The scalar outputs of a Subproblem-1 solve (the frequencies land in a caller buffer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sp1Summary {
    /// Optimal auxiliary round-completion time `T` (seconds).
    pub round_time_s: f64,
    /// Value of the Subproblem-1 objective `w1·R_g·Σ κ R_l c_n D_n f_n² + w2·R_g·T`.
    pub objective: f64,
}

/// Computation-energy part of the Subproblem-1 objective for a given frequency vector.
fn computation_energy_term(scenario: &Scenario, frequencies: &[f64]) -> f64 {
    let p = &scenario.params;
    scenario
        .devices
        .iter()
        .zip(frequencies)
        .map(|(dev, &f)| p.kappa * p.rl() * dev.cycles_per_local_iteration() * f * f)
        .sum()
}

/// The cheapest feasible frequency under a round deadline, over raw per-device scalars
/// (`cd` = `c_n·D_n`): `f_n = clamp(R_l·c_n·D_n / (T − T_n^up), f_min, f_max)`, or `f_max`
/// (best effort) when the uplink alone exceeds the deadline. This is the form the
/// lane-walking probe loop calls; the arithmetic (and hence the result bits) is the same
/// whether the scalars come from a [`ScenarioArrays`] lane or a profile getter.
#[inline]
fn frequency_for_deadline_raw(
    cd: f64,
    f_min: f64,
    f_max: f64,
    rl: f64,
    deadline_s: f64,
    t_up: f64,
) -> f64 {
    let compute_budget = deadline_s - t_up;
    if compute_budget <= 0.0 {
        f_max
    } else {
        clamp(rl * cd / compute_budget, f_min, f_max)
    }
}

/// [`frequency_for_deadline_raw`] reading from a device profile.
#[inline]
fn frequency_for_deadline(dev: &flsys::DeviceProfile, rl: f64, deadline_s: f64, t_up: f64) -> f64 {
    frequency_for_deadline_raw(
        dev.cycles_per_local_iteration(),
        dev.f_min.value(),
        dev.f_max.value(),
        rl,
        deadline_s,
        t_up,
    )
}

/// The cheapest feasible frequency vector for a given round deadline `T` and uplink times:
/// `f_n = clamp(R_l·c_n·D_n / (T − T_n^up), f_min, f_max)`.
///
/// Devices whose uplink alone exceeds the deadline get `f_max` (best effort).
pub fn frequencies_for_deadline(
    scenario: &Scenario,
    round_deadline_s: f64,
    upload_times_s: &[f64],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(scenario.devices.len());
    frequencies_for_deadline_into(scenario, round_deadline_s, upload_times_s, &mut out);
    out
}

/// [`frequencies_for_deadline`] into a caller-owned buffer (cleared first), for hot paths
/// that reuse one allocation across calls.
pub fn frequencies_for_deadline_into(
    scenario: &Scenario,
    round_deadline_s: f64,
    upload_times_s: &[f64],
    out: &mut Vec<f64>,
) {
    let rl = scenario.params.rl();
    out.clear();
    out.extend(
        scenario
            .devices
            .iter()
            .zip(upload_times_s)
            .map(|(dev, &t_up)| frequency_for_deadline(dev, rl, round_deadline_s, t_up)),
    );
}

/// The smallest round time any frequency assignment can achieve given the uplink times
/// (every device at `f_max`).
pub fn min_feasible_round_time(scenario: &Scenario, upload_times_s: &[f64]) -> f64 {
    let rl = scenario.params.rl();
    scenario
        .devices
        .iter()
        .zip(upload_times_s)
        .map(|(dev, &t_up)| t_up + rl * dev.cycles_per_local_iteration() / dev.f_max.value())
        .fold(0.0, f64::max)
}

/// Solves Subproblem 1 exactly by reducing it to a one-dimensional convex search over `T`.
///
/// # Errors
///
/// Returns [`CoreError::Model`] for a shape mismatch between `upload_times_s` and the
/// scenario, or [`CoreError::Numerical`] if the scalar search fails.
pub fn solve_direct(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
) -> Result<Sp1Solution, CoreError> {
    let mut frequencies_hz = Vec::with_capacity(scenario.devices.len());
    let summary = solve_direct_in(scenario, weights, upload_times_s, config, &mut frequencies_hz)?;
    Ok(Sp1Solution {
        frequencies_hz,
        round_time_s: summary.round_time_s,
        objective: summary.objective,
    })
}

/// [`solve_direct`] with the optimal frequencies written into a caller-owned buffer
/// (cleared first), so the alternating outer loop can reuse one allocation per worker.
///
/// The search itself is allocation-free: each golden-section probe evaluates the objective
/// device by device instead of materialising a frequency vector per probe (the old
/// per-probe `Vec` was the hottest allocation site of the whole sweep), and the per-device
/// energy coefficient `κ·R_l·c_n·D_n` is hoisted out of the probe loop — it is staged in
/// `frequencies_out` (pure scratch until the search ends) rather than recomputed for every
/// probe, with the exact multiplication grouping of the unhoisted expression so results
/// stay bit-identical.
///
/// # Errors
///
/// Same as [`solve_direct`].
pub fn solve_direct_in(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
    frequencies_out: &mut Vec<f64>,
) -> Result<Sp1Summary, CoreError> {
    // Build a throwaway lane view (this convenience form allocates; the sweep hot path
    // holds lanes in its workspace and calls `solve_direct_with_arrays_in` directly). A
    // fresh (invalid) warm state keeps this entry bit-identical to the historical cold
    // full-bracket search regardless of `config.warm_start`.
    let arrays = ScenarioArrays::from_scenario(scenario);
    let mut warm = Sp1WarmState::default();
    let mut probes = 0u64;
    solve_direct_with_arrays_in(
        scenario,
        &arrays,
        weights,
        upload_times_s,
        &SolverConfig { warm_start: false, ..*config },
        frequencies_out,
        &mut warm,
        &mut probes,
    )
}

/// [`solve_direct_in`] over a caller-held lane view — the Algorithm-2 hot-path form.
///
/// Differences from the wrapper: the per-device reads of the probe loop walk the
/// [`ScenarioArrays`] lanes (contiguous, bounds-check-free via `zip`); `warm` carries the
/// previous solve's optimal `T` and, with [`SolverConfig::warm_start`] enabled, narrows the
/// golden-section bracket to `[T/γ, T·γ] ∩ [T_min, T_max]` — the objective is unimodal in
/// `T`, so an argmin strictly inside the narrowed bracket is the global one, and an argmin
/// landing on a clipped bracket edge falls back to the full `[T_min, T_max]` search;
/// `probe_evals` accumulates the number of objective probes the search spends (the
/// [`SolveCounters::sp1_probe_evals`](crate::SolveCounters) evidence). With warm start off
/// the search trajectory — and hence every result bit — matches the historical cold path.
///
/// # Errors
///
/// Same as [`solve_direct`], plus [`CoreError::Model`] if `arrays` does not match the
/// scenario size.
#[allow(clippy::too_many_arguments)]
pub fn solve_direct_with_arrays_in(
    scenario: &Scenario,
    arrays: &ScenarioArrays,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
    frequencies_out: &mut Vec<f64>,
    warm: &mut Sp1WarmState,
    probe_evals: &mut u64,
) -> Result<Sp1Summary, CoreError> {
    check_lengths(scenario, upload_times_s)?;
    if arrays.len() != scenario.devices.len() {
        return Err(CoreError::Model(flsys::FlError::AllocationSizeMismatch {
            devices: scenario.devices.len(),
            got: arrays.len(),
        }));
    }
    let params = &scenario.params;
    let w1 = weights.energy();
    let w2 = weights.time();
    let rg = params.rg();
    let rl = params.rl();

    // Feasible T bracket from the lanes: t_up + R_l·c_nD_n / f at f_max (lower) and f_min
    // (upper). Same per-device expression and max-fold order as the struct walk.
    let t_min = arrays
        .cycles_per_iter
        .iter()
        .zip(&arrays.f_max_hz)
        .zip(upload_times_s)
        .map(|((&cd, &f_max), &t_up)| t_up + rl * cd / f_max)
        .fold(0.0, f64::max);
    let t_max = arrays
        .cycles_per_iter
        .iter()
        .zip(&arrays.f_min_hz)
        .zip(upload_times_s)
        .map(|((&cd, &f_min), &t_up)| t_up + rl * cd / f_min.max(1e-3))
        .fold(0.0, f64::max)
        .max(t_min);

    // Degenerate corner cases first.
    if w2 == 0.0 {
        // No pressure on time: every device runs at its minimum frequency.
        frequencies_out.clear();
        frequencies_out.extend_from_slice(&arrays.f_min_hz);
        let round = round_time(scenario, frequencies_out, upload_times_s);
        let objective =
            w1 * rg * computation_energy_term(scenario, frequencies_out) + w2 * rg * round;
        return Ok(Sp1Summary { round_time_s: round, objective });
    }
    if w1 == 0.0 {
        // No pressure on energy: every device runs flat out.
        frequencies_out.clear();
        frequencies_out.extend_from_slice(&arrays.f_max_hz);
        let round = round_time(scenario, frequencies_out, upload_times_s);
        let objective = w2 * rg * round;
        return Ok(Sp1Summary { round_time_s: round, objective });
    }

    // Hoist the per-device energy coefficient κ·R_l·c_n·D_n out of the probe loop, parked
    // in the output buffer (which nothing reads until `frequencies_for_deadline_into`
    // rewrites it after the search). The grouping `(κ·R_l)·c_nD_n` then `coef·f·f` matches
    // the old inline `κ·R_l·c_nD_n·f·f` left-to-right evaluation exactly, so every probe
    // value — and hence the search trajectory — is bit-identical to the unhoisted code.
    frequencies_out.clear();
    frequencies_out
        .extend(arrays.cycles_per_iter.iter().map(|&cd| params.kappa * params.rl() * cd));
    let energy_coef: &[f64] = frequencies_out;

    let probes = std::cell::Cell::new(0u64);
    let objective_of_t = |t: f64| {
        probes.set(probes.get() + 1);
        // Same per-device terms and summation order as `computation_energy_term` over
        // `frequencies_for_deadline`, without the intermediate vector: one fused
        // bounds-check-free walk over four read-only lanes.
        let mut energy = 0.0;
        let it = energy_coef
            .iter()
            .zip(&arrays.cycles_per_iter)
            .zip(&arrays.f_min_hz)
            .zip(&arrays.f_max_hz)
            .zip(upload_times_s);
        for ((((&coef, &cd), &f_min), &f_max), &t_up) in it {
            let f = frequency_for_deadline_raw(cd, f_min, f_max, rl, t, t_up);
            energy += coef * f * f;
        }
        w1 * rg * energy + w2 * rg * t
    };
    let tol = config.scalar_tol * t_max.max(1.0);

    // Warm-start bracket narrowing around the previous optimal T, validated two ways: the
    // seed must fall inside the feasible interval, and the argmin must come back strictly
    // interior to any clipped edge (unimodality then guarantees it is the global argmin;
    // an edge hit means the optimum moved outside the narrow bracket — re-search in full).
    let mut best = None;
    if config.warm_start && warm.valid && warm.t_prev.is_finite() {
        let lo = t_min.max(warm.t_prev / SP1_WARM_BRACKET_FACTOR);
        let hi = t_max.min(warm.t_prev * SP1_WARM_BRACKET_FACTOR);
        if lo < hi {
            let candidate = golden_section_min_with_endpoints(&objective_of_t, lo, hi, tol, 500)?;
            let clipped_lo = lo > t_min && candidate.argmin <= lo + tol;
            let clipped_hi = hi < t_max && candidate.argmin >= hi - tol;
            if !clipped_lo && !clipped_hi {
                best = Some(candidate);
            }
        }
    }
    let best = match best {
        Some(best) => best,
        None => golden_section_min_with_endpoints(&objective_of_t, t_min, t_max, tol, 500)?,
    };
    *probe_evals += probes.get();
    if config.warm_start {
        warm.t_prev = best.argmin;
        warm.valid = true;
    }
    frequencies_for_deadline_into(scenario, best.argmin, upload_times_s, frequencies_out);
    // Report the actually achieved round time (≤ the searched T when clamping bites).
    let achieved_round = round_time(scenario, frequencies_out, upload_times_s);
    let round_time_s = achieved_round.min(best.argmin).max(t_min);
    let objective =
        w1 * rg * computation_energy_term(scenario, frequencies_out) + w2 * rg * round_time_s;
    Ok(Sp1Summary { round_time_s, objective })
}

/// Solves Subproblem 1 through the paper's Lagrangian dual (17):
/// maximize `Σ_n (2^{-2/3} + 2^{1/3})·h·c_n·D_n·λ_n^{2/3} + T_n^up·λ_n` over
/// `{λ ≥ 0, Σ λ_n = w2·R_g}`, with `h = R_l (w1 κ R_g)^{1/3}`, then recover
/// `f_n* = (λ_n / (2 w1 R_g κ))^{1/3}` clamped into the frequency box (equations (16), (18)).
///
/// # Errors
///
/// Returns [`CoreError::Model`] on a length mismatch. Falls back to [`solve_direct`]
/// internally when a weight is exactly zero (the dual is degenerate there).
pub fn solve_dual(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
) -> Result<Sp1Solution, CoreError> {
    solve_dual_in(scenario, weights, upload_times_s, config, &mut Vec::new())
}

/// [`solve_dual`] with the `c_n·D_n` coefficient vector pooled through a caller-owned
/// buffer (the [`SolverWorkspace::sp1_cd`](crate::SolverWorkspace) field is reserved for
/// exactly this), so the dual reference path stops allocating that vector — and its
/// historical per-closure clones of it and of the upload times — on every call. The ascent
/// start vector and the projected-gradient internals still allocate; this path exists for
/// fidelity and cross-checking, not for the sweep hot loop.
///
/// # Errors
///
/// Same as [`solve_dual`].
pub fn solve_dual_in(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
    cd_scratch: &mut Vec<f64>,
) -> Result<Sp1Solution, CoreError> {
    check_lengths(scenario, upload_times_s)?;
    let w1 = weights.energy();
    let w2 = weights.time();
    if w1 == 0.0 || w2 == 0.0 {
        return solve_direct(scenario, weights, upload_times_s, config);
    }
    let params = &scenario.params;
    let rg = params.rg();
    let kappa = params.kappa;
    let rl = params.rl();
    let h = rl * (w1 * kappa * rg).powf(1.0 / 3.0);
    let coef: f64 = 2f64.powf(-2.0 / 3.0) + 2f64.powf(1.0 / 3.0);

    cd_scratch.clear();
    cd_scratch.extend(scenario.devices.iter().map(|d| d.cycles_per_local_iteration()));
    let cd: &[f64] = cd_scratch;
    let t_up = upload_times_s;
    let radius = w2 * rg;
    let n = scenario.devices.len();

    let objective = move |lambda: &[f64]| -> f64 {
        lambda
            .iter()
            .enumerate()
            .map(|(i, &l)| coef * h * cd[i] * l.max(0.0).powf(2.0 / 3.0) + t_up[i] * l)
            .sum()
    };
    let gradient = move |lambda: &[f64], g: &mut [f64]| {
        for i in 0..lambda.len() {
            g[i] = (2.0 / 3.0) * coef * h * cd[i] * lambda[i].max(1e-18).powf(-1.0 / 3.0) + t_up[i];
        }
    };

    let start = vec![radius / n as f64; n];
    let out = projected_gradient_ascent(
        start,
        objective,
        gradient,
        |x| project_simplex(x, radius),
        ProjGradConfig { step: radius / n as f64, max_iter: 5_000, ..ProjGradConfig::default() },
    )?;

    // Primal recovery (16) + (18).
    let frequencies_hz: Vec<f64> = scenario
        .devices
        .iter()
        .zip(&out.x)
        .map(|(dev, &lambda)| {
            let f_star = (lambda.max(0.0) / (2.0 * w1 * rg * kappa)).powf(1.0 / 3.0);
            clamp(f_star, dev.f_min.value(), dev.f_max.value())
        })
        .collect();
    let round_time_s = round_time(scenario, &frequencies_hz, upload_times_s);
    let objective =
        w1 * rg * computation_energy_term(scenario, &frequencies_hz) + w2 * rg * round_time_s;
    Ok(Sp1Solution { frequencies_hz, round_time_s, objective })
}

fn round_time(scenario: &Scenario, frequencies: &[f64], upload_times_s: &[f64]) -> f64 {
    let rl = scenario.params.rl();
    scenario
        .devices
        .iter()
        .enumerate()
        .map(|(i, dev)| {
            upload_times_s[i] + rl * dev.cycles_per_local_iteration() / frequencies[i].max(1e-3)
        })
        .fold(0.0, f64::max)
}

fn check_lengths(scenario: &Scenario, upload_times_s: &[f64]) -> Result<(), CoreError> {
    if upload_times_s.len() != scenario.devices.len() {
        return Err(CoreError::Model(flsys::FlError::AllocationSizeMismatch {
            devices: scenario.devices.len(),
            got: upload_times_s.len(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    fn scenario(n: usize) -> Scenario {
        ScenarioBuilder::paper_default().with_devices(n).build(123).unwrap()
    }

    fn uniform_uploads(scenario: &Scenario, t: f64) -> Vec<f64> {
        vec![t; scenario.devices.len()]
    }

    #[test]
    fn direct_beats_or_matches_naive_choices() {
        let s = scenario(10);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.01);
        let w = Weights::balanced();
        let sol = solve_direct(&s, w, &uploads, &cfg).unwrap();

        // Compare against running everything at f_max and at f_min.
        for f_choice in ["max", "min"] {
            let freqs: Vec<f64> = s
                .devices
                .iter()
                .map(|d| if f_choice == "max" { d.f_max.value() } else { d.f_min.value() })
                .collect();
            let t = round_time(&s, &freqs, &uploads);
            let obj = w.energy() * s.params.rg() * computation_energy_term(&s, &freqs)
                + w.time() * s.params.rg() * t;
            assert!(
                sol.objective <= obj * (1.0 + 1e-9),
                "direct {} should beat naive {f_choice} {obj}",
                sol.objective
            );
        }
    }

    #[test]
    fn direct_respects_frequency_boxes_and_deadline() {
        let s = scenario(20);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.02);
        let sol = solve_direct(&s, Weights::new(0.7, 0.3).unwrap(), &uploads, &cfg).unwrap();
        for (dev, &f) in s.devices.iter().zip(&sol.frequencies_hz) {
            assert!(f >= dev.f_min.value() - 1.0 && f <= dev.f_max.value() + 1.0);
        }
        // Every device finishes within the reported round time (up to numerical slack).
        let rl = s.params.rl();
        for (i, dev) in s.devices.iter().enumerate() {
            let t = uploads[i] + rl * dev.cycles_per_local_iteration() / sol.frequencies_hz[i];
            assert!(t <= sol.round_time_s * (1.0 + 1e-6), "device {i} misses deadline");
        }
    }

    #[test]
    fn extreme_weights_hit_boxes() {
        let s = scenario(5);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.01);
        let energy_only = solve_direct(&s, Weights::energy_only(), &uploads, &cfg).unwrap();
        for (dev, &f) in s.devices.iter().zip(&energy_only.frequencies_hz) {
            assert_eq!(f, dev.f_min.value());
        }
        let time_only = solve_direct(&s, Weights::time_only(), &uploads, &cfg).unwrap();
        for (dev, &f) in s.devices.iter().zip(&time_only.frequencies_hz) {
            assert_eq!(f, dev.f_max.value());
        }
        assert!(time_only.round_time_s < energy_only.round_time_s);
    }

    #[test]
    fn higher_time_weight_gives_faster_rounds() {
        let s = scenario(15);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.015);
        let slow = solve_direct(&s, Weights::new(0.9, 0.1).unwrap(), &uploads, &cfg).unwrap();
        let fast = solve_direct(&s, Weights::new(0.1, 0.9).unwrap(), &uploads, &cfg).unwrap();
        assert!(fast.round_time_s <= slow.round_time_s + 1e-9);
        let e = |sol: &Sp1Solution| computation_energy_term(&s, &sol.frequencies_hz);
        assert!(e(&fast) >= e(&slow) - 1e-12);
    }

    #[test]
    fn dual_matches_direct_when_unclamped() {
        // Use a wide frequency box so the closed-form (16) is not clamped.
        let s = ScenarioBuilder::paper_default()
            .with_devices(8)
            .with_frequency_range(
                wireless::units::Hertz::new(1.0e3),
                wireless::units::Hertz::from_ghz(10.0),
            )
            .build(7)
            .unwrap();
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.01);
        let w = Weights::balanced();
        let direct = solve_direct(&s, w, &uploads, &cfg).unwrap();
        let dual = solve_dual(&s, w, &uploads, &cfg).unwrap();
        let rel = (dual.objective - direct.objective).abs() / direct.objective;
        assert!(rel < 0.05, "dual {} vs direct {} (rel {rel})", dual.objective, direct.objective);
        // The direct path minimizes over T by a tolerance-bounded 1-D search, so the dual
        // recovery can undercut it only within that numerical slack (see the constant's
        // docs for the shim-PRNG provenance of the bound).
        assert!(dual.objective >= direct.objective * (1.0 - DUAL_DIRECT_REL_SLACK));
    }

    #[test]
    fn deadline_frequencies_meet_deadline() {
        let s = scenario(12);
        let uploads = uniform_uploads(&s, 0.01);
        let deadline = 0.3;
        let freqs = frequencies_for_deadline(&s, deadline, &uploads);
        let rl = s.params.rl();
        for (i, dev) in s.devices.iter().enumerate() {
            let t = uploads[i] + rl * dev.cycles_per_local_iteration() / freqs[i];
            // Either the deadline is met or the device is already at f_max (best effort).
            assert!(t <= deadline * (1.0 + 1e-9) || (freqs[i] - dev.f_max.value()).abs() < 1.0);
        }
    }

    #[test]
    fn impossible_deadline_returns_fmax() {
        let s = scenario(4);
        let uploads = uniform_uploads(&s, 1.0);
        let freqs = frequencies_for_deadline(&s, 0.5, &uploads); // uplink alone exceeds deadline
        for (dev, f) in s.devices.iter().zip(freqs) {
            assert_eq!(f, dev.f_max.value());
        }
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let s = scenario(3);
        let cfg = SolverConfig::default();
        let err = solve_direct(&s, Weights::balanced(), &[0.01, 0.01], &cfg).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn min_feasible_round_time_is_lower_bound() {
        let s = scenario(10);
        let uploads = uniform_uploads(&s, 0.02);
        let t_min = min_feasible_round_time(&s, &uploads);
        let cfg = SolverConfig::default();
        for w in Weights::paper_sweep() {
            let sol = solve_direct(&s, w, &uploads, &cfg).unwrap();
            assert!(sol.round_time_s >= t_min - 1e-9);
        }
    }

    #[test]
    fn arrays_entry_is_bit_identical_to_wrapper_when_cold() {
        let s = scenario(14);
        let arrays = ScenarioArrays::from_scenario(&s);
        let cfg = SolverConfig::default().with_warm_start(false);
        let uploads = uniform_uploads(&s, 0.012);
        let w = Weights::new(0.6, 0.4).unwrap();

        let mut wrapper_freqs = Vec::new();
        let wrapper = solve_direct_in(&s, w, &uploads, &cfg, &mut wrapper_freqs).unwrap();

        let mut lane_freqs = Vec::new();
        let mut warm = Sp1WarmState::default();
        let mut probes = 0u64;
        let lanes = solve_direct_with_arrays_in(
            &s,
            &arrays,
            w,
            &uploads,
            &cfg,
            &mut lane_freqs,
            &mut warm,
            &mut probes,
        )
        .unwrap();
        assert_eq!(wrapper, lanes);
        assert_eq!(wrapper_freqs, lane_freqs);
        assert!(probes > 0, "the probe counter must observe the search");
    }

    #[test]
    fn warm_bracket_saves_probes_and_stays_on_the_optimum() {
        let s = scenario(12);
        let arrays = ScenarioArrays::from_scenario(&s);
        let warm_cfg = SolverConfig::default().with_warm_start(true);
        let cold_cfg = warm_cfg.with_warm_start(false);
        let w = Weights::balanced();
        let uploads = uniform_uploads(&s, 0.015);
        // The outer alternation's typical move: upload times shift by a couple percent.
        let nearby = uniform_uploads(&s, 0.0153);

        let mut freqs = Vec::new();
        let mut warm = Sp1WarmState::default();
        let mut warm_probes = 0u64;
        solve_direct_with_arrays_in(
            &s,
            &arrays,
            w,
            &uploads,
            &warm_cfg,
            &mut freqs,
            &mut warm,
            &mut warm_probes,
        )
        .unwrap();
        let seeded_before = warm_probes;
        let warm_sol = solve_direct_with_arrays_in(
            &s,
            &arrays,
            w,
            &nearby,
            &warm_cfg,
            &mut freqs,
            &mut warm,
            &mut warm_probes,
        )
        .unwrap();
        let warm_second = warm_probes - seeded_before;

        let mut cold_state = Sp1WarmState::default();
        let mut cold_probes = 0u64;
        let cold_sol = solve_direct_with_arrays_in(
            &s,
            &arrays,
            w,
            &nearby,
            &cold_cfg,
            &mut freqs,
            &mut cold_state,
            &mut cold_probes,
        )
        .unwrap();

        assert!(
            warm_second < cold_probes,
            "narrowed bracket must probe less: warm {warm_second} vs cold {cold_probes}"
        );
        let rel = (warm_sol.objective - cold_sol.objective).abs() / cold_sol.objective;
        assert!(
            rel <= 1e-4,
            "warm {} vs cold {} (rel {rel})",
            warm_sol.objective,
            cold_sol.objective
        );

        // A wildly stale seed must fall back to the full bracket and still land on the
        // cold optimum (edge-hit detection), not silently return a clipped-bracket argmin.
        let mut stale = Sp1WarmState { t_prev: cold_sol.round_time_s * 50.0, valid: true };
        let mut stale_probes = 0u64;
        let stale_sol = solve_direct_with_arrays_in(
            &s,
            &arrays,
            w,
            &nearby,
            &warm_cfg,
            &mut freqs,
            &mut stale,
            &mut stale_probes,
        )
        .unwrap();
        let rel = (stale_sol.objective - cold_sol.objective).abs() / cold_sol.objective;
        assert!(rel <= 1e-6, "stale seed must re-search in full (rel {rel})");
    }
}
