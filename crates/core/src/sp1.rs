//! Subproblem 1 — computation-energy / completion-time minimization over `(f, T)`.
//!
//! Given the current uplink times `T_n^up` (fixed by the current `(p, B)`), Subproblem 1 of
//! the paper (problem (10)) is
//!
//! ```text
//! min_{f, T}  w1·R_g·Σ_n κ·R_l·c_n·D_n·f_n²  +  w2·R_g·T
//! s.t.        f_n^min ≤ f_n ≤ f_n^max,
//!             R_l·c_n·D_n / f_n + T_n^up ≤ T .
//! ```
//!
//! Two solvers are provided:
//!
//! * [`solve_direct`] eliminates `f` analytically (for a fixed `T`, the cheapest feasible
//!   frequency is the smallest one meeting the deadline) and minimizes the resulting
//!   one-dimensional convex function of `T` by golden-section search. This is the reference
//!   solution.
//! * [`solve_dual`] follows the paper: it maximizes the Lagrangian dual (17) over the scaled
//!   simplex `{λ ≥ 0, Σ λ_n = w2·R_g}` by projected gradient ascent and recovers the primal
//!   frequencies from equations (16) and (18). The two agree (tests cross-check them); the
//!   dual path exists for fidelity to the paper and as an independent check.
//!
//! [`frequencies_for_deadline`] is the fixed-deadline variant used by the comparisons of
//! Figures 7 and 8 (`w1 = 1, w2 = 0` with `T` given): it simply returns the cheapest feasible
//! frequency per device.

use crate::config::SolverConfig;
use crate::error::CoreError;
use flsys::{Scenario, Weights};
use numopt::projgrad::{projected_gradient_ascent, ProjGradConfig};
use numopt::scalar::{clamp, golden_section_min_with_endpoints};
use numopt::simplex::project_simplex;

/// Relative slack allowed between the dual ([`solve_dual`]) and direct ([`solve_direct`])
/// Subproblem-1 objectives before the cross-check fails.
///
/// The direct path minimizes over `T` by a tolerance-bounded golden-section search, so the
/// closed-form dual recovery can legitimately undercut it by the search's own numerical
/// slack. How far depends on the scenario draws: with the workspace's deterministic
/// shim PRNG (`crates/shims/rand`, a SplitMix64-style stream standing in for the registry
/// `rand`), the wide-frequency-box draw used by the cross-check test lands near the edge of
/// the search tolerance, and PR 1 loosened the bound to `1e-4` to absorb it. The gap
/// observed on those draws is ~2·10⁻⁵; this constant pins the bound at 5·10⁻⁵ — tight
/// enough to catch a real dual/direct divergence, loose enough for the shim-PRNG draws.
/// If the shims are ever swapped for the registry crates, the realisations change and this
/// slack should be re-measured.
pub const DUAL_DIRECT_REL_SLACK: f64 = 5.0e-5;

/// Result of a Subproblem-1 solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Sp1Solution {
    /// Optimal CPU frequency per device (Hz).
    pub frequencies_hz: Vec<f64>,
    /// Optimal auxiliary round-completion time `T` (seconds).
    pub round_time_s: f64,
    /// Value of the Subproblem-1 objective `w1·R_g·Σ κ R_l c_n D_n f_n² + w2·R_g·T`.
    pub objective: f64,
}

/// The scalar outputs of a Subproblem-1 solve (the frequencies land in a caller buffer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sp1Summary {
    /// Optimal auxiliary round-completion time `T` (seconds).
    pub round_time_s: f64,
    /// Value of the Subproblem-1 objective `w1·R_g·Σ κ R_l c_n D_n f_n² + w2·R_g·T`.
    pub objective: f64,
}

/// Computation-energy part of the Subproblem-1 objective for a given frequency vector.
fn computation_energy_term(scenario: &Scenario, frequencies: &[f64]) -> f64 {
    let p = &scenario.params;
    scenario
        .devices
        .iter()
        .zip(frequencies)
        .map(|(dev, &f)| p.kappa * p.rl() * dev.cycles_per_local_iteration() * f * f)
        .sum()
}

/// The cheapest feasible frequency for one device under a round deadline: `f_n =
/// clamp(R_l·c_n·D_n / (T − T_n^up), f_min, f_max)`, or `f_max` (best effort) when the
/// uplink alone exceeds the deadline.
#[inline]
fn frequency_for_deadline(dev: &flsys::DeviceProfile, rl: f64, deadline_s: f64, t_up: f64) -> f64 {
    let compute_budget = deadline_s - t_up;
    if compute_budget <= 0.0 {
        dev.f_max.value()
    } else {
        dev.clamp_frequency(rl * dev.cycles_per_local_iteration() / compute_budget)
    }
}

/// The cheapest feasible frequency vector for a given round deadline `T` and uplink times:
/// `f_n = clamp(R_l·c_n·D_n / (T − T_n^up), f_min, f_max)`.
///
/// Devices whose uplink alone exceeds the deadline get `f_max` (best effort).
pub fn frequencies_for_deadline(
    scenario: &Scenario,
    round_deadline_s: f64,
    upload_times_s: &[f64],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(scenario.devices.len());
    frequencies_for_deadline_into(scenario, round_deadline_s, upload_times_s, &mut out);
    out
}

/// [`frequencies_for_deadline`] into a caller-owned buffer (cleared first), for hot paths
/// that reuse one allocation across calls.
pub fn frequencies_for_deadline_into(
    scenario: &Scenario,
    round_deadline_s: f64,
    upload_times_s: &[f64],
    out: &mut Vec<f64>,
) {
    let rl = scenario.params.rl();
    out.clear();
    out.extend(
        scenario
            .devices
            .iter()
            .zip(upload_times_s)
            .map(|(dev, &t_up)| frequency_for_deadline(dev, rl, round_deadline_s, t_up)),
    );
}

/// The smallest round time any frequency assignment can achieve given the uplink times
/// (every device at `f_max`).
pub fn min_feasible_round_time(scenario: &Scenario, upload_times_s: &[f64]) -> f64 {
    let rl = scenario.params.rl();
    scenario
        .devices
        .iter()
        .zip(upload_times_s)
        .map(|(dev, &t_up)| t_up + rl * dev.cycles_per_local_iteration() / dev.f_max.value())
        .fold(0.0, f64::max)
}

/// Solves Subproblem 1 exactly by reducing it to a one-dimensional convex search over `T`.
///
/// # Errors
///
/// Returns [`CoreError::Model`] for a shape mismatch between `upload_times_s` and the
/// scenario, or [`CoreError::Numerical`] if the scalar search fails.
pub fn solve_direct(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
) -> Result<Sp1Solution, CoreError> {
    let mut frequencies_hz = Vec::with_capacity(scenario.devices.len());
    let summary = solve_direct_in(scenario, weights, upload_times_s, config, &mut frequencies_hz)?;
    Ok(Sp1Solution {
        frequencies_hz,
        round_time_s: summary.round_time_s,
        objective: summary.objective,
    })
}

/// [`solve_direct`] with the optimal frequencies written into a caller-owned buffer
/// (cleared first), so the alternating outer loop can reuse one allocation per worker.
///
/// The search itself is allocation-free: each golden-section probe evaluates the objective
/// device by device instead of materialising a frequency vector per probe (the old
/// per-probe `Vec` was the hottest allocation site of the whole sweep), and the per-device
/// energy coefficient `κ·R_l·c_n·D_n` is hoisted out of the probe loop — it is staged in
/// `frequencies_out` (pure scratch until the search ends) rather than recomputed for every
/// probe, with the exact multiplication grouping of the unhoisted expression so results
/// stay bit-identical.
///
/// # Errors
///
/// Same as [`solve_direct`].
pub fn solve_direct_in(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
    frequencies_out: &mut Vec<f64>,
) -> Result<Sp1Summary, CoreError> {
    check_lengths(scenario, upload_times_s)?;
    let params = &scenario.params;
    let w1 = weights.energy();
    let w2 = weights.time();
    let rg = params.rg();
    let rl = params.rl();

    let t_min = min_feasible_round_time(scenario, upload_times_s);
    let t_max = scenario
        .devices
        .iter()
        .zip(upload_times_s)
        .map(|(dev, &t_up)| {
            t_up + rl * dev.cycles_per_local_iteration() / dev.f_min.value().max(1e-3)
        })
        .fold(0.0, f64::max)
        .max(t_min);

    // Degenerate corner cases first.
    if w2 == 0.0 {
        // No pressure on time: every device runs at its minimum frequency.
        frequencies_out.clear();
        frequencies_out.extend(scenario.devices.iter().map(|d| d.f_min.value()));
        let round = round_time(scenario, frequencies_out, upload_times_s);
        let objective =
            w1 * rg * computation_energy_term(scenario, frequencies_out) + w2 * rg * round;
        return Ok(Sp1Summary { round_time_s: round, objective });
    }
    if w1 == 0.0 {
        // No pressure on energy: every device runs flat out.
        frequencies_out.clear();
        frequencies_out.extend(scenario.devices.iter().map(|d| d.f_max.value()));
        let round = round_time(scenario, frequencies_out, upload_times_s);
        let objective = w2 * rg * round;
        return Ok(Sp1Summary { round_time_s: round, objective });
    }

    // Hoist the per-device energy coefficient κ·R_l·c_n·D_n out of the probe loop, parked
    // in the output buffer (which nothing reads until `frequencies_for_deadline_into`
    // rewrites it after the search). The grouping `(κ·R_l)·c_nD_n` then `coef·f·f` matches
    // the old inline `κ·R_l·c_nD_n·f·f` left-to-right evaluation exactly, so every probe
    // value — and hence the search trajectory — is bit-identical to the unhoisted code.
    frequencies_out.clear();
    frequencies_out.extend(
        scenario
            .devices
            .iter()
            .map(|dev| params.kappa * params.rl() * dev.cycles_per_local_iteration()),
    );
    let energy_coef: &[f64] = frequencies_out;

    let objective_of_t = |t: f64| {
        // Same per-device terms and summation order as `computation_energy_term` over
        // `frequencies_for_deadline`, without the intermediate vector.
        let mut energy = 0.0;
        for (i, (dev, &t_up)) in scenario.devices.iter().zip(upload_times_s).enumerate() {
            let f = frequency_for_deadline(dev, rl, t, t_up);
            energy += energy_coef[i] * f * f;
        }
        w1 * rg * energy + w2 * rg * t
    };
    let best = golden_section_min_with_endpoints(
        objective_of_t,
        t_min,
        t_max,
        config.scalar_tol * t_max.max(1.0),
        500,
    )?;
    frequencies_for_deadline_into(scenario, best.argmin, upload_times_s, frequencies_out);
    // Report the actually achieved round time (≤ the searched T when clamping bites).
    let achieved_round = round_time(scenario, frequencies_out, upload_times_s);
    let round_time_s = achieved_round.min(best.argmin).max(t_min);
    let objective =
        w1 * rg * computation_energy_term(scenario, frequencies_out) + w2 * rg * round_time_s;
    Ok(Sp1Summary { round_time_s, objective })
}

/// Solves Subproblem 1 through the paper's Lagrangian dual (17):
/// maximize `Σ_n (2^{-2/3} + 2^{1/3})·h·c_n·D_n·λ_n^{2/3} + T_n^up·λ_n` over
/// `{λ ≥ 0, Σ λ_n = w2·R_g}`, with `h = R_l (w1 κ R_g)^{1/3}`, then recover
/// `f_n* = (λ_n / (2 w1 R_g κ))^{1/3}` clamped into the frequency box (equations (16), (18)).
///
/// # Errors
///
/// Returns [`CoreError::Model`] on a length mismatch. Falls back to [`solve_direct`]
/// internally when a weight is exactly zero (the dual is degenerate there).
pub fn solve_dual(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
) -> Result<Sp1Solution, CoreError> {
    solve_dual_in(scenario, weights, upload_times_s, config, &mut Vec::new())
}

/// [`solve_dual`] with the `c_n·D_n` coefficient vector pooled through a caller-owned
/// buffer (the [`SolverWorkspace::sp1_cd`](crate::SolverWorkspace) field is reserved for
/// exactly this), so the dual reference path stops allocating that vector — and its
/// historical per-closure clones of it and of the upload times — on every call. The ascent
/// start vector and the projected-gradient internals still allocate; this path exists for
/// fidelity and cross-checking, not for the sweep hot loop.
///
/// # Errors
///
/// Same as [`solve_dual`].
pub fn solve_dual_in(
    scenario: &Scenario,
    weights: Weights,
    upload_times_s: &[f64],
    config: &SolverConfig,
    cd_scratch: &mut Vec<f64>,
) -> Result<Sp1Solution, CoreError> {
    check_lengths(scenario, upload_times_s)?;
    let w1 = weights.energy();
    let w2 = weights.time();
    if w1 == 0.0 || w2 == 0.0 {
        return solve_direct(scenario, weights, upload_times_s, config);
    }
    let params = &scenario.params;
    let rg = params.rg();
    let kappa = params.kappa;
    let rl = params.rl();
    let h = rl * (w1 * kappa * rg).powf(1.0 / 3.0);
    let coef: f64 = 2f64.powf(-2.0 / 3.0) + 2f64.powf(1.0 / 3.0);

    cd_scratch.clear();
    cd_scratch.extend(scenario.devices.iter().map(|d| d.cycles_per_local_iteration()));
    let cd: &[f64] = cd_scratch;
    let t_up = upload_times_s;
    let radius = w2 * rg;
    let n = scenario.devices.len();

    let objective = move |lambda: &[f64]| -> f64 {
        lambda
            .iter()
            .enumerate()
            .map(|(i, &l)| coef * h * cd[i] * l.max(0.0).powf(2.0 / 3.0) + t_up[i] * l)
            .sum()
    };
    let gradient = move |lambda: &[f64], g: &mut [f64]| {
        for i in 0..lambda.len() {
            g[i] = (2.0 / 3.0) * coef * h * cd[i] * lambda[i].max(1e-18).powf(-1.0 / 3.0) + t_up[i];
        }
    };

    let start = vec![radius / n as f64; n];
    let out = projected_gradient_ascent(
        start,
        objective,
        gradient,
        |x| project_simplex(x, radius),
        ProjGradConfig { step: radius / n as f64, max_iter: 5_000, ..ProjGradConfig::default() },
    )?;

    // Primal recovery (16) + (18).
    let frequencies_hz: Vec<f64> = scenario
        .devices
        .iter()
        .zip(&out.x)
        .map(|(dev, &lambda)| {
            let f_star = (lambda.max(0.0) / (2.0 * w1 * rg * kappa)).powf(1.0 / 3.0);
            clamp(f_star, dev.f_min.value(), dev.f_max.value())
        })
        .collect();
    let round_time_s = round_time(scenario, &frequencies_hz, upload_times_s);
    let objective =
        w1 * rg * computation_energy_term(scenario, &frequencies_hz) + w2 * rg * round_time_s;
    Ok(Sp1Solution { frequencies_hz, round_time_s, objective })
}

fn round_time(scenario: &Scenario, frequencies: &[f64], upload_times_s: &[f64]) -> f64 {
    let rl = scenario.params.rl();
    scenario
        .devices
        .iter()
        .enumerate()
        .map(|(i, dev)| {
            upload_times_s[i] + rl * dev.cycles_per_local_iteration() / frequencies[i].max(1e-3)
        })
        .fold(0.0, f64::max)
}

fn check_lengths(scenario: &Scenario, upload_times_s: &[f64]) -> Result<(), CoreError> {
    if upload_times_s.len() != scenario.devices.len() {
        return Err(CoreError::Model(flsys::FlError::AllocationSizeMismatch {
            devices: scenario.devices.len(),
            got: upload_times_s.len(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::ScenarioBuilder;

    fn scenario(n: usize) -> Scenario {
        ScenarioBuilder::paper_default().with_devices(n).build(123).unwrap()
    }

    fn uniform_uploads(scenario: &Scenario, t: f64) -> Vec<f64> {
        vec![t; scenario.devices.len()]
    }

    #[test]
    fn direct_beats_or_matches_naive_choices() {
        let s = scenario(10);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.01);
        let w = Weights::balanced();
        let sol = solve_direct(&s, w, &uploads, &cfg).unwrap();

        // Compare against running everything at f_max and at f_min.
        for f_choice in ["max", "min"] {
            let freqs: Vec<f64> = s
                .devices
                .iter()
                .map(|d| if f_choice == "max" { d.f_max.value() } else { d.f_min.value() })
                .collect();
            let t = round_time(&s, &freqs, &uploads);
            let obj = w.energy() * s.params.rg() * computation_energy_term(&s, &freqs)
                + w.time() * s.params.rg() * t;
            assert!(
                sol.objective <= obj * (1.0 + 1e-9),
                "direct {} should beat naive {f_choice} {obj}",
                sol.objective
            );
        }
    }

    #[test]
    fn direct_respects_frequency_boxes_and_deadline() {
        let s = scenario(20);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.02);
        let sol = solve_direct(&s, Weights::new(0.7, 0.3).unwrap(), &uploads, &cfg).unwrap();
        for (dev, &f) in s.devices.iter().zip(&sol.frequencies_hz) {
            assert!(f >= dev.f_min.value() - 1.0 && f <= dev.f_max.value() + 1.0);
        }
        // Every device finishes within the reported round time (up to numerical slack).
        let rl = s.params.rl();
        for (i, dev) in s.devices.iter().enumerate() {
            let t = uploads[i] + rl * dev.cycles_per_local_iteration() / sol.frequencies_hz[i];
            assert!(t <= sol.round_time_s * (1.0 + 1e-6), "device {i} misses deadline");
        }
    }

    #[test]
    fn extreme_weights_hit_boxes() {
        let s = scenario(5);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.01);
        let energy_only = solve_direct(&s, Weights::energy_only(), &uploads, &cfg).unwrap();
        for (dev, &f) in s.devices.iter().zip(&energy_only.frequencies_hz) {
            assert_eq!(f, dev.f_min.value());
        }
        let time_only = solve_direct(&s, Weights::time_only(), &uploads, &cfg).unwrap();
        for (dev, &f) in s.devices.iter().zip(&time_only.frequencies_hz) {
            assert_eq!(f, dev.f_max.value());
        }
        assert!(time_only.round_time_s < energy_only.round_time_s);
    }

    #[test]
    fn higher_time_weight_gives_faster_rounds() {
        let s = scenario(15);
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.015);
        let slow = solve_direct(&s, Weights::new(0.9, 0.1).unwrap(), &uploads, &cfg).unwrap();
        let fast = solve_direct(&s, Weights::new(0.1, 0.9).unwrap(), &uploads, &cfg).unwrap();
        assert!(fast.round_time_s <= slow.round_time_s + 1e-9);
        let e = |sol: &Sp1Solution| computation_energy_term(&s, &sol.frequencies_hz);
        assert!(e(&fast) >= e(&slow) - 1e-12);
    }

    #[test]
    fn dual_matches_direct_when_unclamped() {
        // Use a wide frequency box so the closed-form (16) is not clamped.
        let s = ScenarioBuilder::paper_default()
            .with_devices(8)
            .with_frequency_range(
                wireless::units::Hertz::new(1.0e3),
                wireless::units::Hertz::from_ghz(10.0),
            )
            .build(7)
            .unwrap();
        let cfg = SolverConfig::default();
        let uploads = uniform_uploads(&s, 0.01);
        let w = Weights::balanced();
        let direct = solve_direct(&s, w, &uploads, &cfg).unwrap();
        let dual = solve_dual(&s, w, &uploads, &cfg).unwrap();
        let rel = (dual.objective - direct.objective).abs() / direct.objective;
        assert!(rel < 0.05, "dual {} vs direct {} (rel {rel})", dual.objective, direct.objective);
        // The direct path minimizes over T by a tolerance-bounded 1-D search, so the dual
        // recovery can undercut it only within that numerical slack (see the constant's
        // docs for the shim-PRNG provenance of the bound).
        assert!(dual.objective >= direct.objective * (1.0 - DUAL_DIRECT_REL_SLACK));
    }

    #[test]
    fn deadline_frequencies_meet_deadline() {
        let s = scenario(12);
        let uploads = uniform_uploads(&s, 0.01);
        let deadline = 0.3;
        let freqs = frequencies_for_deadline(&s, deadline, &uploads);
        let rl = s.params.rl();
        for (i, dev) in s.devices.iter().enumerate() {
            let t = uploads[i] + rl * dev.cycles_per_local_iteration() / freqs[i];
            // Either the deadline is met or the device is already at f_max (best effort).
            assert!(t <= deadline * (1.0 + 1e-9) || (freqs[i] - dev.f_max.value()).abs() < 1.0);
        }
    }

    #[test]
    fn impossible_deadline_returns_fmax() {
        let s = scenario(4);
        let uploads = uniform_uploads(&s, 1.0);
        let freqs = frequencies_for_deadline(&s, 0.5, &uploads); // uplink alone exceeds deadline
        for (dev, f) in s.devices.iter().zip(freqs) {
            assert_eq!(f, dev.f_max.value());
        }
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let s = scenario(3);
        let cfg = SolverConfig::default();
        let err = solve_direct(&s, Weights::balanced(), &[0.01, 0.01], &cfg).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn min_feasible_round_time_is_lower_bound() {
        let s = scenario(10);
        let uploads = uniform_uploads(&s, 0.02);
        let t_min = min_feasible_round_time(&s, &uploads);
        let cfg = SolverConfig::default();
        for w in Weights::paper_sweep() {
            let sol = solve_direct(&s, w, &uploads, &cfg).unwrap();
            assert!(sol.round_time_s >= t_min - 1e-9);
        }
    }
}
