//! Error type of the core optimizer.

use std::fmt;

/// Errors raised by the resource-allocation algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The system model rejected an input (invalid scenario, weights, or allocation shape).
    Model(flsys::FlError),
    /// A numerical routine failed.
    Numerical(numopt::NumError),
    /// The requested deadline cannot be met even with every resource at its maximum.
    InfeasibleDeadline {
        /// The requested total completion time in seconds.
        requested_s: f64,
        /// The smallest total completion time achievable with maximum resources.
        achievable_s: f64,
    },
    /// The solver produced an infeasible or non-finite allocation and the fallback also failed.
    SolverFailure(String),
    /// The watchdog abandoned a solve: no outer iteration produced a finite objective
    /// within the iteration budget. Unlike [`CoreError::SolverFailure`] this is a
    /// *degradation*, not an abort — sweep layers treat the affected cell as infeasible
    /// (`None` sample, counted in `SolveCounters::degraded_solves`) instead of killing the
    /// whole run, so one pathological draw cannot take a fleet shard down with it.
    NonFiniteObjective {
        /// Outer iterations attempted before the watchdog gave up.
        iterations: usize,
    },
    /// The caller-supplied wall-clock budget ([`SolverWorkspace::solve_deadline`]) expired
    /// before the outer loop converged. Like [`CoreError::NonFiniteObjective`] this is a
    /// *degradation*, not an abort: the solve is abandoned at an iteration boundary so it
    /// can never hang a serving thread, and request-level callers answer with a typed
    /// `degraded` response instead of tearing anything down. The workspace itself stays
    /// healthy — no quarantine is implied.
    ///
    /// [`SolverWorkspace::solve_deadline`]: crate::SolverWorkspace::solve_deadline
    DeadlineExpired {
        /// Outer iterations completed before the budget ran out.
        iterations: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "system model error: {e}"),
            CoreError::Numerical(e) => write!(f, "numerical error: {e}"),
            CoreError::InfeasibleDeadline { requested_s, achievable_s } => write!(
                f,
                "deadline {requested_s} s is infeasible; best achievable is {achievable_s} s"
            ),
            CoreError::SolverFailure(msg) => write!(f, "solver failure: {msg}"),
            CoreError::NonFiniteObjective { iterations } => {
                write!(f, "solver degraded: no finite objective in {iterations} outer iteration(s)")
            }
            CoreError::DeadlineExpired { iterations } => {
                write!(
                    f,
                    "solver degraded: wall-clock budget expired after {iterations} outer iteration(s)"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flsys::FlError> for CoreError {
    fn from(e: flsys::FlError) -> Self {
        CoreError::Model(e)
    }
}

impl From<numopt::NumError> for CoreError {
    fn from(e: numopt::NumError) -> Self {
        CoreError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = flsys::FlError::NoDevices.into();
        assert!(matches!(e, CoreError::Model(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: CoreError = numopt::NumError::NonFiniteValue { at: 1.0 }.into();
        assert!(matches!(e, CoreError::Numerical(_)));

        let e = CoreError::InfeasibleDeadline { requested_s: 10.0, achievable_s: 24.0 };
        assert!(e.to_string().contains("24"));
        assert!(std::error::Error::source(&e).is_none());

        let e = CoreError::DeadlineExpired { iterations: 3 };
        assert!(e.to_string().contains("wall-clock budget expired after 3"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
