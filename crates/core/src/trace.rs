//! Convergence traces of the alternating optimization.

use serde::{Deserialize, Serialize};

/// Snapshot of one outer iteration of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OuterIteration {
    /// Outer iteration index (1-based, matching the paper's `k`).
    pub k: usize,
    /// Weighted objective `w1·E + w2·R_g·T` after this iteration.
    pub objective: f64,
    /// Total energy `E` after this iteration (J).
    pub total_energy_j: f64,
    /// Total completion time `R_g·T` after this iteration (s).
    pub total_time_s: f64,
    /// Normalized change of the solution vector relative to the previous iteration.
    pub solution_change: f64,
    /// Whether the Subproblem-2 Newton-like loop reported convergence in this iteration.
    pub sp2_converged: bool,
}

/// Full convergence trace of one solver run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// One entry per outer iteration, in order.
    pub iterations: Vec<OuterIteration>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outer iteration.
    pub fn push(&mut self, iteration: OuterIteration) {
        self.iterations.push(iteration);
    }

    /// Number of outer iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The best (lowest) objective seen so far.
    pub fn best_objective(&self) -> Option<f64> {
        self.iterations
            .iter()
            .map(|it| it.objective)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Returns `true` if the recorded objectives are non-increasing within `tol` (relative).
    pub fn is_monotone_non_increasing(&self, tol: f64) -> bool {
        self.iterations.windows(2).all(|w| w[1].objective <= w[0].objective * (1.0 + tol) + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(k: usize, obj: f64) -> OuterIteration {
        OuterIteration {
            k,
            objective: obj,
            total_energy_j: obj / 2.0,
            total_time_s: obj / 2.0,
            solution_change: 0.1,
            sp2_converged: true,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(iter(1, 10.0));
        t.push(iter(2, 8.0));
        t.push(iter(3, 7.9));
        assert_eq!(t.len(), 3);
        assert_eq!(t.best_objective(), Some(7.9));
        assert!(t.is_monotone_non_increasing(1e-9));
    }

    #[test]
    fn detects_non_monotone() {
        let mut t = Trace::new();
        t.push(iter(1, 5.0));
        t.push(iter(2, 6.0));
        assert!(!t.is_monotone_non_increasing(1e-9));
        // But a 25% tolerance masks it.
        assert!(t.is_monotone_non_increasing(0.25));
    }

    #[test]
    fn empty_trace_has_no_best() {
        assert_eq!(Trace::new().best_objective(), None);
    }
}
