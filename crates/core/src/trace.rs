//! Convergence traces of the alternating optimization.

use serde::{Deserialize, Serialize};

/// Snapshot of one outer iteration of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OuterIteration {
    /// Outer iteration index (1-based, matching the paper's `k`).
    pub k: usize,
    /// Weighted objective `w1·E + w2·R_g·T` after this iteration.
    pub objective: f64,
    /// Total energy `E` after this iteration (J).
    pub total_energy_j: f64,
    /// Total completion time `R_g·T` after this iteration (s).
    pub total_time_s: f64,
    /// Normalized change of the solution vector relative to the previous iteration.
    pub solution_change: f64,
    /// Whether the Subproblem-2 Newton-like loop reported convergence in this iteration.
    pub sp2_converged: bool,
    /// Newton-like (Jong / Algorithm-1) iterations Subproblem 2 used in this iteration
    /// (`0` when the warm-start fast path skipped the loop).
    pub sp2_iterations: usize,
}

/// Cumulative work counters of the solver stack, accumulated in a
/// [`SolverWorkspace`](crate::SolverWorkspace) across every solve that borrows it.
///
/// The counts are instrumentation only — they never influence the solve — and they are a
/// deterministic function of the solve inputs (plus any carried warm-start state), so
/// per-sweep totals are reproducible across thread counts. Warm-start savings are asserted
/// against these counters in tests, not just benchmarked: a warm-started sweep must spend
/// strictly fewer Jong iterations than a cold one on the same grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounters {
    /// Outer iterations of Algorithm 2 (both the weighted and the deadline alternation).
    pub outer_iterations: u64,
    /// Newton-like (Jong / Algorithm-1) iterations across all Subproblem-2 solves.
    pub jong_iterations: u64,
    /// Theorem-2 parametric (KKT) solves across all Subproblem-2 solves.
    pub kkt_solves: u64,
    /// `g'(μ)` evaluations across all `μ`-root searches (bisection or Brent — the name
    /// predates the superlinear step and is kept for bench-history continuity).
    pub mu_bisect_evals: u64,
    /// Subproblem-2 solves short-circuited by the warm-start fast path.
    pub sp2_fast_path_hits: u64,
    /// Objective probes of Subproblem 1's golden-section search over the round time `T`.
    pub sp1_probe_evals: u64,
    /// `(ρ, idx)` key sorts of the Theorem-2 step-4b bounded LP — at most one per
    /// parametric KKT solve (zero when every device is rate-tight and the LP has no
    /// entries to order). The ordering is `μ`-invariant, so it is never re-sorted per
    /// `g'(μ)` evaluation; `lp_sorts ≤ kkt_solves` is the asserted evidence.
    pub lp_sorts: u64,
    /// Solves abandoned by the watchdog because no outer iteration produced a finite
    /// objective within the iteration budget (see
    /// [`CoreError::NonFiniteObjective`](crate::CoreError::NonFiniteObjective)). Callers
    /// degrade such a solve to an infeasible cell instead of aborting a whole sweep, so
    /// this counter is the only loud record that degradation happened.
    pub degraded_solves: u64,
}

impl SolveCounters {
    /// Adds `other`'s counts onto `self`.
    pub fn add(&mut self, other: &Self) {
        self.outer_iterations += other.outer_iterations;
        self.jong_iterations += other.jong_iterations;
        self.kkt_solves += other.kkt_solves;
        self.mu_bisect_evals += other.mu_bisect_evals;
        self.sp2_fast_path_hits += other.sp2_fast_path_hits;
        self.sp1_probe_evals += other.sp1_probe_evals;
        self.lp_sorts += other.lp_sorts;
        self.degraded_solves += other.degraded_solves;
    }

    /// The counts accumulated since an `earlier` snapshot of the same counter set.
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            outer_iterations: self.outer_iterations - earlier.outer_iterations,
            jong_iterations: self.jong_iterations - earlier.jong_iterations,
            kkt_solves: self.kkt_solves - earlier.kkt_solves,
            mu_bisect_evals: self.mu_bisect_evals - earlier.mu_bisect_evals,
            sp2_fast_path_hits: self.sp2_fast_path_hits - earlier.sp2_fast_path_hits,
            sp1_probe_evals: self.sp1_probe_evals - earlier.sp1_probe_evals,
            lp_sorts: self.lp_sorts - earlier.lp_sorts,
            degraded_solves: self.degraded_solves - earlier.degraded_solves,
        }
    }

    /// Resets every count to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Folds one Subproblem-2 solve's summary into the counters.
    pub fn record_sp2(&mut self, summary: &crate::sp2::Sp2Summary) {
        self.jong_iterations += summary.iterations as u64;
        self.kkt_solves += summary.kkt_solves;
        self.mu_bisect_evals += summary.mu_bisect_evals;
        self.sp2_fast_path_hits += u64::from(summary.fast_path);
        self.lp_sorts += summary.lp_sorts;
    }
}

/// Full convergence trace of one solver run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// One entry per outer iteration, in order.
    pub iterations: Vec<OuterIteration>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outer iteration.
    pub fn push(&mut self, iteration: OuterIteration) {
        self.iterations.push(iteration);
    }

    /// Number of outer iterations recorded.
    pub fn len(&self) -> usize {
        self.iterations.len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.iterations.is_empty()
    }

    /// The best (lowest) objective seen so far.
    pub fn best_objective(&self) -> Option<f64> {
        self.iterations
            .iter()
            .map(|it| it.objective)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Returns `true` if the recorded objectives are non-increasing within `tol` (relative).
    pub fn is_monotone_non_increasing(&self, tol: f64) -> bool {
        self.iterations.windows(2).all(|w| w[1].objective <= w[0].objective * (1.0 + tol) + tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(k: usize, obj: f64) -> OuterIteration {
        OuterIteration {
            k,
            objective: obj,
            total_energy_j: obj / 2.0,
            total_time_s: obj / 2.0,
            solution_change: 0.1,
            sp2_converged: true,
            sp2_iterations: 3,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(iter(1, 10.0));
        t.push(iter(2, 8.0));
        t.push(iter(3, 7.9));
        assert_eq!(t.len(), 3);
        assert_eq!(t.best_objective(), Some(7.9));
        assert!(t.is_monotone_non_increasing(1e-9));
    }

    #[test]
    fn detects_non_monotone() {
        let mut t = Trace::new();
        t.push(iter(1, 5.0));
        t.push(iter(2, 6.0));
        assert!(!t.is_monotone_non_increasing(1e-9));
        // But a 25% tolerance masks it.
        assert!(t.is_monotone_non_increasing(0.25));
    }

    #[test]
    fn empty_trace_has_no_best() {
        assert_eq!(Trace::new().best_objective(), None);
    }
}
