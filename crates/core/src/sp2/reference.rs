//! Direct reference solver for Subproblem 2.
//!
//! This solver attacks the *original* ratio objective rather than the parametric form, using
//! two structural facts:
//!
//! 1. For a fixed bandwidth `B_n`, the per-device communication energy
//!    `E_n(p) = p·d_n / G_n(p, B_n)` is strictly increasing in `p` (because
//!    `G_n(p) ≥ p·∂G_n/∂p` for a concave function through the origin). The energy-optimal
//!    power is therefore the *smallest feasible* one: just enough to meet the rate floor
//!    `r_n^min`, clamped into the power box.
//! 2. With that power rule substituted in, every device's energy is decreasing in its
//!    bandwidth share, so the bandwidth budget binds and the allocation is a one-dimensional
//!    pricing problem: introduce a price `ω` on bandwidth, let every device pick its
//!    favourite `B_n(ω)` by a scalar search, and bisect `ω` until the picks add up to `B`.
//!
//! The result is a high-quality feasible point for the sum-of-ratios problem that does not
//! depend on the Newton-like machinery at all, which makes it a meaningful cross-check (the
//! role CVX played for the authors) and a robust fallback.

use super::{PowerBandwidth, Sp2Problem};
use numopt::scalar::{clamp, golden_section_min_with_endpoints};
use numopt::NumError;
use wireless::channel::{power_for_rate, shannon_rate_raw};

/// Warm-start carry-over of the reference solver: the bandwidth-price `ω` at which the
/// previous solve's aggregate demand cleared the budget.
///
/// Successive Subproblem-2 solves inside Algorithm 2's alternation differ only slightly, so
/// the clearing price barely moves; seeding the next search with a tight bracket around the
/// previous `ω` replaces both the cold path's geometric price expansion (from `10⁻¹²`, a
/// full aggregate-demand evaluation per quadrupling) and most of its fixed 60 bisection
/// halvings. Only read when [`SolverConfig::warm_start`](crate::SolverConfig) is enabled;
/// [`ReferenceWarmState::reset`] drops the seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceWarmState {
    omega: f64,
    valid: bool,
}

impl ReferenceWarmState {
    /// Drops the carried price seed: the next solve brackets from scratch.
    pub fn reset(&mut self) {
        self.valid = false;
    }
}

/// Per-device energy under the "smallest feasible power" rule.
fn device_energy(problem: &Sp2Problem<'_>, i: usize, bandwidth: f64) -> f64 {
    let arrays = problem.arrays();
    let n0 = problem.n0();
    let g = arrays.gain[i];
    let d = arrays.upload_bits[i];
    let r_min = problem.r_min_bps()[i];
    let p = clamp(power_for_rate(r_min, bandwidth, g, n0), arrays.p_min_w[i], arrays.p_max_w[i]);
    let rate = shannon_rate_raw(p, bandwidth, g, n0);
    if rate <= 0.0 {
        return f64::INFINITY;
    }
    let mut energy = p * d / rate;
    // Soft penalty when even p_max cannot reach the rate floor with this bandwidth, so the
    // scalar search steers toward bandwidths that restore feasibility.
    if r_min > 0.0 && rate < r_min {
        energy *= 1.0 + 10.0 * (r_min - rate) / r_min;
    }
    energy
}

/// Smallest bandwidth at which the device can meet its rate floor at maximum power.
fn min_bandwidth(problem: &Sp2Problem<'_>, i: usize) -> f64 {
    let arrays = problem.arrays();
    let n0 = problem.n0();
    let g = arrays.gain[i];
    let p_max = arrays.p_max_w[i];
    let r_min = problem.r_min_bps()[i];
    let floor = problem.config().bandwidth_floor_hz;
    let b_total = problem.total_bandwidth();
    if r_min <= 0.0 {
        return floor;
    }
    if shannon_rate_raw(p_max, b_total, g, n0) < r_min {
        // Infeasible even with the whole band; claim an equal share and let the sanitize pass
        // arbitrate.
        return b_total / arrays.len() as f64;
    }
    let mut lo = floor;
    let mut hi = b_total;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if shannon_rate_raw(p_max, mid, g, n0) >= r_min {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-10 {
            break;
        }
    }
    hi.max(floor)
}

/// Bandwidth the device picks when bandwidth costs `ω` per hertz.
fn bandwidth_at_price(
    problem: &Sp2Problem<'_>,
    i: usize,
    omega: f64,
    b_lo: f64,
    b_hi: f64,
) -> Result<f64, NumError> {
    let pick = golden_section_min_with_endpoints(
        |b| device_energy(problem, i, b) + omega * b,
        b_lo,
        b_hi,
        problem.config().scalar_tol * b_hi,
        300,
    )?;
    Ok(pick.argmin)
}

/// Solves Subproblem 2 directly (see the module docs) and returns a feasible `(p, B)` point.
///
/// Allocating convenience form of [`solve_reference_into`]. `_start` is kept in the
/// signature for API stability; the construction never depended on it.
///
/// # Errors
///
/// Propagates numerical errors from the scalar searches (which only trigger on non-finite
/// inputs); the caller treats any error as "keep the Newton-like solution".
pub fn solve_reference(
    problem: &Sp2Problem<'_>,
    _start: &PowerBandwidth,
) -> Result<PowerBandwidth, NumError> {
    let mut point = PowerBandwidth::new(Vec::new(), Vec::new());
    solve_reference_into(problem, &mut point, &mut Vec::new(), &mut ReferenceWarmState::default())?;
    Ok(point)
}

/// [`solve_reference`] into caller-owned buffers — the allocation-free hot-path form used
/// by the `polish_with_reference` pass of every Subproblem-2 solve.
///
/// `out` and `b_lo_scratch` are pure scratch: overwritten completely, resized to the
/// scenario, never read across calls. `warm` carries the previous clearing price between
/// calls; it is only read (and only written) when
/// [`SolverConfig::warm_start`](crate::SolverConfig) is enabled, so with warm start off —
/// or a freshly-reset `warm` — results are bit-identical to [`solve_reference`]. The warm
/// search stops at `scalar_tol` *relative* accuracy on `ω` instead of the cold path's fixed
/// 60 absolute halvings; the bandwidth picks depend smoothly on the price, so the points
/// agree to the same relative order.
///
/// # Errors
///
/// Same as [`solve_reference`]. On error `out` is unspecified.
pub fn solve_reference_into(
    problem: &Sp2Problem<'_>,
    out: &mut PowerBandwidth,
    b_lo_scratch: &mut Vec<f64>,
    warm: &mut ReferenceWarmState,
) -> Result<(), NumError> {
    let arrays = problem.arrays();
    let n = arrays.len();
    let b_total = problem.total_bandwidth();
    let n0 = problem.n0();
    let warm_on = problem.config().warm_start;

    b_lo_scratch.clear();
    b_lo_scratch.extend((0..n).map(|i| min_bandwidth(problem, i)));
    let b_lo: &[f64] = b_lo_scratch;
    let lo_sum: f64 = b_lo.iter().sum();

    out.bandwidths_hz.clear();
    out.bandwidths_hz.resize(n, 0.0);
    let bandwidths = &mut out.bandwidths_hz;
    if lo_sum >= b_total {
        // The rate floors alone exhaust (or exceed) the budget: hand out proportional shares.
        for (b, &lo) in bandwidths.iter_mut().zip(b_lo) {
            *b = lo / lo_sum * b_total;
        }
    } else {
        // Price the bandwidth and bisect the price until the budget clears.
        let demand = |omega: f64| -> Result<f64, NumError> {
            let mut total = 0.0;
            for (i, &lo) in b_lo.iter().enumerate() {
                total += bandwidth_at_price(problem, i, omega, lo, b_total)?;
            }
            Ok(total)
        };
        // Warm start: bracket tightly around the previous clearing price (validated — the
        // aggregate demand is decreasing in ω, so the bracket must straddle the budget) and
        // skip the cold geometric expansion entirely when it holds.
        let mut bracket = None;
        if warm_on && warm.valid && warm.omega > 0.0 && warm.omega.is_finite() {
            let lo = warm.omega * 0.25;
            let hi = warm.omega * 4.0;
            if demand(lo)? > b_total && demand(hi)? <= b_total {
                bracket = Some((lo, hi));
            }
        }
        let (mut omega_lo, mut omega_hi) = match bracket {
            Some(bracket) => bracket,
            None => {
                // Find an upper price at which demand fits inside the budget.
                let mut omega_hi = 1e-12;
                let mut tries = 0;
                while demand(omega_hi)? > b_total && tries < 80 {
                    omega_hi *= 4.0;
                    tries += 1;
                }
                (0.0, omega_hi)
            }
        };
        // Bisection on the (decreasing) aggregate demand. The cold path keeps its
        // historical fixed 60 halvings (bit-identity); the warm path stops at scalar_tol
        // relative accuracy on ω, which the smooth price→bandwidth map carries through.
        let omega_tol = if warm_on { problem.config().scalar_tol } else { 0.0 };
        for _ in 0..60 {
            if warm_on && (omega_hi - omega_lo) <= omega_tol * omega_hi {
                break;
            }
            let mid = 0.5 * (omega_lo + omega_hi);
            if demand(mid)? > b_total {
                omega_lo = mid;
            } else {
                omega_hi = mid;
            }
        }
        for i in 0..n {
            bandwidths[i] = bandwidth_at_price(problem, i, omega_hi, b_lo[i], b_total)?;
        }
        // Give any slack back to the devices proportionally to their demand (energy is
        // decreasing in bandwidth, so this can only help).
        let used: f64 = bandwidths.iter().sum();
        if used < b_total && used > 0.0 {
            let scale = b_total / used;
            for b in bandwidths.iter_mut() {
                *b *= scale;
            }
        }
        if warm_on {
            warm.omega = omega_hi;
            warm.valid = true;
        }
    }

    out.powers_w.clear();
    for i in 0..n {
        let p = clamp(
            power_for_rate(problem.r_min_bps()[i], out.bandwidths_hz[i], arrays.gain[i], n0),
            arrays.p_min_w[i],
            arrays.p_max_w[i],
        );
        out.powers_w.push(p);
    }

    problem.sanitize(out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use flsys::{Allocation, ScenarioArrays, ScenarioBuilder, Weights};

    fn fixture(
        n: usize,
        seed: u64,
        window_s: f64,
    ) -> (flsys::Scenario, ScenarioArrays, SolverConfig, Vec<f64>) {
        let s = ScenarioBuilder::paper_default().with_devices(n).build(seed).unwrap();
        let arrays = ScenarioArrays::from_scenario(&s);
        let cfg = SolverConfig::default();
        let r_min = s.devices.iter().map(|d| d.upload_bits / window_s).collect();
        (s, arrays, cfg, r_min)
    }

    #[test]
    fn reference_beats_equal_split_at_max_power() {
        let (s, arrays, cfg, r_min) = fixture(10, 21, 0.05);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w.clone(), a.bandwidths_hz.clone());
        let reference = solve_reference(&problem, &start).unwrap();
        assert!(
            problem.comm_energy(&reference) <= problem.comm_energy(&start) * (1.0 + 1e-9),
            "reference {} should beat start {}",
            problem.comm_energy(&reference),
            problem.comm_energy(&start)
        );
    }

    #[test]
    fn reference_uses_the_whole_band() {
        let (s, arrays, cfg, r_min) = fixture(8, 22, 0.05);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let reference = solve_reference(&problem, &start).unwrap();
        let used: f64 = reference.bandwidths_hz.iter().sum();
        assert!(used >= 0.95 * s.params.total_bandwidth.value(), "band under-used: {used}");
        assert!(used <= s.params.total_bandwidth.value() * (1.0 + 1e-6));
    }

    #[test]
    fn reference_meets_rate_floors() {
        let (s, arrays, cfg, r_min) = fixture(12, 23, 0.03);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let reference = solve_reference(&problem, &start).unwrap();
        let n0 = s.params.noise.watts_per_hz();
        for (i, dev) in s.devices.iter().enumerate() {
            let rate = shannon_rate_raw(
                reference.powers_w[i],
                reference.bandwidths_hz[i],
                dev.gain.value(),
                n0,
            );
            assert!(rate >= r_min[i] * (1.0 - 1e-3), "device {i} rate {rate} < {}", r_min[i]);
        }
    }

    #[test]
    fn min_bandwidth_respects_rate_floor() {
        let (s, arrays, cfg, r_min) = fixture(5, 24, 0.02);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let n0 = s.params.noise.watts_per_hz();
        for (i, dev) in s.devices.iter().enumerate() {
            let b = min_bandwidth(&problem, i);
            let rate = shannon_rate_raw(dev.p_max.value(), b, dev.gain.value(), n0);
            assert!(rate >= r_min[i] * (1.0 - 1e-6));
        }
    }

    #[test]
    fn devices_with_better_channels_spend_less_energy() {
        // Aggregate sanity: the reference solution's total energy decreases if every channel
        // gain is improved by 6 dB.
        let (s, arrays, cfg, r_min) = fixture(10, 25, 0.05);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w.clone(), a.bandwidths_hz.clone());
        let base = problem.comm_energy(&solve_reference(&problem, &start).unwrap());

        let mut better = s.clone();
        for d in &mut better.devices {
            d.gain = wireless::channel::ChannelGain::new(d.gain.value() * 4.0);
        }
        let arrays2 = ScenarioArrays::from_scenario(&better);
        let problem2 =
            Sp2Problem::new(&better, &arrays2, Weights::balanced(), &r_min, &cfg).unwrap();
        let improved = problem2.comm_energy(&solve_reference(&problem2, &start).unwrap());
        assert!(improved < base, "better channels should reduce energy ({improved} vs {base})");
    }
}
