//! Subproblem 2 — communication-energy minimization over `(p, B)` (a sum-of-ratios problem).
//!
//! With the frequencies and the round deadline `T` fixed by Subproblem 1, the remaining
//! problem (11) is
//!
//! ```text
//! min_{p, B}  w1·R_g·Σ_n p_n·d_n / G_n(p_n, B_n)
//! s.t.        p_n^min ≤ p_n ≤ p_n^max,
//!             Σ_n B_n ≤ B,
//!             G_n(p_n, B_n) ≥ r_n^min := d_n / (T − R_l c_n D_n / f_n).
//! ```
//!
//! The objective is a sum of ratios (convex numerators over concave positive denominators),
//! which the paper tackles with Jong's Newton-like parametric method (its Algorithm 1):
//!
//! * the generic outer loop lives in [`numopt::fractional`];
//! * the parametric inner problem `SP2_v2` (equation (21)) is solved in closed form by the
//!   KKT construction of Theorem 2 — bisection on the bandwidth multiplier `μ`, Lambert-W
//!   expression (A.4) for the per-device rate multipliers `τ_n`, closed-form bandwidth for
//!   rate-tight devices and the small LP (A.6) for the rest ([`kkt`]);
//! * [`reference`](mod@reference) provides an independent direct solver for the *original* ratio objective
//!   (smallest feasible power per device + price-based bandwidth allocation), used to
//!   cross-check the Newton-like solution in tests and, when
//!   [`SolverConfig::polish_with_reference`] is set, to guard against corner cases where the
//!   KKT construction lands on a slightly worse point.
//!
//! [`SolverConfig::polish_with_reference`]: crate::SolverConfig

pub mod kkt;
pub mod reference;

use crate::config::SolverConfig;
use crate::error::CoreError;
use flsys::{Scenario, ScenarioArrays, Weights};
use kkt::KktScratch;
use numopt::fractional::{solve_sum_of_ratios_warm_in, FractionalProblem, JongScratch, WarmMode};
use numopt::scalar::clamp;
use numopt::NumError;
use std::cell::RefCell;
use wireless::channel::{power_for_rate, shannon_rate_raw};

/// A `(p, B)` point — the decision variables of Subproblem 2.
#[derive(Debug, PartialEq, Default)]
pub struct PowerBandwidth {
    /// Transmit power per device (W).
    pub powers_w: Vec<f64>,
    /// Bandwidth per device (Hz).
    pub bandwidths_hz: Vec<f64>,
}

// Hand-written so `clone_from` reuses capacity via `Vec::clone_from` (the derived fallback
// reallocates; see the equivalent impl on `flsys::Allocation`).
impl Clone for PowerBandwidth {
    fn clone(&self) -> Self {
        Self { powers_w: self.powers_w.clone(), bandwidths_hz: self.bandwidths_hz.clone() }
    }

    fn clone_from(&mut self, source: &Self) {
        self.powers_w.clone_from(&source.powers_w);
        self.bandwidths_hz.clone_from(&source.bandwidths_hz);
    }
}

impl PowerBandwidth {
    /// Creates a point from raw vectors.
    pub fn new(powers_w: Vec<f64>, bandwidths_hz: Vec<f64>) -> Self {
        Self { powers_w, bandwidths_hz }
    }
}

/// The complete scratch state of a Subproblem-2 solve: KKT buffers, the Newton-like outer
/// loop's multiplier/history vectors, the double-buffered `(p, B)` points, and the
/// reference solver's working set.
///
/// Everything is pure scratch in the [`crate::workspace`] sense — [`solve_in`] overwrites
/// or clears each buffer before reading it and resizes per scenario, so one instance serves
/// scenarios of any device count back to back and only capacity survives. The one
/// flow-contract exception is the staged point: the caller stages the starting `(p, B)`
/// with [`Sp2Scratch::stage_start`] immediately before [`solve_in`], and reads the solution
/// back through [`Sp2Scratch::solution`] immediately after.
///
/// With [`SolverConfig::warm_start`] enabled, three more pieces deliberately survive
/// between solves and seed the next one: the Newton-like loop's converged `(β, ν)` (in the
/// [`JongScratch`]), the previous `μ`-bisection root (in the [`KktScratch`]), and the rate
/// floors of the previous solve (`warm_r_min`, gating the fast path). None of them are ever
/// read on the cold path, and [`Sp2Scratch::reset_warm_start`] drops them all — the sweep
/// engine does so at every cell-group boundary so warm-started sweeps stay deterministic.
#[derive(Debug, Clone, Default)]
pub struct Sp2Scratch {
    /// Scratch of the Theorem-2 KKT construction (the parametric inner solver).
    pub kkt: KktScratch,
    /// Struct-of-arrays lanes of the current scenario, rebuilt (capacity-reusing) by
    /// [`solve_in`] on entry. Callers that already hold lanes skip the rebuild via
    /// [`solve_with_arrays_in`].
    arrays: ScenarioArrays,
    /// Scratch of the Newton-like outer loop (the paper's Algorithm 1).
    jong: JongScratch,
    /// Start point in / solution out; doubles as the outer loop's primary point buffer.
    point: PowerBandwidth,
    /// Second half of the outer loop's point double-buffer.
    spare: PowerBandwidth,
    /// Candidate point of the reference polish pass.
    reference: PowerBandwidth,
    /// Per-device minimum-bandwidth bounds of the reference solver.
    ref_b_lo: Vec<f64>,
    /// Warm-start price seed of the reference polish pass.
    ref_warm: reference::ReferenceWarmState,
    /// Rate floors of the previous warm-start solve (the fast path fires only while the
    /// current floors are within [`SolverConfig::warm_rmin_tol`] of these).
    warm_r_min: Vec<f64>,
    /// Whether [`Sp2Scratch::warm_r_min`] holds the floors of a successful previous solve.
    warm_r_min_valid: bool,
}

impl Sp2Scratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages the starting `(p, B)` point for the next [`solve_in`] call (overwriting
    /// whatever point a previous solve left behind).
    ///
    /// Warm-started callers (Algorithm 2 with [`SolverConfig::warm_start`]) skip this
    /// between consecutive solves of the same scenario: the previous solution is already
    /// staged, un-projected — which is exactly what lets the fast path recognise it.
    pub fn stage_start(&mut self, powers_w: &[f64], bandwidths_hz: &[f64]) {
        self.point.powers_w.clear();
        self.point.powers_w.extend_from_slice(powers_w);
        self.point.bandwidths_hz.clear();
        self.point.bandwidths_hz.extend_from_slice(bandwidths_hz);
    }

    /// The solution point left behind by the last successful [`solve_in`] call.
    pub fn solution(&self) -> &PowerBandwidth {
        &self.point
    }

    /// Drops every piece of carried warm-start state (Jong multipliers, `μ` bracket, rate
    /// floors): the next solve behaves as if this scratch had never solved anything, even
    /// with [`SolverConfig::warm_start`] enabled.
    pub fn reset_warm_start(&mut self) {
        self.jong.invalidate_warm();
        self.kkt.reset_warm_start();
        self.ref_warm.reset();
        self.warm_r_min_valid = false;
    }
}

/// The scalar outcome of an in-place Subproblem-2 solve ([`solve_in`]); the solution point
/// stays in the [`Sp2Scratch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sp2Summary {
    /// Per-round communication energy `Σ_n p_n d_n / r_n` at the solution (J), *not* scaled
    /// by `w1 R_g`.
    pub comm_energy_per_round_j: f64,
    /// Whether the Newton-like outer loop reported convergence.
    pub converged: bool,
    /// Outer (Algorithm-1) iterations used.
    pub iterations: usize,
    /// `true` when the reference polish replaced the Newton-like solution.
    pub polished: bool,
    /// `true` when the warm-start fast path skipped the Newton-like loop (and the polish)
    /// because the carried multipliers still satisfied `phi_tol` at the staged point.
    pub fast_path: bool,
    /// Theorem-2 parametric (KKT) solves this call performed.
    pub kkt_solves: u64,
    /// `g'(μ)` evaluations the `μ` root searches of this call performed (bisection or
    /// Brent alike).
    pub mu_bisect_evals: u64,
    /// Step-4b `(ρ, idx)` key sorts this call performed — exactly one per parametric KKT
    /// solve (the LP ordering is `μ`-invariant and is never re-sorted per `g'(μ)` probe).
    pub lp_sorts: u64,
}

/// Result of a Subproblem-2 solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Sp2Solution {
    /// Optimal transmit power per device (W).
    pub powers_w: Vec<f64>,
    /// Optimal bandwidth per device (Hz).
    pub bandwidths_hz: Vec<f64>,
    /// Per-round communication energy `Σ_n p_n d_n / r_n` at the solution (J), *not* scaled
    /// by `w1 R_g`.
    pub comm_energy_per_round_j: f64,
    /// Whether the Newton-like outer loop reported convergence.
    pub converged: bool,
    /// Outer (Algorithm-1) iterations used.
    pub iterations: usize,
    /// `true` when the reference polish replaced the Newton-like solution.
    pub polished: bool,
}

/// The Subproblem-2 instance handed to the sum-of-ratios machinery.
pub struct Sp2Problem<'a> {
    scenario: &'a Scenario,
    /// Struct-of-arrays lanes of `scenario` — the layout every hot per-device loop (the
    /// Theorem-2 KKT construction, the rate/energy evaluations of the Newton-like outer
    /// loop, the reference polish) reads instead of walking the profile structs.
    arrays: &'a ScenarioArrays,
    /// Constant weight `w1·R_g` multiplying every ratio.
    weight: f64,
    /// Per-device minimum rate `r_n^min` (bit/s); `0` disables the rate constraint.
    r_min_bps: &'a [f64],
    config: &'a SolverConfig,
    /// KKT scratch buffers shared by every [`kkt::solve_parametric`] call on this instance
    /// (the Newton-like outer loop makes dozens). `RefCell` because the `FractionalProblem`
    /// trait hands the problem out by shared reference; `Sp2Problem` is not `Sync` and is
    /// never shared across threads.
    scratch: RefCell<KktScratch>,
}

impl<'a> Sp2Problem<'a> {
    /// Builds a Subproblem-2 instance over a scenario and its pre-built lane view
    /// (see [`ScenarioArrays::from_scenario`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] if `r_min_bps` or `arrays` does not match the scenario
    /// size.
    pub fn new(
        scenario: &'a Scenario,
        arrays: &'a ScenarioArrays,
        weights: Weights,
        r_min_bps: &'a [f64],
        config: &'a SolverConfig,
    ) -> Result<Self, CoreError> {
        let n = scenario.devices.len();
        if r_min_bps.len() != n {
            return Err(CoreError::Model(flsys::FlError::AllocationSizeMismatch {
                devices: n,
                got: r_min_bps.len(),
            }));
        }
        if arrays.len() != n {
            return Err(CoreError::Model(flsys::FlError::AllocationSizeMismatch {
                devices: n,
                got: arrays.len(),
            }));
        }
        // A zero energy weight makes the ratio weights vanish and the parametric machinery
        // degenerate; the caller (Algorithm 2) special-cases that, but clamping here keeps
        // this type safe to use directly.
        let weight = (weights.energy() * scenario.params.rg()).max(1e-12);
        Ok(Self { scenario, arrays, weight, r_min_bps, config, scratch: RefCell::default() })
    }

    /// Mutable access to the KKT scratch buffers (for [`kkt::solve_parametric`]).
    pub(crate) fn scratch_mut(&self) -> std::cell::RefMut<'_, KktScratch> {
        self.scratch.borrow_mut()
    }

    /// The scenario this instance optimizes.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// The struct-of-arrays lane view of the scenario (same device order).
    pub fn arrays(&self) -> &ScenarioArrays {
        self.arrays
    }

    /// The per-device minimum rates (bit/s).
    pub fn r_min_bps(&self) -> &[f64] {
        self.r_min_bps
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        self.config
    }

    /// Noise power spectral density (W/Hz).
    pub fn n0(&self) -> f64 {
        self.scenario.params.noise.watts_per_hz()
    }

    /// Total bandwidth budget (Hz).
    pub fn total_bandwidth(&self) -> f64 {
        self.scenario.params.total_bandwidth.value()
    }

    /// Shannon rate of device `i` at a point, floored so it is always strictly positive.
    pub fn rate(&self, i: usize, point: &PowerBandwidth) -> f64 {
        let b = point.bandwidths_hz[i].max(self.config.bandwidth_floor_hz);
        let p = point.powers_w[i].max(self.arrays.p_min_w[i].max(1e-9));
        shannon_rate_raw(p, b, self.arrays.gain[i], self.n0()).max(1e-9)
    }

    /// Per-round communication energy `Σ_n p_n d_n / r_n` at a point (J).
    pub fn comm_energy(&self, point: &PowerBandwidth) -> f64 {
        (0..self.arrays.len())
            .map(|i| {
                let d = self.arrays.upload_bits[i];
                point.powers_w[i] * d / self.rate(i, point)
            })
            .sum()
    }

    /// Clamps a candidate point into the feasible set: power boxes, bandwidth floor, total
    /// bandwidth budget, and (best-effort) the per-device rate constraints.
    pub fn sanitize(&self, point: &mut PowerBandwidth) {
        let n = self.arrays.len();
        let floor = self.config.bandwidth_floor_hz;
        let b_total = self.total_bandwidth();
        for i in 0..n {
            let (p_min, p_max) = (self.arrays.p_min_w[i], self.arrays.p_max_w[i]);
            if !point.bandwidths_hz[i].is_finite() || point.bandwidths_hz[i] < floor {
                point.bandwidths_hz[i] = floor;
            }
            if !point.powers_w[i].is_finite() {
                point.powers_w[i] = p_max;
            }
            point.powers_w[i] = clamp(point.powers_w[i], p_min, p_max);
        }
        let sum: f64 = point.bandwidths_hz.iter().sum();
        if sum > b_total {
            let scale = b_total / sum;
            for b in &mut point.bandwidths_hz {
                *b = (*b * scale).max(floor.min(b_total / n as f64));
            }
        }
        // Best-effort rate repair: raise power (never bandwidth, which is budgeted) until the
        // rate constraint holds or the power box is exhausted.
        for i in 0..n {
            if self.r_min_bps[i] <= 0.0 {
                continue;
            }
            let b = point.bandwidths_hz[i];
            let needed = power_for_rate(self.r_min_bps[i], b, self.arrays.gain[i], self.n0());
            if needed > point.powers_w[i] {
                point.powers_w[i] = clamp(needed, self.arrays.p_min_w[i], self.arrays.p_max_w[i]);
            }
        }
    }
}

impl FractionalProblem for Sp2Problem<'_> {
    type Point = PowerBandwidth;

    fn len(&self) -> usize {
        self.scenario.devices.len()
    }

    fn ratio_weight(&self, _i: usize) -> f64 {
        self.weight
    }

    fn numerator(&self, i: usize, x: &PowerBandwidth) -> f64 {
        x.powers_w[i] * self.arrays.upload_bits[i]
    }

    fn denominator(&self, i: usize, x: &PowerBandwidth) -> f64 {
        self.rate(i, x)
    }

    fn solve_parametric(&self, nu: &[f64], beta: &[f64]) -> Result<PowerBandwidth, NumError> {
        kkt::solve_parametric(self, nu, beta)
    }

    fn solve_parametric_into(
        &self,
        nu: &[f64],
        beta: &[f64],
        out: &mut PowerBandwidth,
    ) -> Result<(), NumError> {
        kkt::solve_parametric_into(self, nu, beta, out)
    }
}

/// Solves Subproblem 2 starting from a feasible `(p, B)` point.
///
/// Runs the paper's Algorithm 1 (Newton-like sum-of-ratios loop with the Theorem-2 KKT inner
/// solver). When [`SolverConfig::polish_with_reference`] is enabled the result is compared
/// against the direct reference solver on the true communication energy and the better point
/// is returned.
///
/// # Errors
///
/// Returns [`CoreError::Model`] for shape mismatches and [`CoreError::Numerical`] if both the
/// Newton-like path and the reference solver fail.
///
/// [`SolverConfig::polish_with_reference`]: crate::SolverConfig
pub fn solve(
    scenario: &Scenario,
    weights: Weights,
    r_min_bps: &[f64],
    initial: PowerBandwidth,
    config: &SolverConfig,
) -> Result<Sp2Solution, CoreError> {
    solve_scratch(scenario, weights, r_min_bps, initial, config, &mut KktScratch::default())
}

/// [`solve`] with caller-owned KKT scratch buffers, so repeated solves reuse the KKT
/// allocations. Superseded on the sweep hot path by [`solve_in`], which additionally pools
/// the outer loop's buffers and the `(p, B)` points; this form is kept for callers that
/// want an owned [`Sp2Solution`] without managing a full [`Sp2Scratch`].
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_scratch(
    scenario: &Scenario,
    weights: Weights,
    r_min_bps: &[f64],
    initial: PowerBandwidth,
    config: &SolverConfig,
    scratch: &mut KktScratch,
) -> Result<Sp2Solution, CoreError> {
    let mut sp2_scratch = Sp2Scratch::default();
    std::mem::swap(&mut sp2_scratch.kkt, scratch);
    sp2_scratch.point = initial;
    let result = solve_in(scenario, weights, r_min_bps, config, &mut sp2_scratch);
    std::mem::swap(&mut sp2_scratch.kkt, scratch);
    let summary = result?;
    let PowerBandwidth { powers_w, bandwidths_hz } = sp2_scratch.point;
    Ok(Sp2Solution {
        powers_w,
        bandwidths_hz,
        comm_energy_per_round_j: summary.comm_energy_per_round_j,
        converged: summary.converged,
        iterations: summary.iterations,
        polished: summary.polished,
    })
}

/// The all-scratch Subproblem-2 entry point: solves from the point staged via
/// [`Sp2Scratch::stage_start`] and leaves the solution in [`Sp2Scratch::solution`],
/// performing **zero heap allocations in steady state** (after the scratch buffers have
/// grown to the scenario's device count once). Results are bit-identical to [`solve`] /
/// [`solve_scratch`] — same arithmetic, same order, different buffer ownership.
///
/// # Errors
///
/// Same as [`solve`]. On error the staged point's contents are unspecified.
pub fn solve_in(
    scenario: &Scenario,
    weights: Weights,
    r_min_bps: &[f64],
    config: &SolverConfig,
    scratch: &mut Sp2Scratch,
) -> Result<Sp2Summary, CoreError> {
    // Rebuild the lane view in place (capacity-reusing: zero allocations at steady state)
    // and delegate; `mem::take` sidesteps the simultaneous &scratch.arrays / &mut scratch
    // borrow, and the lanes are restored even on error.
    let mut arrays = std::mem::take(&mut scratch.arrays);
    arrays.rebuild(scenario);
    let result = solve_with_arrays_in(scenario, &arrays, weights, r_min_bps, config, scratch);
    scratch.arrays = arrays;
    result
}

/// [`solve_in`] over a caller-held lane view ([`ScenarioArrays`]), skipping the per-call
/// lane rebuild — the Algorithm-2 hot path builds the lanes once per scenario and reuses
/// them across every outer iteration. `arrays` must describe `scenario` (same devices,
/// same order); results are bit-identical to [`solve_in`].
///
/// # Errors
///
/// Same as [`solve`], plus [`CoreError::Model`] if `arrays` does not match the scenario
/// size.
pub fn solve_with_arrays_in(
    scenario: &Scenario,
    arrays: &ScenarioArrays,
    weights: Weights,
    r_min_bps: &[f64],
    config: &SolverConfig,
    scratch: &mut Sp2Scratch,
) -> Result<Sp2Summary, CoreError> {
    let problem = Sp2Problem::new(scenario, arrays, weights, r_min_bps, config)?;
    // Lend the caller's KKT buffers to this problem instance for the duration of the solve;
    // they are swapped back (with whatever capacity they grew) before returning.
    std::mem::swap(&mut *problem.scratch_mut(), &mut scratch.kkt);
    let kkt_solves_before = problem.scratch_mut().parametric_solves;
    let mu_evals_before = problem.scratch_mut().mu_bisect_evals;
    let lp_sorts_before = problem.scratch_mut().lp_sorts;
    let Sp2Scratch {
        jong,
        point,
        spare,
        reference,
        ref_b_lo,
        ref_warm,
        warm_r_min,
        warm_r_min_valid,
        ..
    } = &mut *scratch;

    problem.sanitize(point);

    // Warm mode: carry the previous solve's (β, ν) whenever warm start is enabled; allow
    // the loop-skipping fast path only while the rate floors — the one part of the
    // constraint set ϕ cannot see — are still where the carried multipliers left them.
    let mode = if config.warm_start {
        let n = scenario.devices.len();
        let floors_static = *warm_r_min_valid
            && warm_r_min.len() == n
            && r_min_bps.iter().zip(warm_r_min.iter()).all(|(&r, &prev)| {
                (r - prev).abs() <= config.warm_rmin_tol * r.abs().max(prev.abs()).max(1.0)
            });
        if floors_static {
            WarmMode::FastPath
        } else {
            WarmMode::Multipliers
        }
    } else {
        WarmMode::Cold
    };
    *warm_r_min_valid = false; // revalidated below on success

    // Newton-like path, running in place on the staged point (double-buffered with `spare`).
    let newton = solve_sum_of_ratios_warm_in(&problem, point, spare, config.jong, jong, mode);

    let mut best_energy = f64::INFINITY;
    let mut have_best = false;
    let mut converged = false;
    let mut iterations = 0;
    let mut polished = false;
    let mut fast_path = false;

    if let Ok(summary) = newton {
        fast_path = summary.iterations == 0 && summary.converged;
        problem.sanitize(point);
        let energy = problem.comm_energy(point);
        if energy.is_finite() {
            best_energy = energy;
            have_best = true;
            converged = summary.converged;
            iterations = summary.iterations;
        }
    }

    // The fast path skips the polish too: the returned point is the previous solve's, and
    // that solve already compared it against the reference candidate.
    if (config.polish_with_reference || !have_best)
        && !fast_path
        && reference::solve_reference_into(&problem, reference, ref_b_lo, ref_warm).is_ok()
    {
        problem.sanitize(reference);
        let energy = problem.comm_energy(reference);
        if energy.is_finite() && energy < best_energy {
            best_energy = energy;
            have_best = true;
            polished = true;
            std::mem::swap(point, reference);
            if config.warm_start {
                // The polish replaced the loop's solution, so the carried multipliers no
                // longer describe the staged point; re-anchor them at the polished point so
                // the continuation (and its fast path) stays consistent with what the next
                // solve will see.
                jong.reanchor(&problem, point);
            }
        }
    }

    if have_best && config.warm_start {
        warm_r_min.clear();
        warm_r_min.extend_from_slice(r_min_bps);
        *warm_r_min_valid = true;
    }

    std::mem::swap(&mut *problem.scratch_mut(), &mut scratch.kkt);

    if !have_best {
        return Err(CoreError::SolverFailure(
            "both the Newton-like and reference Subproblem-2 solvers failed".to_string(),
        ));
    }

    Ok(Sp2Summary {
        comm_energy_per_round_j: best_energy,
        converged,
        iterations,
        polished,
        fast_path,
        kkt_solves: scratch.kkt.parametric_solves - kkt_solves_before,
        mu_bisect_evals: scratch.kkt.mu_bisect_evals - mu_evals_before,
        lp_sorts: scratch.kkt.lp_sorts - lp_sorts_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flsys::{Allocation, ScenarioBuilder};

    fn setup(n: usize, seed: u64) -> (Scenario, SolverConfig) {
        let s = ScenarioBuilder::paper_default().with_devices(n).build(seed).unwrap();
        (s, SolverConfig::default())
    }

    fn equal_start(s: &Scenario) -> PowerBandwidth {
        let a = Allocation::equal_split_max(s);
        PowerBandwidth::new(a.powers_w, a.bandwidths_hz)
    }

    fn loose_r_min(s: &Scenario) -> Vec<f64> {
        // A rate floor that equal-split max power comfortably exceeds.
        vec![1.0e5; s.devices.len()]
    }

    #[test]
    fn solve_reduces_comm_energy_vs_start() {
        let (s, cfg) = setup(10, 1);
        let arrays = ScenarioArrays::from_scenario(&s);
        let start = equal_start(&s);
        let r_min = loose_r_min(&s);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let start_energy = problem.comm_energy(&start);
        let sol = solve(&s, Weights::balanced(), &r_min, start, &cfg).unwrap();
        assert!(
            sol.comm_energy_per_round_j <= start_energy * (1.0 + 1e-9),
            "sp2 {} should not exceed start {}",
            sol.comm_energy_per_round_j,
            start_energy
        );
    }

    #[test]
    fn solution_is_feasible() {
        let (s, cfg) = setup(12, 2);
        let sol = solve(&s, Weights::balanced(), &loose_r_min(&s), equal_start(&s), &cfg).unwrap();
        let b_sum: f64 = sol.bandwidths_hz.iter().sum();
        assert!(b_sum <= s.params.total_bandwidth.value() * (1.0 + 1e-6));
        for (i, dev) in s.devices.iter().enumerate() {
            assert!(sol.powers_w[i] >= dev.p_min.value() - 1e-12);
            assert!(sol.powers_w[i] <= dev.p_max.value() + 1e-12);
            assert!(sol.bandwidths_hz[i] > 0.0);
        }
    }

    #[test]
    fn rate_constraints_respected_when_feasible() {
        let (s, cfg) = setup(8, 3);
        // Moderate rate floor: 28.1 kbit in at most 50 ms.
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.05).collect();
        let sol = solve(&s, Weights::balanced(), &r_min, equal_start(&s), &cfg).unwrap();
        let n0 = s.params.noise.watts_per_hz();
        for (i, dev) in s.devices.iter().enumerate() {
            let rate =
                shannon_rate_raw(sol.powers_w[i], sol.bandwidths_hz[i], dev.gain.value(), n0);
            assert!(
                rate >= r_min[i] * (1.0 - 1e-3),
                "device {i}: rate {rate} below floor {}",
                r_min[i]
            );
        }
    }

    #[test]
    fn newton_and_reference_agree_roughly() {
        // Use a scarce band and a binding rate floor (the regime Algorithm 2 actually operates
        // in: the deadline from Subproblem 1 makes every device's rate constraint
        // meaningful). In the loose-constraint corner the Theorem-2 construction is known to
        // be weaker — that is exactly what `polish_with_reference` is for.
        let s = ScenarioBuilder::paper_default()
            .with_devices(10)
            .with_total_bandwidth(wireless::units::Hertz::from_mhz(2.0))
            .build(4)
            .unwrap();
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.02).collect();
        let start = equal_start(&s);

        let cfg_newton = SolverConfig { polish_with_reference: false, ..SolverConfig::default() };
        let newton = solve(&s, Weights::balanced(), &r_min, start.clone(), &cfg_newton).unwrap();

        let cfg = SolverConfig::default();
        let arrays = ScenarioArrays::from_scenario(&s);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let reference = reference::solve_reference(&problem, &start).unwrap();
        let ref_energy = problem.comm_energy(&reference);

        let ratio = newton.comm_energy_per_round_j / ref_energy;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "newton {} vs reference {} (ratio {ratio})",
            newton.comm_energy_per_round_j,
            ref_energy
        );
    }

    #[test]
    fn mismatched_r_min_length_is_error() {
        let (s, cfg) = setup(4, 5);
        let err = solve(&s, Weights::balanced(), &[1.0; 3], equal_start(&s), &cfg).unwrap_err();
        assert!(matches!(err, CoreError::Model(_)));
    }

    #[test]
    fn sanitize_repairs_pathological_points() {
        let (s, cfg) = setup(5, 6);
        let arrays = ScenarioArrays::from_scenario(&s);
        let r_min = loose_r_min(&s);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let n = s.devices.len();
        let mut bad = PowerBandwidth::new(vec![f64::NAN; n], vec![-1.0; n]);
        problem.sanitize(&mut bad);
        for i in 0..n {
            assert!(bad.powers_w[i].is_finite());
            assert!(bad.bandwidths_hz[i] >= cfg.bandwidth_floor_hz);
        }
        let b_sum: f64 = bad.bandwidths_hz.iter().sum();
        assert!(b_sum <= s.params.total_bandwidth.value() * (1.0 + 1e-9));
    }

    #[test]
    fn warm_start_fast_path_fires_on_a_repeated_solve() {
        let (s, cfg) = setup(10, 8);
        let cfg = cfg.with_warm_start(true);
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.05).collect();
        let mut scratch = Sp2Scratch::new();
        let start = equal_start(&s);
        scratch.stage_start(&start.powers_w, &start.bandwidths_hz);
        let first = solve_in(&s, Weights::balanced(), &r_min, &cfg, &mut scratch).unwrap();
        assert!(!first.fast_path);
        assert!(first.kkt_solves >= 1);

        // Same floors, solution still staged: the carried multipliers satisfy phi at the
        // staged point, so the whole Newton loop (and the polish) is skipped.
        let second = solve_in(&s, Weights::balanced(), &r_min, &cfg, &mut scratch).unwrap();
        assert!(second.fast_path, "expected the fast path on an unchanged problem");
        assert_eq!(second.iterations, 0);
        assert_eq!(second.kkt_solves, 0);
        assert_eq!(second.comm_energy_per_round_j, first.comm_energy_per_round_j);

        // Moving the rate floors beyond warm_rmin_tol must disarm the fast path.
        let moved: Vec<f64> = r_min.iter().map(|r| r * 1.05).collect();
        let third = solve_in(&s, Weights::balanced(), &moved, &cfg, &mut scratch).unwrap();
        assert!(!third.fast_path, "5% floor move must force a real solve");

        // And a warm-state reset restores cold-start behaviour entirely.
        scratch.reset_warm_start();
        scratch.stage_start(&start.powers_w, &start.bandwidths_hz);
        let fourth = solve_in(&s, Weights::balanced(), &r_min, &cfg, &mut scratch).unwrap();
        assert!(!fourth.fast_path);
        assert!(fourth.iterations >= 1);
    }

    #[test]
    fn warm_and_cold_solves_agree_on_energy_within_tolerance() {
        let (s, cfg) = setup(12, 9);
        let cold_cfg = cfg.with_warm_start(false);
        let warm_cfg = cfg.with_warm_start(true);
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.04).collect();

        let mut cold_scratch = Sp2Scratch::new();
        let start = equal_start(&s);
        cold_scratch.stage_start(&start.powers_w, &start.bandwidths_hz);
        let cold = solve_in(&s, Weights::balanced(), &r_min, &cold_cfg, &mut cold_scratch).unwrap();

        // Dirty the warm scratch with a neighbouring problem first, then solve the real one:
        // the carried multipliers/brackets must not pull the result off the fixed point.
        let mut warm_scratch = Sp2Scratch::new();
        let near: Vec<f64> = r_min.iter().map(|r| r * 1.02).collect();
        warm_scratch.stage_start(&start.powers_w, &start.bandwidths_hz);
        solve_in(&s, Weights::balanced(), &near, &warm_cfg, &mut warm_scratch).unwrap();
        let warm = solve_in(&s, Weights::balanced(), &r_min, &warm_cfg, &mut warm_scratch).unwrap();

        let rel = (warm.comm_energy_per_round_j - cold.comm_energy_per_round_j).abs()
            / cold.comm_energy_per_round_j;
        assert!(
            rel <= 1e-3,
            "warm {} vs cold {} (rel {rel})",
            warm.comm_energy_per_round_j,
            cold.comm_energy_per_round_j
        );
    }

    #[test]
    fn warm_start_spends_fewer_mu_bisection_evals() {
        let (s, cfg) = setup(10, 10);
        let cold_cfg = cfg.with_warm_start(false);
        let warm_cfg = cfg.with_warm_start(true);
        let start = equal_start(&s);

        let run = |cfg: &SolverConfig| -> (u64, u64) {
            let mut scratch = Sp2Scratch::new();
            let mut mu = 0;
            let mut kkt = 0;
            // Re-stage every time (so no fast path): isolate the μ-bracket carry.
            for window in [0.050, 0.0502, 0.0504] {
                let floors: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / window).collect();
                scratch.stage_start(&start.powers_w, &start.bandwidths_hz);
                let out = solve_in(&s, Weights::balanced(), &floors, cfg, &mut scratch).unwrap();
                mu += out.mu_bisect_evals;
                kkt += out.kkt_solves;
            }
            (mu, kkt)
        };
        let (cold_mu, cold_kkt) = run(&cold_cfg);
        let (warm_mu, warm_kkt) = run(&warm_cfg);
        assert!(cold_kkt > 0 && warm_kkt > 0);
        assert!(
            warm_mu < cold_mu,
            "warm μ-bracket reuse must save g'(μ) evaluations: warm {warm_mu} vs cold {cold_mu}"
        );
    }

    #[test]
    fn tighter_rate_floor_costs_more_energy() {
        let (s, cfg) = setup(10, 7);
        let loose: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.2).collect();
        let tight: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.01).collect();
        let e_loose = solve(&s, Weights::balanced(), &loose, equal_start(&s), &cfg)
            .unwrap()
            .comm_energy_per_round_j;
        let e_tight = solve(&s, Weights::balanced(), &tight, equal_start(&s), &cfg)
            .unwrap()
            .comm_energy_per_round_j;
        assert!(
            e_tight >= e_loose * (1.0 - 1e-6),
            "tight deadline energy {e_tight} should be at least loose {e_loose}"
        );
    }
}
