//! The Theorem-2 KKT solver for the parametric subproblem `SP2_v2`.
//!
//! Given the multipliers `(ν, β)` fixed by the outer Newton-like loop, `SP2_v2` (equation
//! (21)) is
//!
//! ```text
//! min_{p, B}  Σ_n ν_n (p_n d_n − β_n G_n(p_n, B_n))
//! s.t.        p_n^min ≤ p_n ≤ p_n^max,  Σ_n B_n ≤ B,  G_n(p_n, B_n) ≥ r_n^min .
//! ```
//!
//! The paper derives its solution in Appendix B:
//!
//! 1. Stationarity in `p` gives the affine relation (A.1)
//!    `p_n = (Λ_n − 1)·N₀·B_n / g_n` with `Λ_n = (ν_nβ_n + τ_n)·g_n / (N₀ d_n ν_n ln 2)`.
//! 2. Eliminating `p` yields a dual in `(τ, μ)`; the stationarity condition (A.3) links
//!    `τ_n` to the bandwidth price `μ` through a Lambert-W expression (A.4):
//!    `τ_n = (μ − j_n) ln 2 / W₀((μ − j_n)/(e·j_n)) − ν_nβ_n`, `j_n = ν_n d_n N₀ / g_n`.
//! 3. `μ` is the root of the scalar concave dual derivative `g'(μ) = 0`, found by a
//!    safeguarded Brent iteration (or, behind
//!    [`SolverConfig::superlinear_mu`](crate::SolverConfig) `= false`, the paper's pure
//!    bisection).
//!    We use the algebraically simplified form
//!    `g'(μ) = Σ_n r_n^min·ln2 / (W₀((μ − j_n)/(e·j_n)) + 1) − B`,
//!    which is equivalent to the paper's expression but avoids the removable singularity at
//!    `μ = j_n`.
//! 4. Devices with `τ_n > 0` have a tight rate constraint: `B_n = r_n^min / log2(Λ_n)` and
//!    `p_n` from (A.1). The remaining devices solve the bounded linear program (A.6) in their
//!    bandwidths, which a greedy pass over the cost coefficients solves exactly.
//!
//! Box constraints on `p` (equation (38)) are applied by clamping, exactly as in the paper.

use super::{PowerBandwidth, Sp2Problem};
use numopt::lambertw::{lambert_w0, ratio_over_w0};
use numopt::roots::{brent_with_endpoints, root_of_decreasing, root_of_decreasing_brent};
use numopt::scalar::clamp;
use numopt::NumError;
use wireless::channel::power_for_rate;

const LN2: f64 = std::f64::consts::LN_2;

/// Per-device LP data of step 4b: cost coefficient `ρ_n` and the bandwidth bounds implied by
/// the power box under the affine relation (A.1) with `τ_n = 0`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LpEntry {
    idx: usize,
    rho: f64,
    b_lo: f64,
    b_hi: f64,
}

/// Reusable scratch buffers of the Theorem-2 KKT construction.
///
/// Every buffer is pure scratch: [`solve_parametric`] overwrites the contents on entry and
/// never reads state left by a previous call, so one instance can be reused across
/// arbitrarily many solves (and across scenarios of different device counts — the buffers
/// are resized per call). Reuse only saves the allocations.
///
/// Two kinds of *non-scratch* state ride along, neither of which affects the reference
/// path: cumulative work counters ([`KktScratch::parametric_solves`],
/// [`KktScratch::mu_bisect_evals`] — instrumentation only), and the warm-start `μ` seed —
/// the previous bisection root, read **only** when
/// [`SolverConfig::warm_start`](crate::SolverConfig) is set, and droppable at any time via
/// [`KktScratch::reset_warm_start`].
#[derive(Debug, Clone, Default)]
pub struct KktScratch {
    /// `j_n = ν_n d_n N₀ / g_n` per device (the constant of Appendix B).
    j: Vec<f64>,
    /// Compacted `j_n` lane of the rate-constrained devices only (in device order) — the
    /// `g'(μ)` summation set. Built **once per parametric solve**, so every `μ` probe is a
    /// dense, branch-free `O(m)` walk (`m` = rate-constrained devices) instead of an
    /// `O(n)` scan that re-tests `r_n^min > 0` on every device.
    rc_j: Vec<f64>,
    /// Matching compacted `r_n^min · ln 2` lane (the constant numerator of each `g'` term,
    /// hoisted out of the per-probe loop; `(r·ln2)/denom` is bit-identical to
    /// `r·ln2/denom` — same left-to-right grouping).
    rc_rmin_ln2: Vec<f64>,
    /// LP entries of the devices whose rate constraint is slack (step 4b).
    entries: Vec<LpEntry>,
    /// Cumulative count of Theorem-2 parametric solves performed with this scratch.
    pub parametric_solves: u64,
    /// Cumulative count of `g'(μ)` evaluations spent in the `μ` root search (bracket
    /// validation, expansion and root refinement alike; bisection and Brent count the
    /// same way).
    pub mu_bisect_evals: u64,
    /// Cumulative count of step-4b `(ρ, idx)` key sorts. The LP ordering is `μ`-invariant,
    /// so this advances exactly once per parametric solve — never once per `g'(μ)`
    /// evaluation. The complexity audit asserts this ratio.
    pub lp_sorts: u64,
    /// The previous solve's bandwidth price `μ` — the warm-start bracket seed.
    warm_mu: f64,
    /// Whether [`KktScratch::warm_mu`] holds a usable seed.
    warm_mu_valid: bool,
    /// Adaptive relative half-width of the next warm bracket, learned from how far the
    /// root moved in the previous solve. `0.0` means "no history" — the warm path then
    /// opens at the conservative [`INITIAL_WARM_DELTA`]. Only read when
    /// [`SolverConfig::adaptive_mu_bracket`](crate::SolverConfig) is set.
    warm_delta: f64,
}

/// Relative half-width of the first warm `μ` bracket after a reset (and the fixed width
/// of every warm bracket when the adaptive carry is gated off).
const INITIAL_WARM_DELTA: f64 = 1e-3;
/// Floor of the adaptive warm-bracket half-width: the bracket never collapses below this
/// even for a root that did not move at all, so one pair of validation probes still has a
/// realistic chance of straddling the new root.
const MIN_WARM_DELTA: f64 = 1e-5;

impl KktScratch {
    /// Drops the carried `μ`-bracket seed: the next warm-start solve brackets from the
    /// full conservative interval again.
    pub fn reset_warm_start(&mut self) {
        self.warm_mu_valid = false;
        self.warm_delta = 0.0;
    }
}

/// Solves the parametric subproblem `SP2_v2` for fixed `(ν, β)` via the Theorem-2
/// construction.
///
/// Allocating convenience form of [`solve_parametric_into`].
///
/// # Errors
///
/// Returns an error if the Lambert-W evaluation or the `μ` bisection fails on non-finite
/// inputs; callers treat that as "fall back to the reference solver".
pub fn solve_parametric(
    problem: &Sp2Problem<'_>,
    nu: &[f64],
    beta: &[f64],
) -> Result<PowerBandwidth, NumError> {
    let mut point = PowerBandwidth::new(Vec::new(), Vec::new());
    solve_parametric_into(problem, nu, beta, &mut point)?;
    Ok(point)
}

/// [`solve_parametric`] into a caller-owned point — the allocation-free hot-path form.
///
/// `out` is pure scratch: whatever it holds on entry (any device count, any values) is
/// discarded, its vectors are resized to the scenario and every entry is written before the
/// final sanitize pass reads it. Together with the pooled [`KktScratch`] buffers this makes
/// the whole Theorem-2 construction allocation-free in steady state; results are
/// bit-identical to [`solve_parametric`].
///
/// # Errors
///
/// Same as [`solve_parametric`].
pub fn solve_parametric_into(
    problem: &Sp2Problem<'_>,
    nu: &[f64],
    beta: &[f64],
    out: &mut PowerBandwidth,
) -> Result<(), NumError> {
    let arrays = problem.arrays();
    let n = arrays.len();
    let n0 = problem.n0();
    let b_total = problem.total_bandwidth();
    let floor = problem.config().bandwidth_floor_hz;
    let r_min = problem.r_min_bps();
    let mut scratch = problem.scratch_mut();
    let KktScratch {
        j,
        rc_j,
        rc_rmin_ln2,
        entries,
        parametric_solves,
        mu_bisect_evals,
        lp_sorts,
        warm_mu,
        warm_mu_valid,
        warm_delta,
    } = &mut *scratch;
    *parametric_solves += 1;

    // j_n = ν_n d_n N₀ / g_n (the constant of Appendix B), filled from the contiguous
    // lanes. The expression keeps the exact operand grouping of the struct walk
    // (ν·d·N₀/g, left to right over the raw per-device values), so the fill is
    // bit-identical to indexing the profiles.
    j.clear();
    j.extend(
        nu.iter()
            .zip(arrays.upload_bits.iter())
            .zip(arrays.gain.iter())
            .map(|((&nu_i, &d), &g)| (nu_i.max(1e-300)) * d * n0 / g),
    );

    // --- Step 3: bandwidth price μ from g'(μ) = 0 (root of a decreasing function). ---
    let has_rate_constraints = r_min.iter().any(|&r| r > 0.0);
    let warm_start = problem.config().warm_start;
    let superlinear = problem.config().superlinear_mu;
    let adaptive = problem.config().adaptive_mu_bracket;
    let mu = if has_rate_constraints {
        // Compact the summation set once per parametric solve: the μ search only ever
        // touches the rate-constrained devices, and their (j_n, r_n^min·ln2) pairs are
        // μ-invariant. Device order is preserved, so the per-probe sum below accumulates
        // the exact same terms in the exact same order as a full skip-scan would.
        rc_j.clear();
        rc_rmin_ln2.clear();
        for i in 0..n {
            if r_min[i] > 0.0 {
                rc_j.push(j[i]);
                rc_rmin_ln2.push(r_min[i] * LN2);
            }
        }
        let evals = std::cell::Cell::new(0u64);
        let g_prime = |mu: f64| -> f64 {
            evals.set(evals.get() + 1);
            let mut sum = 0.0;
            for (&ji, &rml) in rc_j.iter().zip(rc_rmin_ln2.iter()) {
                let arg = (mu - ji) / (std::f64::consts::E * ji);
                let w = lambert_w0(arg.max(-1.0 / std::f64::consts::E)).unwrap_or(0.0);
                // Simplified derivative term: r_min·ln2 / (W + 1).
                let denom = (w + 1.0).max(1e-12);
                sum += rml / denom;
            }
            sum - b_total
        };
        // Brent (superlinear, with a bisection safeguard inside the step) or the legacy
        // pure bisection — same bracket, same tolerance semantics either way.
        let find_root = |lo: f64, hi: f64, tol: f64| -> Result<f64, NumError> {
            if superlinear {
                root_of_decreasing_brent(&g_prime, lo, hi, tol, 300)
            } else {
                root_of_decreasing(&g_prime, lo, hi, tol, 300)
            }
        };
        let j_max = j.iter().cloned().fold(0.0_f64, f64::max).max(1e-300);
        let j_min = j.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-300);

        // Warm start: the Newton-like outer loop moves (ν, β) — and with them the root of
        // g' — only a little per iteration, so bracket tightly around the previous root and
        // expand geometrically if that turned out stale. Signs are validated before
        // bisecting (g' decreasing ⇒ g'(lo) > 0 ≥ g'(hi)); any failure after a few
        // expansions falls back to the full conservative bracket below. The tolerance is
        // pinned to the *conservative* bracket's scale so a tight warm bracket saves
        // halvings instead of buying unasked-for accuracy.
        let mut warm_root = None;
        if warm_start && *warm_mu_valid && *warm_mu > 0.0 && warm_mu.is_finite() {
            let tol = problem.config().mu_tol * (10.0 * j_max);
            // Open at the adaptively carried half-width when there is movement history
            // (one extra escalation keeps the worst-case expansion reach identical),
            // otherwise at the conservative fixed width — which is also the gated-off
            // legacy path, probe for probe.
            let (mut delta, tries) = if adaptive && *warm_delta > 0.0 {
                (*warm_delta, 5)
            } else {
                (INITIAL_WARM_DELTA, 4)
            };
            for _ in 0..tries {
                let lo = (*warm_mu * (1.0 - delta)).max(1e-9 * j_min);
                let hi = *warm_mu * (1.0 + delta);
                let (g_lo, g_hi) = (g_prime(lo), g_prime(hi));
                if g_lo > 0.0 && g_hi <= 0.0 {
                    // A failed refinement (e.g. a non-finite interior probe) falls back to
                    // the conservative bracket below rather than failing the solve — the
                    // warm bracket is only ever a hint.
                    warm_root = if adaptive && superlinear && g_lo.is_finite() && g_hi.is_finite() {
                        // The validation probes double as Brent's endpoint values: the
                        // refinement starts with zero redundant `g'` evaluations (the
                        // wrapper-and-Brent entry probes used to re-evaluate both ends
                        // twice). `g_hi == 0.0` returns `hi` exactly like the wrapper's
                        // endpoint clamp.
                        brent_with_endpoints(&g_prime, lo, g_lo, hi, g_hi, tol, 300)
                            .map(|o| o.root)
                            .or_else(|_| find_root(lo, hi, tol))
                            .ok()
                    } else {
                        find_root(lo, hi, tol).ok()
                    };
                    break;
                }
                // A stale adaptive width first re-tries the proven fixed width before the
                // geometric escalation takes over.
                delta = if adaptive && delta < INITIAL_WARM_DELTA {
                    INITIAL_WARM_DELTA
                } else {
                    delta * 16.0
                };
            }
        }
        let mu = match warm_root {
            Some(mu) => mu,
            None => {
                let mu_lo = 1e-9 * j_min;
                // Expand the upper bracket until the derivative is negative.
                let mut mu_hi = 10.0 * j_max;
                let mut expansions = 0;
                while g_prime(mu_hi) > 0.0 && expansions < 200 {
                    mu_hi *= 4.0;
                    expansions += 1;
                }
                find_root(mu_lo, mu_hi, problem.config().mu_tol * mu_hi)?
            }
        };
        *mu_bisect_evals += evals.get();
        mu
    } else {
        0.0
    };
    if warm_start && mu > 0.0 {
        if adaptive && *warm_mu_valid && *warm_mu > 0.0 {
            // Next bracket's half-width: a small multiple of the observed relative root
            // movement, clamped so it neither collapses to nothing nor exceeds the
            // conservative opening width.
            let rel = (mu - *warm_mu).abs() / *warm_mu;
            *warm_delta = (16.0 * rel).clamp(MIN_WARM_DELTA, INITIAL_WARM_DELTA);
        }
        *warm_mu = mu;
        *warm_mu_valid = true;
    }

    // --- Step 2/4: per-device multipliers τ_n and the rate-tight closed form. Devices whose
    // rate constraint is slack get their LP data (previously a second pass) built inline.
    // The output point doubles as the (p, B) working buffers. ---
    out.powers_w.clear();
    out.powers_w.resize(n, 0.0);
    out.bandwidths_hz.clear();
    out.bandwidths_hz.resize(n, 0.0);
    let powers = &mut out.powers_w;
    let bandwidths = &mut out.bandwidths_hz;
    entries.clear();
    let mut budget_used = 0.0;

    for i in 0..n {
        let g = arrays.gain[i];
        let d = arrays.upload_bits[i];
        let (p_min, p_max) = (arrays.p_min_w[i], arrays.p_max_w[i]);
        let tau = if r_min[i] > 0.0 && mu > 0.0 {
            (ratio_over_w0(mu - j[i], j[i])? * LN2 - nu[i] * beta[i]).max(0.0)
        } else {
            0.0
        };
        if tau > 0.0 {
            let lambda_n = (nu[i] * beta[i] + tau) * g / (n0 * d * nu[i].max(1e-300) * LN2);
            if lambda_n > 1.0 + 1e-9 && r_min[i] > 0.0 {
                let b = r_min[i] / lambda_n.log2();
                let p = (lambda_n - 1.0) * n0 * b / g;
                bandwidths[i] = b.max(floor);
                powers[i] = clamp(p, p_min, p_max);
                budget_used += bandwidths[i];
                continue;
            }
        }
        let lambda0 = beta[i] * g / (n0 * d * LN2);
        let (rho, b_lo, b_hi);
        if lambda0 > 1.0 + 1e-9 {
            rho = nu[i] * beta[i] / LN2 - n0 * d * nu[i] / g - nu[i] * beta[i] * lambda0.log2();
            let slope = (lambda0 - 1.0) * n0 / g; // p = slope · B
            let lo_from_pmin = p_min / slope;
            let hi_from_pmax = p_max / slope;
            let lo_from_rate = if r_min[i] > 0.0 { r_min[i] / lambda0.log2() } else { 0.0 };
            b_lo = lo_from_pmin.max(lo_from_rate).max(floor);
            b_hi = hi_from_pmax.max(b_lo);
        } else {
            // The unconstrained stationary power would be non-positive: the device sits at
            // p_min and simply wants as much bandwidth as the budget allows (the objective
            // is decreasing in B there). Its lower bound is whatever keeps the rate
            // constraint satisfiable at maximum power.
            rho = -nu[i] * beta[i]; // strictly negative ⇒ prioritized for leftover bandwidth
            b_lo = bandwidth_for_rate(g, p_max, r_min[i], n0, b_total, floor);
            b_hi = b_total;
        }
        entries.push(LpEntry { idx: i, rho, b_lo, b_hi });
    }

    // --- Step 4b: the bounded LP (A.6) over the devices whose rate constraint is slack. ---
    if !entries.is_empty() {
        let mut remaining = (b_total - budget_used).max(0.0);

        // Assign lower bounds first. Each floored share `(b_lo·scale).max(floor)` is computed
        // once and used both as the device's assignment and as its contribution to the spent
        // budget, so the two can never drift apart.
        let lo_sum: f64 = entries.iter().map(|e| e.b_lo).sum();
        let scale = if lo_sum > remaining && lo_sum > 0.0 { remaining / lo_sum } else { 1.0 };
        let mut assigned = 0.0;
        for e in entries.iter() {
            let share = (e.b_lo * scale).max(floor);
            bandwidths[e.idx] = share;
            assigned += share;
        }
        remaining = (remaining - assigned).max(0.0);

        // Spend the leftover on the devices with the most negative cost coefficient first.
        // `sort_unstable_by` with the `(ρ, idx)` key: ties on ρ resolve by device index —
        // exactly the order a stable sort would produce (entries are pushed in index order),
        // but the determinism no longer hinges on sort stability (and the unstable sort does
        // not allocate its merge buffer). The (ρ, idx) keys do not depend on μ's refinement
        // history, so this O(m log m) sort runs once per parametric solve — never per
        // g'(μ) probe; `lp_sorts` counts it as evidence.
        *lp_sorts += 1;
        entries.sort_unstable_by(|a, b| {
            (a.rho, a.idx).partial_cmp(&(b.rho, b.idx)).expect("finite coefficients")
        });
        for e in entries.iter() {
            if remaining <= 0.0 {
                break;
            }
            if e.rho < 0.0 {
                let extra = (e.b_hi - bandwidths[e.idx]).clamp(0.0, remaining);
                bandwidths[e.idx] += extra;
                remaining -= extra;
            }
        }

        // Recover powers from the affine relation (A.1), clamped into the box (38), and then
        // repaired upward if the rate constraint needs it.
        for e in entries.iter() {
            let i = e.idx;
            let g = arrays.gain[i];
            let d = arrays.upload_bits[i];
            let (p_min, p_max) = (arrays.p_min_w[i], arrays.p_max_w[i]);
            let lambda0 = beta[i] * g / (n0 * d * LN2);
            let p_raw =
                if lambda0 > 1.0 + 1e-9 { (lambda0 - 1.0) * n0 * bandwidths[i] / g } else { p_min };
            let mut p = clamp(p_raw, p_min, p_max);
            if r_min[i] > 0.0 {
                let needed = power_for_rate(r_min[i], bandwidths[i], g, n0);
                if needed > p {
                    p = clamp(needed, p_min, p_max);
                }
            }
            powers[i] = p;
        }
    }

    problem.sanitize(out);
    Ok(())
}

/// Smallest bandwidth at which a device with channel gain `g` can reach `r_min` at its
/// maximum power `p_max` (bisection on the monotone-increasing map `B ↦ G(p_max, B)`),
/// capped at `b_total`.
fn bandwidth_for_rate(g: f64, p_max: f64, r_min: f64, n0: f64, b_total: f64, floor: f64) -> f64 {
    if r_min <= 0.0 {
        return floor;
    }
    let rate_at = |b: f64| wireless::channel::shannon_rate_raw(p_max, b, g, n0);
    if rate_at(b_total) < r_min {
        // Not reachable even with the whole band: ask for the whole band (the sanitize pass
        // will scale it back together with everyone else).
        return b_total;
    }
    let mut lo = floor;
    let mut hi = b_total;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if rate_at(mid) >= r_min {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) / hi < 1e-9 {
            break;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use flsys::{Allocation, ScenarioArrays, ScenarioBuilder, Weights};
    use numopt::fractional::FractionalProblem;
    use wireless::channel::shannon_rate_raw;

    fn problem_fixture(
        n: usize,
        seed: u64,
        upload_window_s: f64,
    ) -> (flsys::Scenario, ScenarioArrays, SolverConfig, Vec<f64>) {
        let s = ScenarioBuilder::paper_default().with_devices(n).build(seed).unwrap();
        let arrays = ScenarioArrays::from_scenario(&s);
        let cfg = SolverConfig::default();
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / upload_window_s).collect();
        (s, arrays, cfg, r_min)
    }

    fn nominal_multipliers(
        problem: &Sp2Problem<'_>,
        start: &PowerBandwidth,
    ) -> (Vec<f64>, Vec<f64>) {
        let n = problem.len();
        let mut nu = vec![0.0; n];
        let mut beta = vec![0.0; n];
        for i in 0..n {
            let d = problem.denominator(i, start);
            nu[i] = problem.ratio_weight(i) / d;
            beta[i] = problem.numerator(i, start) / d;
        }
        (nu, beta)
    }

    #[test]
    fn parametric_solution_is_feasible() {
        let (s, arrays, cfg, r_min) = problem_fixture(10, 11, 0.05);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let (nu, beta) = nominal_multipliers(&problem, &start);
        let point = solve_parametric(&problem, &nu, &beta).unwrap();

        let b_sum: f64 = point.bandwidths_hz.iter().sum();
        assert!(b_sum <= s.params.total_bandwidth.value() * (1.0 + 1e-6));
        let n0 = s.params.noise.watts_per_hz();
        for (i, dev) in s.devices.iter().enumerate() {
            assert!(point.powers_w[i] >= dev.p_min.value() - 1e-15);
            assert!(point.powers_w[i] <= dev.p_max.value() + 1e-15);
            assert!(point.bandwidths_hz[i] >= cfg.bandwidth_floor_hz);
            let rate =
                shannon_rate_raw(point.powers_w[i], point.bandwidths_hz[i], dev.gain.value(), n0);
            assert!(rate > 0.0);
        }
    }

    #[test]
    fn parametric_solution_improves_parametric_objective() {
        // The KKT point should not be worse than the starting point on the subtractive
        // objective Σ ν(p·d − β·G).
        let (s, arrays, cfg, r_min) = problem_fixture(8, 13, 0.05);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let (nu, beta) = nominal_multipliers(&problem, &start);
        let parametric = |pt: &PowerBandwidth| -> f64 {
            (0..problem.len())
                .map(|i| nu[i] * (problem.numerator(i, pt) - beta[i] * problem.denominator(i, pt)))
                .sum()
        };
        let point = solve_parametric(&problem, &nu, &beta).unwrap();
        assert!(
            parametric(&point) <= parametric(&start) + 1e-9,
            "kkt point {} should improve on start {}",
            parametric(&point),
            parametric(&start)
        );
    }

    #[test]
    fn rate_tight_devices_hit_rate_floor() {
        // With a scarce band and a demanding rate floor, most devices should sit essentially
        // at r_min (the rate constraint is what drives their bandwidth share).
        let s = ScenarioBuilder::paper_default()
            .with_devices(10)
            .with_total_bandwidth(wireless::units::Hertz::from_mhz(2.0))
            .build(17)
            .unwrap();
        let arrays = ScenarioArrays::from_scenario(&s);
        let cfg = SolverConfig::default();
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.02).collect();
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let (nu, beta) = nominal_multipliers(&problem, &start);
        let point = solve_parametric(&problem, &nu, &beta).unwrap();
        let n0 = s.params.noise.watts_per_hz();
        let mut tight = 0;
        for (i, dev) in s.devices.iter().enumerate() {
            let rate =
                shannon_rate_raw(point.powers_w[i], point.bandwidths_hz[i], dev.gain.value(), n0);
            assert!(rate >= r_min[i] * (1.0 - 1e-3), "device {i} violates rate floor");
            if rate <= r_min[i] * 1.05 {
                tight += 1;
            }
        }
        assert!(tight >= s.devices.len() / 2, "expected most devices rate-tight, got {tight}");
    }

    #[test]
    fn no_rate_constraint_spends_whole_budget_mostly_at_low_power() {
        let (s, arrays, cfg, _) = problem_fixture(6, 19, 0.05);
        let r_min = vec![0.0; 6];
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let (nu, beta) = nominal_multipliers(&problem, &start);
        let point = solve_parametric(&problem, &nu, &beta).unwrap();
        let b_sum: f64 = point.bandwidths_hz.iter().sum();
        assert!(b_sum <= s.params.total_bandwidth.value() * (1.0 + 1e-6));
        assert!(b_sum > 0.0);
    }

    #[test]
    fn into_variant_matches_allocating_variant_from_dirty_out() {
        let (s, arrays, cfg, r_min) = problem_fixture(10, 11, 0.05);
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let (nu, beta) = nominal_multipliers(&problem, &start);
        let fresh = solve_parametric(&problem, &nu, &beta).unwrap();

        // A wrongly-sized, garbage-filled output point must be overwritten completely.
        let mut dirty = PowerBandwidth::new(vec![f64::NAN; 3], vec![-1.0; 17]);
        solve_parametric_into(&problem, &nu, &beta, &mut dirty).unwrap();
        assert_eq!(dirty, fresh);
        // And reusing the same buffer again stays bit-identical.
        solve_parametric_into(&problem, &nu, &beta, &mut dirty).unwrap();
        assert_eq!(dirty, fresh);
    }

    #[test]
    fn step4b_lower_bound_assignment_and_budget_deduction_agree() {
        // The floored share `(b_lo·scale).max(floor)` used to be computed twice — once for
        // the assignment, once (re-derived inside a sum) for the budget deduction. Guard the
        // single-computation refactor two ways. First, the arithmetic identity on a mixed
        // set of entries (floored and unfloored):
        let entries = [
            LpEntry { idx: 0, rho: -1.0, b_lo: 10.0, b_hi: 100.0 },
            LpEntry { idx: 1, rho: 0.5, b_lo: 0.1, b_hi: 50.0 },
            LpEntry { idx: 2, rho: -0.2, b_lo: 7.0, b_hi: 9.0 },
        ];
        let (floor, remaining) = (2.0, 12.0);
        let lo_sum: f64 = entries.iter().map(|e| e.b_lo).sum();
        let scale = if lo_sum > remaining && lo_sum > 0.0 { remaining / lo_sum } else { 1.0 };
        let mut assigned = 0.0;
        for e in &entries {
            assigned += (e.b_lo * scale).max(floor);
        }
        let recomputed: f64 = entries.iter().map(|e| (e.b_lo * scale).max(floor)).sum();
        assert_eq!(assigned, recomputed, "assignment and deduction drifted apart");

        // Second, end to end: with a scarce band the lower bounds are scaled to fit the
        // budget exactly, so any drift between assignment and deduction would leave the
        // solver under- or over-spending the band.
        let s = ScenarioBuilder::paper_default()
            .with_devices(10)
            .with_total_bandwidth(wireless::units::Hertz::from_mhz(2.0))
            .build(17)
            .unwrap();
        let arrays = ScenarioArrays::from_scenario(&s);
        let cfg = SolverConfig::default();
        let r_min: Vec<f64> = s.devices.iter().map(|d| d.upload_bits / 0.02).collect();
        let problem = Sp2Problem::new(&s, &arrays, Weights::balanced(), &r_min, &cfg).unwrap();
        let a = Allocation::equal_split_max(&s);
        let start = PowerBandwidth::new(a.powers_w, a.bandwidths_hz);
        let (nu, beta) = nominal_multipliers(&problem, &start);
        let point = solve_parametric(&problem, &nu, &beta).unwrap();
        let b_total = s.params.total_bandwidth.value();
        let b_sum: f64 = point.bandwidths_hz.iter().sum();
        assert!(
            (b_sum - b_total).abs() / b_total < 1e-6,
            "scarce band must be spent exactly: used {b_sum} of {b_total}"
        );
    }

    #[test]
    fn bandwidth_for_rate_is_inverse_of_rate() {
        let s = ScenarioBuilder::paper_default().with_devices(1).build(3).unwrap();
        let dev = &s.devices[0];
        let n0 = s.params.noise.watts_per_hz();
        let b_total = s.params.total_bandwidth.value();
        let r_min = 1.0e6;
        let b = bandwidth_for_rate(dev.gain.value(), dev.p_max.value(), r_min, n0, b_total, 1.0);
        let achieved = shannon_rate_raw(dev.p_max.value(), b, dev.gain.value(), n0);
        assert!((achieved - r_min).abs() / r_min < 1e-3);
        assert_eq!(
            bandwidth_for_rate(dev.gain.value(), dev.p_max.value(), 0.0, n0, b_total, 1.0),
            1.0
        );
    }
}
