//! Reusable per-device scratch buffers for the solver hot path.
//!
//! Every call into [`JointOptimizer::solve`] used to allocate a fresh set of per-device
//! vectors (uplink rates, upload times, rate floors, frequencies, KKT scratch) — dozens of
//! allocations per outer iteration, millions across a figure sweep at the paper's 100
//! scenario draws per point. A [`SolverWorkspace`] owns those buffers once; the
//! `*_with`/`*_in`/`*_scratch` solver entry points borrow it mutably and reuse the
//! allocations call after call.
//!
//! # Reuse contract: everything is scratch, nothing is carried
//!
//! No field of the workspace carries *signal* between solver calls. Every entry point that
//! borrows the workspace clears or overwrites each buffer it touches *before* reading it,
//! and resizes buffers to the scenario at hand — so one workspace can serve scenarios of
//! different device counts back to back, and a freshly-created workspace produces
//! bit-identical results to a heavily reused one (a regression test in this module holds
//! that promise down). The only thing reuse preserves is `Vec` capacity.
//!
//! Two gated exceptions ride along without weakening that contract on the reference path:
//!
//! * [`SolverWorkspace::counters`] accumulates iteration counts across solves —
//!   instrumentation only, never read by any solver.
//! * With [`SolverConfig::warm_start`](crate::SolverConfig) **enabled**, the Subproblem-2
//!   scratch deliberately carries the previous solve's Jong multipliers, `μ`-bisection
//!   bracket and rate floors to seed the next solve. Results then converge to the same
//!   fixed point within the configured tolerances but may differ in the last bits
//!   depending on what the workspace solved before;
//!   [`SolverWorkspace::reset_warm_start`] restores the fresh-workspace behaviour. With
//!   warm start disabled (the default) none of that state is ever read and the strict
//!   contract holds bit for bit.
//!
//! The intended pattern is one workspace per worker thread, living as long as the worker:
//! the sweep engine (`experiments::engine`) creates one per worker, threads it through
//! `Arm::evaluate` for every cell that worker picks up, and calls
//! [`SolverWorkspace::reset_warm_start`] at every cell-group boundary so warm-started
//! sweeps stay bit-identical across thread counts.
//!
//! [`JointOptimizer::solve`]: crate::JointOptimizer::solve

use crate::sp1::Sp1WarmState;
use crate::sp2::Sp2Scratch;
use crate::trace::{OuterIteration, SolveCounters};
use flsys::{Allocation, ScenarioArrays};

/// Reusable per-device buffers for [`JointOptimizer`](crate::JointOptimizer), Subproblem 1,
/// Subproblem 2 and the baseline allocators. See the [module docs](self) for the reuse
/// contract (all scratch, nothing carried).
///
/// The fields are public so downstream harnesses (the sweep engine, the baseline
/// allocators) can stage their own per-device intermediates in the same buffers; their
/// contents are unspecified between calls.
#[derive(Debug, Clone, Default)]
pub struct SolverWorkspace {
    /// Per-device upload times `T_n^up = d_n / r_n` (seconds).
    pub uploads_s: Vec<f64>,
    /// Per-device uplink Shannon rates (bit/s).
    pub rates_bps: Vec<f64>,
    /// Per-device minimum-rate floors `r_n^min` handed to Subproblem 2 (bit/s).
    pub r_min_bps: Vec<f64>,
    /// Per-device CPU frequencies (Hz) — Subproblem 1's output buffer.
    pub frequencies_hz: Vec<f64>,
    /// Complete Subproblem-2 scratch: KKT buffers, the Newton-like outer loop's vectors,
    /// and the double-buffered `(p, B)` points (see [`Sp2Scratch`]).
    pub sp2: Sp2Scratch,
    /// Algorithm 2's working allocation (and general staging allocation for baselines).
    pub allocation: Allocation,
    /// The previous outer iterate (Algorithm 2's convergence metric compares against it).
    pub previous: Allocation,
    /// The best iterate seen so far. After a `*_summary_*` solve this holds the returned
    /// solution (the one piece of output that intentionally stays in the workspace).
    pub best: Allocation,
    /// Pooled backing store of the convergence [`Trace`](crate::Trace) — cleared per solve.
    pub trace: Vec<OuterIteration>,
    /// Cumulative iteration counters of every solve that borrowed this workspace
    /// (instrumentation only; reset with [`SolveCounters::reset`]).
    pub counters: SolveCounters,
    /// Pooled coefficient vector of the Subproblem-1 dual reference path
    /// ([`crate::sp1::solve_dual_in`]).
    pub sp1_cd: Vec<f64>,
    /// Struct-of-arrays view of the scenario's per-device quantities, rebuilt (capacity
    /// reused) at the top of every solve that borrows the workspace. The inner loops of
    /// Subproblems 1 and 2 read these contiguous lanes instead of chasing
    /// `DeviceProfile` fields.
    pub arrays: ScenarioArrays,
    /// Subproblem 1's carried golden-section bracket (warm-start state; reset together
    /// with the Subproblem-2 warm state by [`Self::reset_warm_start`]).
    pub sp1_warm: Sp1WarmState,
    /// Optional wall-clock budget for the *next* solve that borrows this workspace.
    ///
    /// When set, Algorithm 2 checks it at solve entry and at every outer-iteration
    /// boundary and abandons the solve with
    /// [`CoreError::DeadlineExpired`](crate::CoreError::DeadlineExpired) once the instant
    /// has passed — the hook serving layers use to turn a slow request into a typed
    /// `degraded` response instead of a hang. This is a caller-managed *input*, not
    /// carried state: solvers only read it, never clear or set it, so a long-lived
    /// workspace owner must decide per solve whether a budget applies (and `None`, the
    /// default, costs the hot path nothing beyond one branch per outer iteration).
    pub solve_deadline: Option<std::time::Instant>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace with per-device buffers pre-sized for `n` devices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            uploads_s: Vec::with_capacity(n),
            rates_bps: Vec::with_capacity(n),
            r_min_bps: Vec::with_capacity(n),
            frequencies_hz: Vec::with_capacity(n),
            sp2: Sp2Scratch::new(),
            allocation: Allocation::default(),
            previous: Allocation::default(),
            best: Allocation::default(),
            trace: Vec::new(),
            counters: SolveCounters::default(),
            sp1_cd: Vec::with_capacity(n),
            arrays: ScenarioArrays::with_capacity(n),
            sp1_warm: Sp1WarmState::default(),
            solve_deadline: None,
        }
    }

    /// Drops every piece of carried warm-start state (Jong multipliers, `μ` bracket, rate
    /// floors), restoring fresh-workspace behaviour for the next warm-started solve. A
    /// no-op for results when [`SolverConfig::warm_start`](crate::SolverConfig) is off.
    pub fn reset_warm_start(&mut self) {
        self.sp2.reset_warm_start();
        self.sp1_warm.reset();
    }

    /// Tears the workspace down to a freshly-constructed state, keeping only the
    /// per-device `Vec` capacity as a sizing hint.
    ///
    /// This is the quarantine hammer for supervisors that suspect the workspace itself —
    /// a panicking solve, a non-finite objective, or warm-vs-cold drift beyond tolerance.
    /// Unlike [`Self::reset_warm_start`] (which drops only the deliberately-carried
    /// warm-start state) this also zeroes the counters, the staged allocations, the trace
    /// pool and any pending [`Self::solve_deadline`], so nothing a corrupted solve may
    /// have left behind can influence the next one.
    pub fn quarantine_reset(&mut self) {
        let n = self.rates_bps.capacity();
        *self = Self::with_capacity(n);
    }

    /// Fills [`Self::uploads_s`] with the per-device upload times `T_n^up = d_n / r_n`
    /// implied by the rates currently staged in [`Self::rates_bps`] (`∞` for a
    /// non-positive rate) — the convention shared by Algorithm 2 and every baseline, kept
    /// in one place so the zero-rate sentinel can never diverge between them.
    pub fn upload_times_from_rates(&mut self, scenario: &flsys::Scenario) {
        self.uploads_s.clear();
        let rates = &self.rates_bps;
        self.uploads_s.extend(scenario.devices.iter().zip(rates.iter()).map(|(d, &r)| {
            if r > 0.0 {
                d.upload_bits / r
            } else {
                f64::INFINITY
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JointOptimizer, SolverConfig};
    use flsys::{ScenarioBuilder, Weights};

    /// The reuse contract: a workspace that has served a *larger* scenario (and a smaller
    /// one) must produce bit-identical results on the next scenario — stale buffer contents
    /// or lengths must never leak between calls.
    #[test]
    fn reuse_across_device_counts_matches_fresh_workspace() {
        // Warm start off: the strict contract (bit-identical to a fresh workspace) only
        // holds when no warm-start state is carried. The warm variant of this promise —
        // reuse + reset_warm_start() matches fresh — is held down by
        // `alg2::tests::warm_workspace_is_deterministic_after_reset`.
        let opt = JointOptimizer::new(SolverConfig::fast().with_warm_start(false));
        let big = ScenarioBuilder::paper_default().with_devices(10).build(91).unwrap();
        let small = ScenarioBuilder::paper_default().with_devices(4).build(92).unwrap();
        let mid = ScenarioBuilder::paper_default().with_devices(7).build(93).unwrap();

        let mut reused = SolverWorkspace::new();
        // Dirty the workspace with a 10-device solve, then shrink to 4, then grow to 7.
        let mut seq = Vec::new();
        for s in [&big, &small, &mid] {
            seq.push(opt.solve_with(s, Weights::balanced(), &mut reused).unwrap());
        }

        for (s, reused_out) in [&big, &small, &mid].into_iter().zip(&seq) {
            let fresh =
                opt.solve_with(s, Weights::balanced(), &mut SolverWorkspace::new()).unwrap();
            assert_eq!(&fresh, reused_out, "workspace reuse changed the result");
            // And the plain (workspace-less) entry point agrees too.
            let plain = opt.solve(s, Weights::balanced()).unwrap();
            assert_eq!(&plain, reused_out);
        }

        // Same for the deadline-constrained path.
        let mut reused = SolverWorkspace::with_capacity(10);
        let d_big = opt.solve_with_deadline_in(&big, 150.0, &mut reused).unwrap();
        let d_small = opt.solve_with_deadline_in(&small, 150.0, &mut reused).unwrap();
        assert_eq!(d_big, opt.solve_with_deadline(&big, 150.0).unwrap());
        assert_eq!(d_small, opt.solve_with_deadline(&small, 150.0).unwrap());
    }
}
