//! Error type shared by every numerical routine in this crate.

use std::fmt;

/// Errors produced by the numerical routines in [`crate`].
///
/// Every variant carries enough context to identify which routine failed and why; the
/// `Display` messages are lowercase and concise per Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// The caller supplied an interval `[lo, hi]` with `lo > hi`, or a NaN endpoint.
    InvalidInterval {
        /// Lower endpoint supplied by the caller.
        lo: f64,
        /// Upper endpoint supplied by the caller.
        hi: f64,
    },
    /// A bracketing routine was given endpoints whose function values do not straddle zero.
    NoSignChange {
        /// Function value at the lower endpoint.
        f_lo: f64,
        /// Function value at the upper endpoint.
        f_hi: f64,
    },
    /// The iteration budget was exhausted before reaching the requested tolerance.
    MaxIterations {
        /// Number of iterations performed.
        iterations: usize,
        /// Best residual or interval width achieved when the budget ran out.
        residual: f64,
    },
    /// A function evaluation returned NaN or an infinite value.
    NonFiniteValue {
        /// The argument at which the non-finite value was produced.
        at: f64,
    },
    /// An argument was outside the mathematical domain of the routine
    /// (for example Lambert W below `-1/e`).
    DomainError {
        /// The offending argument.
        value: f64,
        /// Human-readable description of the required domain.
        expected: &'static str,
    },
    /// A vector argument had the wrong length or was empty.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval [{lo}, {hi}]")
            }
            NumError::NoSignChange { f_lo, f_hi } => {
                write!(f, "no sign change over bracket (f(lo)={f_lo}, f(hi)={f_hi})")
            }
            NumError::MaxIterations { iterations, residual } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual:e})")
            }
            NumError::NonFiniteValue { at } => {
                write!(f, "function returned a non-finite value at {at}")
            }
            NumError::DomainError { value, expected } => {
                write!(f, "argument {value} outside domain ({expected})")
            }
            NumError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = vec![
            NumError::InvalidInterval { lo: 1.0, hi: 0.0 },
            NumError::NoSignChange { f_lo: 1.0, f_hi: 2.0 },
            NumError::MaxIterations { iterations: 10, residual: 0.5 },
            NumError::NonFiniteValue { at: 3.0 },
            NumError::DomainError { value: -1.0, expected: "x >= -1/e" },
            NumError::DimensionMismatch { expected: 3, actual: 2 },
            NumError::NonPositiveParameter { name: "kappa", value: 0.0 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(NumError::NonFiniteValue { at: 0.0 });
        assert!(e.to_string().contains("non-finite"));
    }
}
