//! Brute-force grid search.
//!
//! Only used by tests and cross-validation helpers: the KKT-based solvers in `fedopt-core`
//! are checked against exhaustive grids on small instances, which is how we substitute for
//! the "compare against CVX" sanity check the authors had available.

use crate::error::NumError;

/// Result of a grid search.
#[derive(Debug, Clone, PartialEq)]
pub struct GridMinimum {
    /// Coordinates of the best grid point.
    pub argmin: Vec<f64>,
    /// Objective at the best grid point.
    pub value: f64,
    /// Total number of grid points evaluated.
    pub evaluations: usize,
}

/// Minimizes `f` over the Cartesian product of `axes` (each axis a list of sample points).
///
/// Points where `f` returns NaN/∞ are skipped, which lets callers encode constraints by
/// returning `f64::INFINITY` for infeasible points.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if `axes` is empty or any axis is empty.
/// * [`NumError::MaxIterations`] if every grid point was infeasible (value = ∞ / NaN).
pub fn grid_min<F>(axes: &[Vec<f64>], mut f: F) -> Result<GridMinimum, NumError>
where
    F: FnMut(&[f64]) -> f64,
{
    if axes.is_empty() || axes.iter().any(|a| a.is_empty()) {
        return Err(NumError::DimensionMismatch { expected: 1, actual: 0 });
    }
    let dims = axes.len();
    let mut idx = vec![0usize; dims];
    let mut point = vec![0.0; dims];
    let mut best_value = f64::INFINITY;
    let mut best_point: Option<Vec<f64>> = None;
    let mut evals = 0usize;

    loop {
        for (d, &i) in idx.iter().enumerate() {
            point[d] = axes[d][i];
        }
        let v = f(&point);
        evals += 1;
        if v.is_finite() && v < best_value {
            best_value = v;
            best_point = Some(point.clone());
        }

        // Odometer increment.
        let mut d = 0;
        loop {
            idx[d] += 1;
            if idx[d] < axes[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
            if d == dims {
                return match best_point {
                    Some(argmin) => {
                        Ok(GridMinimum { argmin, value: best_value, evaluations: evals })
                    }
                    None => {
                        Err(NumError::MaxIterations { iterations: evals, residual: f64::INFINITY })
                    }
                };
            }
        }
    }
}

/// Builds `count` evenly spaced samples covering `[lo, hi]` inclusive.
///
/// # Errors
///
/// * [`NumError::InvalidInterval`] if `lo > hi` or an endpoint is not finite.
/// * [`NumError::NonPositiveParameter`] if `count == 0`.
pub fn linspace(lo: f64, hi: f64, count: usize) -> Result<Vec<f64>, NumError> {
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(NumError::InvalidInterval { lo, hi });
    }
    if count == 0 {
        return Err(NumError::NonPositiveParameter { name: "count", value: 0.0 });
    }
    if count == 1 {
        return Ok(vec![0.5 * (lo + hi)]);
    }
    let step = (hi - lo) / (count as f64 - 1.0);
    Ok((0..count).map(|i| lo + step * i as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 1.0, 5).unwrap();
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(2.0, 4.0, 1).unwrap(), vec![3.0]);
        assert!(linspace(1.0, 0.0, 3).is_err());
        assert!(linspace(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn grid_finds_quadratic_minimum() {
        let axes = vec![linspace(-2.0, 2.0, 41).unwrap(), linspace(-2.0, 2.0, 41).unwrap()];
        let out = grid_min(&axes, |p| (p[0] - 1.0).powi(2) + (p[1] + 0.5).powi(2)).unwrap();
        assert!((out.argmin[0] - 1.0).abs() < 0.11);
        assert!((out.argmin[1] + 0.5).abs() < 0.11);
        assert_eq!(out.evaluations, 41 * 41);
    }

    #[test]
    fn grid_respects_infeasible_points() {
        let axes = vec![linspace(0.0, 1.0, 11).unwrap()];
        let out = grid_min(&axes, |p| if p[0] < 0.55 { f64::INFINITY } else { p[0] }).unwrap();
        assert!((out.argmin[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn grid_all_infeasible_is_error() {
        let axes = vec![linspace(0.0, 1.0, 3).unwrap()];
        assert!(matches!(grid_min(&axes, |_p| f64::INFINITY), Err(NumError::MaxIterations { .. })));
    }

    #[test]
    fn grid_rejects_empty_axes() {
        assert!(grid_min(&[], |_p| 0.0).is_err());
        assert!(grid_min(&[vec![]], |_p| 0.0).is_err());
    }
}
