//! Principal branch `W₀` of the Lambert W function.
//!
//! Equation (A.4) of the paper expresses the per-device rate-constraint multiplier as
//! `τ_n = (μ − j_n) ln 2 / W((μ − j_n) / (e·j_n)) − ν_n β_n`, so the inner KKT solver of
//! Subproblem 2 needs `W₀` on `[-1/e, ∞)`. We implement it with a high-quality initial guess
//! followed by Halley iterations, which converges to machine precision in a handful of steps
//! over the whole domain.

use crate::error::NumError;

/// `1/e`, the left edge of the domain of the principal branch.
pub const NEG_INV_E: f64 = -0.367_879_441_171_442_33;

/// Computes the principal branch `W₀(x)` of the Lambert W function, i.e. the solution
/// `w ≥ −1` of `w·e^w = x`, for `x ≥ −1/e`.
///
/// Accuracy is close to machine precision (the tests require `|W e^W − x| ≤ 1e−12·max(1,|x|)`).
///
/// # Errors
///
/// * [`NumError::DomainError`] if `x < −1/e` (allowing for a tiny numerical slack of `1e−12`
///   below the edge, which is clamped to the edge) or `x` is NaN.
///
/// # Examples
///
/// ```rust
/// # use numopt::lambertw::lambert_w0;
/// let w = lambert_w0(1.0)?;                 // Ω constant
/// assert!((w - 0.5671432904097838).abs() < 1e-12);
/// assert!((lambert_w0(0.0)?).abs() < 1e-15);
/// # Ok::<(), numopt::NumError>(())
/// ```
pub fn lambert_w0(x: f64) -> Result<f64, NumError> {
    if x.is_nan() {
        return Err(NumError::DomainError { value: x, expected: "x >= -1/e" });
    }
    if x < NEG_INV_E {
        // Tolerate round-off just below the edge; reject anything materially outside.
        if x > NEG_INV_E - 1e-12 {
            return Ok(-1.0);
        }
        return Err(NumError::DomainError { value: x, expected: "x >= -1/e" });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x.is_infinite() {
        return Ok(f64::INFINITY);
    }

    // Initial guess.
    let mut w = if x < -0.25 {
        // Near the branch point use the series in p = sqrt(2(ex + 1)).
        let p = (2.0 * (std::f64::consts::E * x + 1.0)).max(0.0).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0
    } else if x < 10.0 {
        // ln(1+x) is within ~15% of W0 on this range — plenty for Halley to converge.
        x.ln_1p() * (1.0 - x.ln_1p() / (2.0 + 2.0 * x.ln_1p()))
    } else {
        // Asymptotic expansion for large x (safe: ln(x) > 2 here).
        let l1 = x.ln();
        let l2 = l1.ln();
        l1 - l2 + l2 / l1
    };

    // Halley iterations.
    for _ in 0..50 {
        let ew = w.exp();
        let wew = w * ew;
        let diff = wew - x;
        if diff.abs() <= 1e-14 * x.abs().max(1.0) {
            return Ok(w);
        }
        let wp1 = w + 1.0;
        let delta = diff / (ew * wp1 - (w + 2.0) * diff / (2.0 * wp1));
        w -= delta;
        if !w.is_finite() {
            return Err(NumError::NonFiniteValue { at: x });
        }
    }
    // Accept whatever precision we reached if it is reasonable; otherwise report failure.
    let resid = (w * w.exp() - x).abs();
    if resid <= 1e-9 * x.abs().max(1.0) {
        Ok(w)
    } else {
        Err(NumError::MaxIterations { iterations: 50, residual: resid })
    }
}

/// Evaluates the expression `y / W₀(y / (e·j))` that appears in equation (A.4) of the paper,
/// with the removable singularity at `y = 0` filled in by its limit `e·j`.
///
/// Here `y = μ − j_n` and `j = j_n = ν_n d_n N₀ / g_n > 0`. For `y → 0` the ratio
/// `y / W₀(y/(e·j)) → e·j` because `W₀(z) ≈ z` near zero.
///
/// # Errors
///
/// * [`NumError::NonPositiveParameter`] if `j ≤ 0`.
/// * Propagates [`NumError::DomainError`] from [`lambert_w0`] (cannot occur for `y ≥ −j`,
///   i.e. `μ ≥ 0`, which the callers guarantee).
pub fn ratio_over_w0(y: f64, j: f64) -> Result<f64, NumError> {
    if j <= 0.0 || !j.is_finite() {
        return Err(NumError::NonPositiveParameter { name: "j", value: j });
    }
    let arg = y / (std::f64::consts::E * j);
    // Removable singularity at y = 0 (W0(0) = 0).
    if y.abs() < 1e-300 || arg.abs() < 1e-16 {
        return Ok(std::f64::consts::E * j);
    }
    let w = lambert_w0(arg)?;
    if w == 0.0 {
        return Ok(std::f64::consts::E * j);
    }
    Ok(y / w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_inverse(x: f64) {
        let w = lambert_w0(x).unwrap();
        let back = w * w.exp();
        assert!(
            (back - x).abs() <= 1e-12 * x.abs().max(1.0),
            "W0 inverse identity failed at x={x}: w={w}, w e^w={back}"
        );
    }

    #[test]
    fn known_values() {
        assert!((lambert_w0(std::f64::consts::E).unwrap() - 1.0).abs() < 1e-13);
        assert!((lambert_w0(0.0).unwrap()).abs() < 1e-15);
        assert!((lambert_w0(1.0).unwrap() - 0.567_143_290_409_783_8).abs() < 1e-12);
        // W0(-1/e) = -1.
        assert!((lambert_w0(NEG_INV_E).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn inverse_identity_over_wide_range() {
        for &x in &[
            -0.367, -0.3, -0.2, -0.1, -0.01, -1e-6, 1e-9, 1e-3, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0,
            1e4, 1e8, 1e15,
        ] {
            check_inverse(x);
        }
    }

    #[test]
    fn rejects_out_of_domain() {
        assert!(matches!(lambert_w0(-1.0), Err(NumError::DomainError { .. })));
        assert!(matches!(lambert_w0(f64::NAN), Err(NumError::DomainError { .. })));
    }

    #[test]
    fn slightly_below_edge_clamps() {
        let w = lambert_w0(NEG_INV_E - 1e-15).unwrap();
        assert!((w + 1.0).abs() < 1e-6);
    }

    #[test]
    fn infinity_maps_to_infinity() {
        assert_eq!(lambert_w0(f64::INFINITY).unwrap(), f64::INFINITY);
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = lambert_w0(-0.36).unwrap();
        let mut x = -0.35;
        while x < 50.0 {
            let w = lambert_w0(x).unwrap();
            assert!(w >= prev - 1e-12, "W0 not monotone at {x}");
            prev = w;
            x += 0.37;
        }
    }

    #[test]
    fn ratio_limit_at_zero() {
        let j = 2.5;
        let lim = ratio_over_w0(0.0, j).unwrap();
        assert!((lim - std::f64::consts::E * j).abs() < 1e-12);
        // Continuity: tiny y gives nearly the same value.
        let near = ratio_over_w0(1e-12, j).unwrap();
        assert!((near - lim).abs() / lim < 1e-6);
    }

    #[test]
    fn ratio_rejects_nonpositive_j() {
        assert!(matches!(ratio_over_w0(1.0, 0.0), Err(NumError::NonPositiveParameter { .. })));
        assert!(matches!(ratio_over_w0(1.0, -3.0), Err(NumError::NonPositiveParameter { .. })));
    }

    #[test]
    fn ratio_positive_for_negative_y_above_minus_j() {
        // y in (-j, 0): argument in (-1/e, 0), W0 in (-1, 0), ratio positive.
        let j = 1.0;
        for &y in &[-0.9, -0.5, -0.1, -0.001] {
            let r = ratio_over_w0(y, j).unwrap();
            assert!(r > 0.0, "ratio should be positive for y={y}");
        }
    }
}
