//! Generic sum-of-ratios (fractional programming) solver.
//!
//! Subproblem 2 of the paper,
//! `min Σ_n w·p_n d_n / G_n(p_n, B_n)`, is a *sum-of-ratios* problem — NP-hard in general but
//! tractable here because every numerator is convex, every denominator is concave and
//! positive, and the feasible set is convex. The paper (following Y. Jong, *"An efficient
//! global optimization algorithm for nonlinear sum-of-ratios problem"*, 2012) converts it to a
//! parametric subtractive form and drives the parameters `(β, ν)` to a fixed point with a
//! damped Newton step (the paper's Algorithm 1, equations (24)–(31)).
//!
//! This module implements that outer loop generically: the caller supplies the numerators,
//! denominators and a solver for the parametric subproblem
//! `min_x Σ_i ν_i (n_i(x) − β_i d_i(x))`, and [`solve_sum_of_ratios`] handles the Newton-like
//! updates, the damping line search (29), and convergence bookkeeping.

use crate::error::NumError;

/// A sum-of-ratios minimization problem `min_x Σ_i w_i · n_i(x) / d_i(x)` over a convex set.
///
/// Implementors must guarantee, for every feasible `x` they ever return from
/// [`FractionalProblem::solve_parametric`]:
///
/// * `d_i(x) > 0` (denominators strictly positive),
/// * numerators and denominators finite.
pub trait FractionalProblem {
    /// Decision-variable type (e.g. a vector of per-device `(p, B)` pairs).
    type Point: Clone;

    /// Number of ratios `i = 0..len`.
    fn len(&self) -> usize;

    /// Returns `true` if the problem has no ratios.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Constant weight `w_i` multiplying ratio `i` in the objective.
    fn ratio_weight(&self, i: usize) -> f64;

    /// Numerator `n_i(x)` (convex in `x`).
    fn numerator(&self, i: usize, x: &Self::Point) -> f64;

    /// Denominator `d_i(x)` (concave and strictly positive in `x`).
    fn denominator(&self, i: usize, x: &Self::Point) -> f64;

    /// Solves the parametric (subtractive-form) subproblem
    /// `min_x Σ_i ν_i (n_i(x) − β_i d_i(x))` over the feasible set and returns the minimizer.
    ///
    /// # Errors
    ///
    /// Implementations should return an error if the subproblem is infeasible or the inner
    /// solver fails; the outer loop aborts with that error.
    fn solve_parametric(&self, nu: &[f64], beta: &[f64]) -> Result<Self::Point, NumError>;

    /// [`Self::solve_parametric`] into a caller-owned point, so the outer loop can
    /// double-buffer two points instead of allocating one per iteration.
    ///
    /// `out` may hold an arbitrary (even wrongly-sized) previous point on entry;
    /// implementations must overwrite it completely. The default forwards to
    /// [`Self::solve_parametric`] and assigns — correct for every implementor, but it
    /// allocates; hot problems (e.g. `fedopt-core`'s `Sp2Problem`) override it with a
    /// genuinely in-place solve.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve_parametric`].
    fn solve_parametric_into(
        &self,
        nu: &[f64],
        beta: &[f64],
        out: &mut Self::Point,
    ) -> Result<(), NumError> {
        *out = self.solve_parametric(nu, beta)?;
        Ok(())
    }
}

/// Configuration of the Newton-like outer loop (the paper's Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JongConfig {
    /// Damping base `ξ ∈ (0,1)` of the line search (29).
    pub xi: f64,
    /// Sufficient-decrease constant `ε ∈ (0,1)` of the line search (29).
    pub epsilon: f64,
    /// Maximum outer iterations `i₀`.
    pub max_iter: usize,
    /// Terminate when `‖ϕ(β,ν)‖∞` falls below this tolerance.
    pub phi_tol: f64,
    /// Maximum exponent `j` tried by the damping line search before accepting the last trial.
    pub max_damping: usize,
}

impl Default for JongConfig {
    fn default() -> Self {
        Self { xi: 0.5, epsilon: 0.01, max_iter: 60, phi_tol: 1e-9, max_damping: 40 }
    }
}

/// Reusable buffers of the Newton-like outer loop: the multipliers `(β, ν)`, their
/// full-Newton targets, the damping-line-search trials, and the objective history.
///
/// Every field is pure scratch for [`solve_sum_of_ratios_in`]: cleared or fully overwritten
/// on entry, never read across calls, resized to the problem at hand — one instance can
/// serve problems of different sizes back to back and only `Vec` capacity survives. After a
/// successful solve, [`JongScratch::beta`] / [`JongScratch::nu`] hold the final multipliers
/// and [`JongScratch::history`] the per-iteration objectives (the data
/// [`FractionalSolution`] clones out in the allocating wrapper).
#[derive(Debug, Clone, Default)]
pub struct JongScratch {
    /// Final auxiliary ratio values `β_i = n_i / d_i` (output of the last solve).
    pub beta: Vec<f64>,
    /// Final multipliers `ν_i = w_i / d_i` (output of the last solve).
    pub nu: Vec<f64>,
    /// Objective value after every outer iteration of the last solve.
    pub history: Vec<f64>,
    beta_target: Vec<f64>,
    nu_target: Vec<f64>,
    trial_beta: Vec<f64>,
    trial_nu: Vec<f64>,
}

/// The scalar outcome of [`solve_sum_of_ratios_in`] (the point lands in the caller's
/// buffer, the multipliers and history in the [`JongScratch`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionalSummary {
    /// Objective value `Σ_i w_i n_i / d_i` at the final point.
    pub objective: f64,
    /// `‖ϕ(β,ν)‖∞` at termination — the Newton residual of the optimality system (22)–(23).
    pub residual: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was reached.
    pub converged: bool,
}

/// Outcome of [`solve_sum_of_ratios`].
#[derive(Debug, Clone)]
pub struct FractionalSolution<P> {
    /// Final decision variables.
    pub point: P,
    /// Final auxiliary ratio values `β_i = n_i / d_i`.
    pub beta: Vec<f64>,
    /// Final multipliers `ν_i = w_i / d_i`.
    pub nu: Vec<f64>,
    /// Objective value `Σ_i w_i n_i / d_i` at [`FractionalSolution::point`].
    pub objective: f64,
    /// `‖ϕ(β,ν)‖∞` at termination — the Newton residual of the optimality system (22)–(23).
    pub residual: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was reached.
    pub converged: bool,
    /// Objective value after every outer iteration (useful for convergence plots/tests).
    pub history: Vec<f64>,
}

fn phi_inf_norm<P, F>(problem: &F, x: &P, beta: &[f64], nu: &[f64]) -> f64
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    // The components of ϕ carry the physical units of the numerators/weights, which in the
    // paper's Subproblem 2 differ by many orders of magnitude from 1. Normalizing each
    // component makes `phi_tol` a relative tolerance and keeps the stopping rule meaningful
    // across problem scales.
    let mut norm: f64 = 0.0;
    for i in 0..problem.len() {
        let n = problem.numerator(i, x);
        let d = problem.denominator(i, x);
        let w = problem.ratio_weight(i);
        let phi1 = (-n + beta[i] * d) / n.abs().max(1e-300);
        let phi2 = (-w + nu[i] * d) / w.abs().max(1e-300);
        norm = norm.max(phi1.abs()).max(phi2.abs());
    }
    norm
}

fn objective_value<P, F>(problem: &F, x: &P) -> f64
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    (0..problem.len())
        .map(|i| problem.ratio_weight(i) * problem.numerator(i, x) / problem.denominator(i, x))
        .sum()
}

/// Runs the damped Newton-like algorithm of Jong (the paper's Algorithm 1) starting from a
/// feasible point `x0`.
///
/// Each outer iteration:
///
/// 1. sets `ν_i = w_i / d_i(x)` and `β_i = n_i(x) / d_i(x)` (step 3 of Algorithm 1),
/// 2. solves the parametric subproblem for a new `x` (step 4),
/// 3. takes the damped Newton step (29)–(31) on `(β, ν)`, which — because the Jacobian of `ϕ`
///    is `diag(d_i)` — reduces to moving `(β, ν)` a fraction `ξ^j` of the way toward
///    `(n_i/d_i, w_i/d_i)` evaluated at the new `x`.
///
/// The loop stops when `‖ϕ‖∞ ≤ phi_tol` or after `max_iter` iterations.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if the problem has zero ratios.
/// * [`NumError::NonPositiveParameter`] if a denominator is not strictly positive at any
///   iterate, or the configuration constants are outside `(0,1)`.
/// * Errors returned by [`FractionalProblem::solve_parametric`] are propagated.
pub fn solve_sum_of_ratios<P, F>(
    problem: &F,
    x0: P,
    config: JongConfig,
) -> Result<FractionalSolution<P>, NumError>
where
    P: Clone,
    F: FractionalProblem<Point = P> + ?Sized,
{
    let mut x = x0;
    let mut spare = x.clone();
    let mut scratch = JongScratch::default();
    let summary = solve_sum_of_ratios_in(problem, &mut x, &mut spare, config, &mut scratch)?;
    Ok(FractionalSolution {
        objective: summary.objective,
        point: x,
        beta: scratch.beta,
        nu: scratch.nu,
        residual: summary.residual,
        iterations: summary.iterations,
        converged: summary.converged,
        history: scratch.history,
    })
}

/// [`solve_sum_of_ratios`] against caller-owned buffers — the allocation-free form.
///
/// `x` holds the feasible starting point on entry and the final point on return; `spare` is
/// a second point buffer of the same type (its contents are irrelevant — each
/// [`FractionalProblem::solve_parametric_into`] call overwrites it completely) that the
/// loop double-buffers against `x`, so no point is ever allocated. All `(β, ν)` vectors and
/// the objective history live in the [`JongScratch`]; with a problem that overrides
/// `solve_parametric_into` in-place, the whole outer loop performs zero heap allocations in
/// steady state. Results are bit-identical to [`solve_sum_of_ratios`] — same arithmetic,
/// same order.
///
/// # Errors
///
/// Same as [`solve_sum_of_ratios`].
pub fn solve_sum_of_ratios_in<P, F>(
    problem: &F,
    x: &mut P,
    spare: &mut P,
    config: JongConfig,
    scratch: &mut JongScratch,
) -> Result<FractionalSummary, NumError>
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    let n_ratios = problem.len();
    if n_ratios == 0 {
        return Err(NumError::DimensionMismatch { expected: 1, actual: 0 });
    }
    if !(config.xi > 0.0 && config.xi < 1.0) {
        return Err(NumError::NonPositiveParameter { name: "xi", value: config.xi });
    }
    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
        return Err(NumError::NonPositiveParameter { name: "epsilon", value: config.epsilon });
    }

    let JongScratch { beta, nu, history, beta_target, nu_target, trial_beta, trial_nu } = scratch;
    for buf in
        [&mut *beta, &mut *nu, &mut *beta_target, &mut *nu_target, &mut *trial_beta, &mut *trial_nu]
    {
        buf.clear();
        buf.resize(n_ratios, 0.0);
    }
    // Initialize (β, ν) from the starting point.
    for i in 0..n_ratios {
        let d = problem.denominator(i, x);
        if d <= 0.0 || !d.is_finite() {
            return Err(NumError::NonPositiveParameter { name: "denominator", value: d });
        }
        beta[i] = problem.numerator(i, x) / d;
        nu[i] = problem.ratio_weight(i) / d;
    }

    history.clear();
    history.reserve(config.max_iter + 1);
    history.push(objective_value(problem, x));

    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..config.max_iter {
        iterations = it + 1;

        // Step 4: solve the parametric subproblem at the current (β, ν), double-buffering
        // the point instead of allocating a fresh one.
        problem.solve_parametric_into(nu, beta, spare)?;
        std::mem::swap(x, spare);
        history.push(objective_value(problem, x));

        // Convergence check: ϕ(β, ν) evaluated at the *response* x(β, ν). At the fixed point
        // the parametric solution reproduces the ratios that generated it — exactly the
        // optimality system (22)–(23) of Theorem 1.
        residual = phi_inf_norm(problem, x, beta, nu);
        if residual <= config.phi_tol {
            converged = true;
            break;
        }

        // Full-Newton targets at the response point: β_i → n_i(x)/d_i(x), ν_i → w_i/d_i(x).
        for i in 0..n_ratios {
            let d = problem.denominator(i, x);
            if d <= 0.0 || !d.is_finite() {
                return Err(NumError::NonPositiveParameter { name: "denominator", value: d });
            }
            beta_target[i] = problem.numerator(i, x) / d;
            nu_target[i] = problem.ratio_weight(i) / d;
        }

        // Steps 5–6: damped Newton update of (β, ν) with the Armijo-like rule (29). Because ϕ
        // is linear in (β, ν) at fixed x and the Jacobian diag(d_i) is exact, the full step
        // (j = 0) always satisfies the rule; the loop is kept for fidelity to Algorithm 1 and
        // as a safety net against inexact inner solutions. Every trial entry is rewritten
        // before it is read, so the trial buffers need no per-iteration reset.
        let phi_now = residual;
        let mut step = 1.0;
        for _j in 0..=config.max_damping {
            for i in 0..n_ratios {
                trial_beta[i] = beta[i] + step * (beta_target[i] - beta[i]);
                trial_nu[i] = nu[i] + step * (nu_target[i] - nu[i]);
            }
            let phi_trial = phi_inf_norm(problem, x, trial_beta, trial_nu);
            if phi_trial <= (1.0 - config.epsilon * step) * phi_now || phi_now == 0.0 {
                break;
            }
            step *= config.xi;
        }
        beta.copy_from_slice(trial_beta);
        nu.copy_from_slice(trial_nu);
    }

    Ok(FractionalSummary {
        objective: objective_value(problem, x),
        residual,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy sum-of-ratios problem with a known solution:
    /// minimize (x+1)/x + (x-3)^2/1 over x in [0.5, 5].
    /// Single variable, two ratios. The second "ratio" has denominator 1 so this is really
    /// min (x+1)/x + (x-3)^2, a convex problem whose optimum we can verify by grid search.
    struct Toy;

    impl FractionalProblem for Toy {
        type Point = f64;

        fn len(&self) -> usize {
            2
        }
        fn ratio_weight(&self, _i: usize) -> f64 {
            1.0
        }
        fn numerator(&self, i: usize, x: &f64) -> f64 {
            match i {
                0 => x + 1.0,
                _ => (x - 3.0) * (x - 3.0),
            }
        }
        fn denominator(&self, i: usize, x: &f64) -> f64 {
            match i {
                0 => *x,
                _ => 1.0,
            }
        }
        fn solve_parametric(&self, nu: &[f64], beta: &[f64]) -> Result<f64, NumError> {
            // min over x of nu0*((x+1) - beta0*x) + nu1*((x-3)^2 - beta1)
            // => derivative: nu0*(1-beta0) + 2*nu1*(x-3) = 0
            let x = 3.0 - nu[0] * (1.0 - beta[0]) / (2.0 * nu[1]);
            Ok(x.clamp(0.5, 5.0))
        }
    }

    #[test]
    fn toy_problem_matches_grid_search() {
        let sol = solve_sum_of_ratios(&Toy, 1.0, JongConfig::default()).unwrap();
        assert!(sol.converged, "residual {}", sol.residual);

        // Grid-search reference.
        let axes = vec![crate::grid::linspace(0.5, 5.0, 20_001).unwrap()];
        let reference = crate::grid::grid_min(&axes, |p| {
            let x = p[0];
            (x + 1.0) / x + (x - 3.0) * (x - 3.0)
        })
        .unwrap();
        assert!(
            (sol.objective - reference.value).abs() < 1e-4,
            "jong {} vs grid {}",
            sol.objective,
            reference.value
        );
        assert!((sol.point - reference.argmin[0]).abs() < 1e-2);
    }

    #[test]
    fn optimality_system_holds_at_fixed_point() {
        let sol = solve_sum_of_ratios(&Toy, 4.0, JongConfig::default()).unwrap();
        // (22)–(23): nu_i = w_i / d_i(x*), beta_i = n_i(x*) / d_i(x*).
        for i in 0..2 {
            let d = Toy.denominator(i, &sol.point);
            let n = Toy.numerator(i, &sol.point);
            assert!((sol.nu[i] - 1.0 / d).abs() < 1e-6);
            assert!((sol.beta[i] - n / d).abs() < 1e-6);
        }
    }

    #[test]
    fn history_is_recorded_and_mostly_decreasing() {
        let sol = solve_sum_of_ratios(&Toy, 5.0, JongConfig::default()).unwrap();
        assert!(sol.history.len() >= 2);
        assert!(sol.history.last().unwrap() <= sol.history.first().unwrap());
    }

    #[test]
    fn in_place_driver_matches_allocating_wrapper_bitwise() {
        let config = JongConfig::default();
        let sol = solve_sum_of_ratios(&Toy, 5.0, config).unwrap();

        let mut x = 5.0;
        let mut spare = 0.0; // arbitrary garbage; overwritten by the first parametric solve
        let mut scratch = JongScratch::default();
        let s1 = solve_sum_of_ratios_in(&Toy, &mut x, &mut spare, config, &mut scratch).unwrap();
        assert_eq!(x, sol.point);
        assert_eq!(s1.objective, sol.objective);
        assert_eq!(s1.residual, sol.residual);
        assert_eq!(s1.iterations, sol.iterations);
        assert_eq!(s1.converged, sol.converged);
        assert_eq!(scratch.beta, sol.beta);
        assert_eq!(scratch.nu, sol.nu);
        assert_eq!(scratch.history, sol.history);

        // A dirtied, reused scratch must reproduce the run bit for bit (the reuse contract).
        let mut x2 = 5.0;
        let mut spare2 = -7.0;
        let s2 = solve_sum_of_ratios_in(&Toy, &mut x2, &mut spare2, config, &mut scratch).unwrap();
        assert_eq!(x2, x);
        assert_eq!(s2, s1);
    }

    #[test]
    fn rejects_empty_problem() {
        struct Empty;
        impl FractionalProblem for Empty {
            type Point = f64;
            fn len(&self) -> usize {
                0
            }
            fn ratio_weight(&self, _: usize) -> f64 {
                1.0
            }
            fn numerator(&self, _: usize, _: &f64) -> f64 {
                0.0
            }
            fn denominator(&self, _: usize, _: &f64) -> f64 {
                1.0
            }
            fn solve_parametric(&self, _: &[f64], _: &[f64]) -> Result<f64, NumError> {
                Ok(0.0)
            }
        }
        assert!(matches!(
            solve_sum_of_ratios(&Empty, 0.0, JongConfig::default()),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_config() {
        let bad_xi = JongConfig { xi: 1.5, ..Default::default() };
        assert!(solve_sum_of_ratios(&Toy, 1.0, bad_xi).is_err());
        let bad_eps = JongConfig { epsilon: 0.0, ..Default::default() };
        assert!(solve_sum_of_ratios(&Toy, 1.0, bad_eps).is_err());
    }

    #[test]
    fn rejects_nonpositive_denominator_start() {
        struct BadDen;
        impl FractionalProblem for BadDen {
            type Point = f64;
            fn len(&self) -> usize {
                1
            }
            fn ratio_weight(&self, _: usize) -> f64 {
                1.0
            }
            fn numerator(&self, _: usize, x: &f64) -> f64 {
                *x
            }
            fn denominator(&self, _: usize, _x: &f64) -> f64 {
                0.0
            }
            fn solve_parametric(&self, _: &[f64], _: &[f64]) -> Result<f64, NumError> {
                Ok(1.0)
            }
        }
        assert!(matches!(
            solve_sum_of_ratios(&BadDen, 1.0, JongConfig::default()),
            Err(NumError::NonPositiveParameter { .. })
        ));
    }
}
