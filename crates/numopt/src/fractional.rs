//! Generic sum-of-ratios (fractional programming) solver.
//!
//! Subproblem 2 of the paper,
//! `min Σ_n w·p_n d_n / G_n(p_n, B_n)`, is a *sum-of-ratios* problem — NP-hard in general but
//! tractable here because every numerator is convex, every denominator is concave and
//! positive, and the feasible set is convex. The paper (following Y. Jong, *"An efficient
//! global optimization algorithm for nonlinear sum-of-ratios problem"*, 2012) converts it to a
//! parametric subtractive form and drives the parameters `(β, ν)` to a fixed point with a
//! damped Newton step (the paper's Algorithm 1, equations (24)–(31)).
//!
//! This module implements that outer loop generically: the caller supplies the numerators,
//! denominators and a solver for the parametric subproblem
//! `min_x Σ_i ν_i (n_i(x) − β_i d_i(x))`, and [`solve_sum_of_ratios`] handles the Newton-like
//! updates, the damping line search (29), and convergence bookkeeping.

use crate::error::NumError;

/// A sum-of-ratios minimization problem `min_x Σ_i w_i · n_i(x) / d_i(x)` over a convex set.
///
/// Implementors must guarantee, for every feasible `x` they ever return from
/// [`FractionalProblem::solve_parametric`]:
///
/// * `d_i(x) > 0` (denominators strictly positive),
/// * numerators and denominators finite.
pub trait FractionalProblem {
    /// Decision-variable type (e.g. a vector of per-device `(p, B)` pairs).
    type Point: Clone;

    /// Number of ratios `i = 0..len`.
    fn len(&self) -> usize;

    /// Returns `true` if the problem has no ratios.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Constant weight `w_i` multiplying ratio `i` in the objective.
    fn ratio_weight(&self, i: usize) -> f64;

    /// Numerator `n_i(x)` (convex in `x`).
    fn numerator(&self, i: usize, x: &Self::Point) -> f64;

    /// Denominator `d_i(x)` (concave and strictly positive in `x`).
    fn denominator(&self, i: usize, x: &Self::Point) -> f64;

    /// Solves the parametric (subtractive-form) subproblem
    /// `min_x Σ_i ν_i (n_i(x) − β_i d_i(x))` over the feasible set and returns the minimizer.
    ///
    /// # Errors
    ///
    /// Implementations should return an error if the subproblem is infeasible or the inner
    /// solver fails; the outer loop aborts with that error.
    fn solve_parametric(&self, nu: &[f64], beta: &[f64]) -> Result<Self::Point, NumError>;

    /// [`Self::solve_parametric`] into a caller-owned point, so the outer loop can
    /// double-buffer two points instead of allocating one per iteration.
    ///
    /// `out` may hold an arbitrary (even wrongly-sized) previous point on entry;
    /// implementations must overwrite it completely. The default forwards to
    /// [`Self::solve_parametric`] and assigns — correct for every implementor, but it
    /// allocates; hot problems (e.g. `fedopt-core`'s `Sp2Problem`) override it with a
    /// genuinely in-place solve.
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve_parametric`].
    fn solve_parametric_into(
        &self,
        nu: &[f64],
        beta: &[f64],
        out: &mut Self::Point,
    ) -> Result<(), NumError> {
        *out = self.solve_parametric(nu, beta)?;
        Ok(())
    }
}

/// Configuration of the Newton-like outer loop (the paper's Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JongConfig {
    /// Damping base `ξ ∈ (0,1)` of the line search (29).
    pub xi: f64,
    /// Sufficient-decrease constant `ε ∈ (0,1)` of the line search (29).
    pub epsilon: f64,
    /// Maximum outer iterations `i₀`.
    pub max_iter: usize,
    /// Terminate when `‖ϕ(β,ν)‖∞` falls below this tolerance.
    pub phi_tol: f64,
    /// Maximum exponent `j` tried by the damping line search before accepting the last trial.
    pub max_damping: usize,
}

impl Default for JongConfig {
    fn default() -> Self {
        Self { xi: 0.5, epsilon: 0.01, max_iter: 60, phi_tol: 1e-9, max_damping: 40 }
    }
}

/// Reusable buffers of the Newton-like outer loop: the multipliers `(β, ν)`, their
/// full-Newton targets, the damping-line-search trials, and the objective history.
///
/// Every field is pure scratch for [`solve_sum_of_ratios_in`]: cleared or fully overwritten
/// on entry, never read across calls, resized to the problem at hand — one instance can
/// serve problems of different sizes back to back and only `Vec` capacity survives. After a
/// successful solve, [`JongScratch::beta`] / [`JongScratch::nu`] hold the final multipliers
/// and [`JongScratch::history`] the per-iteration objectives (the data
/// [`FractionalSolution`] clones out in the allocating wrapper).
///
/// The one deliberate exception is the warm-start continuation
/// ([`solve_sum_of_ratios_warm_in`]): with a non-[`WarmMode::Cold`] mode the converged
/// `(β, ν)` of the *previous* solve seed the next one instead of being recomputed from the
/// starting point. The scratch tracks whether it holds such a valid seed;
/// [`JongScratch::invalidate_warm`] drops it (e.g. when the caller switches problems).
#[derive(Debug, Clone, Default)]
pub struct JongScratch {
    /// Final auxiliary ratio values `β_i = n_i / d_i` (output of the last solve).
    pub beta: Vec<f64>,
    /// Final multipliers `ν_i = w_i / d_i` (output of the last solve).
    pub nu: Vec<f64>,
    /// Objective value after every outer iteration of the last solve.
    pub history: Vec<f64>,
    beta_target: Vec<f64>,
    nu_target: Vec<f64>,
    trial_beta: Vec<f64>,
    trial_nu: Vec<f64>,
    /// `true` while `beta`/`nu` hold the final multipliers of a successful solve (set on
    /// success, cleared on entry and by [`JongScratch::invalidate_warm`]).
    warm_valid: bool,
}

impl JongScratch {
    /// Drops the carried `(β, ν)` warm seed: the next warm-mode solve cold-starts.
    pub fn invalidate_warm(&mut self) {
        self.warm_valid = false;
    }

    /// Whether the scratch holds a usable `(β, ν)` seed for an `n`-ratio problem.
    pub fn warm_available(&self, n: usize) -> bool {
        self.warm_valid && self.beta.len() == n && self.nu.len() == n
    }

    /// Re-anchors the carried `(β, ν)` at `x` (the cold-initialization formulas evaluated
    /// there) and marks the seed valid. Callers use this when they *replace* the loop's
    /// solution with a point of their own — `fedopt-core`'s reference polish — so the
    /// continuation stays consistent with the point the next solve will see staged. The
    /// seed is invalidated instead if any denominator is non-positive.
    pub fn reanchor<P, F>(&mut self, problem: &F, x: &P)
    where
        F: FractionalProblem<Point = P> + ?Sized,
    {
        let n = problem.len();
        self.beta.clear();
        self.beta.resize(n, 0.0);
        self.nu.clear();
        self.nu.resize(n, 0.0);
        for i in 0..n {
            let d = problem.denominator(i, x);
            if d <= 0.0 || !d.is_finite() {
                self.warm_valid = false;
                return;
            }
            self.beta[i] = problem.numerator(i, x) / d;
            self.nu[i] = problem.ratio_weight(i) / d;
        }
        self.warm_valid = true;
    }
}

/// How much state from the previous solve [`solve_sum_of_ratios_warm_in`] may reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmMode {
    /// Initialize `(β, ν)` from the starting point — the classic Algorithm-1 start. This is
    /// the reference path: [`solve_sum_of_ratios_in`] always runs it.
    Cold,
    /// Seed `(β, ν)` from the scratch's previous solve when
    /// [`JongScratch::warm_available`]; falls back to [`WarmMode::Cold`] otherwise. Safe
    /// whenever the problem *size* matches — stale multipliers only change the trajectory,
    /// never the fixed-point condition the loop converges to.
    Multipliers,
    /// [`WarmMode::Multipliers`], plus: return immediately (zero iterations, `converged`)
    /// when the carried multipliers already satisfy `‖ϕ‖∞ ≤ phi_tol` at the staged point.
    /// Only sound when the caller knows the parametric feasible set is unchanged since the
    /// solve that produced the carried multipliers — `ϕ` cannot see constraint drift
    /// (`fedopt-core`'s SP2 gates this on its rate floors being static).
    FastPath,
}

/// The scalar outcome of [`solve_sum_of_ratios_in`] (the point lands in the caller's
/// buffer, the multipliers and history in the [`JongScratch`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionalSummary {
    /// Objective value `Σ_i w_i n_i / d_i` at the final point.
    pub objective: f64,
    /// `‖ϕ(β,ν)‖∞` at termination — the Newton residual of the optimality system (22)–(23).
    pub residual: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was reached.
    pub converged: bool,
}

/// Outcome of [`solve_sum_of_ratios`].
#[derive(Debug, Clone)]
pub struct FractionalSolution<P> {
    /// Final decision variables.
    pub point: P,
    /// Final auxiliary ratio values `β_i = n_i / d_i`.
    pub beta: Vec<f64>,
    /// Final multipliers `ν_i = w_i / d_i`.
    pub nu: Vec<f64>,
    /// Objective value `Σ_i w_i n_i / d_i` at [`FractionalSolution::point`].
    pub objective: f64,
    /// `‖ϕ(β,ν)‖∞` at termination — the Newton residual of the optimality system (22)–(23).
    pub residual: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Whether the residual tolerance was reached.
    pub converged: bool,
    /// Objective value after every outer iteration (useful for convergence plots/tests).
    pub history: Vec<f64>,
}

fn phi_inf_norm<P, F>(problem: &F, x: &P, beta: &[f64], nu: &[f64]) -> f64
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    // The components of ϕ carry the physical units of the numerators/weights, which in the
    // paper's Subproblem 2 differ by many orders of magnitude from 1. Normalizing each
    // component makes `phi_tol` a relative tolerance and keeps the stopping rule meaningful
    // across problem scales.
    let mut norm: f64 = 0.0;
    for i in 0..problem.len() {
        let n = problem.numerator(i, x);
        let d = problem.denominator(i, x);
        let w = problem.ratio_weight(i);
        let phi1 = (-n + beta[i] * d) / n.abs().max(1e-300);
        let phi2 = (-w + nu[i] * d) / w.abs().max(1e-300);
        norm = norm.max(phi1.abs()).max(phi2.abs());
    }
    norm
}

fn objective_value<P, F>(problem: &F, x: &P) -> f64
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    (0..problem.len())
        .map(|i| problem.ratio_weight(i) * problem.numerator(i, x) / problem.denominator(i, x))
        .sum()
}

/// Runs the damped Newton-like algorithm of Jong (the paper's Algorithm 1) starting from a
/// feasible point `x0`.
///
/// Each outer iteration:
///
/// 1. sets `ν_i = w_i / d_i(x)` and `β_i = n_i(x) / d_i(x)` (step 3 of Algorithm 1),
/// 2. solves the parametric subproblem for a new `x` (step 4),
/// 3. takes the damped Newton step (29)–(31) on `(β, ν)`, which — because the Jacobian of `ϕ`
///    is `diag(d_i)` — reduces to moving `(β, ν)` a fraction `ξ^j` of the way toward
///    `(n_i/d_i, w_i/d_i)` evaluated at the new `x`.
///
/// The loop stops when `‖ϕ‖∞ ≤ phi_tol` or after `max_iter` iterations.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if the problem has zero ratios.
/// * [`NumError::NonPositiveParameter`] if a denominator is not strictly positive at any
///   iterate, or the configuration constants are outside `(0,1)`.
/// * Errors returned by [`FractionalProblem::solve_parametric`] are propagated.
pub fn solve_sum_of_ratios<P, F>(
    problem: &F,
    x0: P,
    config: JongConfig,
) -> Result<FractionalSolution<P>, NumError>
where
    P: Clone,
    F: FractionalProblem<Point = P> + ?Sized,
{
    let mut x = x0;
    let mut spare = x.clone();
    let mut scratch = JongScratch::default();
    let summary = solve_sum_of_ratios_in(problem, &mut x, &mut spare, config, &mut scratch)?;
    Ok(FractionalSolution {
        objective: summary.objective,
        point: x,
        beta: scratch.beta,
        nu: scratch.nu,
        residual: summary.residual,
        iterations: summary.iterations,
        converged: summary.converged,
        history: scratch.history,
    })
}

/// [`solve_sum_of_ratios`] against caller-owned buffers — the allocation-free form.
///
/// `x` holds the feasible starting point on entry and the final point on return; `spare` is
/// a second point buffer of the same type (its contents are irrelevant — each
/// [`FractionalProblem::solve_parametric_into`] call overwrites it completely) that the
/// loop double-buffers against `x`, so no point is ever allocated. All `(β, ν)` vectors and
/// the objective history live in the [`JongScratch`]; with a problem that overrides
/// `solve_parametric_into` in-place, the whole outer loop performs zero heap allocations in
/// steady state. Results are bit-identical to [`solve_sum_of_ratios`] — same arithmetic,
/// same order.
///
/// # Errors
///
/// Same as [`solve_sum_of_ratios`].
pub fn solve_sum_of_ratios_in<P, F>(
    problem: &F,
    x: &mut P,
    spare: &mut P,
    config: JongConfig,
    scratch: &mut JongScratch,
) -> Result<FractionalSummary, NumError>
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    solve_sum_of_ratios_warm_in(problem, x, spare, config, scratch, WarmMode::Cold)
}

/// [`solve_sum_of_ratios_in`] with a warm-start continuation over the scratch's previous
/// solve.
///
/// With [`WarmMode::Cold`] this *is* [`solve_sum_of_ratios_in`] — bit-identical, the warm
/// state is never read. With [`WarmMode::Multipliers`] the converged `(β, ν)` of the
/// previous solve (when [`JongScratch::warm_available`]) replace the cold initialization,
/// so the first parametric solve already starts from the previous fixed point — worth
/// several Newton iterations when successive problems differ only slightly (the alternating
/// outer loop of `fedopt-core`'s Algorithm 2). [`WarmMode::FastPath`] additionally probes
/// `‖ϕ‖∞` at the staged point before the loop and returns immediately (zero iterations,
/// `converged = true`) when the carried multipliers still satisfy `phi_tol` — see the
/// soundness caveat on [`WarmMode::FastPath`].
///
/// Either warm mode converges to a point satisfying the same `phi_tol` fixed-point
/// condition as the cold path; only the trajectory (and hence the last-bits of the result)
/// may differ.
///
/// # Errors
///
/// Same as [`solve_sum_of_ratios`]. After an error the scratch's warm seed is invalid.
pub fn solve_sum_of_ratios_warm_in<P, F>(
    problem: &F,
    x: &mut P,
    spare: &mut P,
    config: JongConfig,
    scratch: &mut JongScratch,
    mode: WarmMode,
) -> Result<FractionalSummary, NumError>
where
    F: FractionalProblem<Point = P> + ?Sized,
{
    let n_ratios = problem.len();
    if n_ratios == 0 {
        return Err(NumError::DimensionMismatch { expected: 1, actual: 0 });
    }
    if !(config.xi > 0.0 && config.xi < 1.0) {
        return Err(NumError::NonPositiveParameter { name: "xi", value: config.xi });
    }
    if !(config.epsilon > 0.0 && config.epsilon < 1.0) {
        return Err(NumError::NonPositiveParameter { name: "epsilon", value: config.epsilon });
    }

    let warm = mode != WarmMode::Cold && scratch.warm_available(n_ratios);
    scratch.warm_valid = false; // an early error must not leave a half-valid seed behind
    let JongScratch { beta, nu, history, beta_target, nu_target, trial_beta, trial_nu, .. } =
        scratch;
    if warm {
        // Keep the carried (β, ν); only the private loop buffers need resizing.
        for buf in [&mut *beta_target, &mut *nu_target, &mut *trial_beta, &mut *trial_nu] {
            buf.clear();
            buf.resize(n_ratios, 0.0);
        }
    } else {
        for buf in [
            &mut *beta,
            &mut *nu,
            &mut *beta_target,
            &mut *nu_target,
            &mut *trial_beta,
            &mut *trial_nu,
        ] {
            buf.clear();
            buf.resize(n_ratios, 0.0);
        }
        // Initialize (β, ν) from the starting point.
        for i in 0..n_ratios {
            let d = problem.denominator(i, x);
            if d <= 0.0 || !d.is_finite() {
                return Err(NumError::NonPositiveParameter { name: "denominator", value: d });
            }
            beta[i] = problem.numerator(i, x) / d;
            nu[i] = problem.ratio_weight(i) / d;
        }
    }

    history.clear();
    history.reserve(config.max_iter + 1);
    history.push(objective_value(problem, x));

    if warm && mode == WarmMode::FastPath {
        // The carried multipliers still satisfy the optimality system (22)–(23) at the
        // staged point: the previous fixed point is still a fixed point, skip the loop.
        let residual0 = phi_inf_norm(problem, x, beta, nu);
        if residual0 <= config.phi_tol {
            let objective = *history.last().expect("pushed above");
            scratch.warm_valid = true;
            return Ok(FractionalSummary {
                objective,
                residual: residual0,
                iterations: 0,
                converged: true,
            });
        }
    }

    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..config.max_iter {
        iterations = it + 1;

        // Step 4: solve the parametric subproblem at the current (β, ν), double-buffering
        // the point instead of allocating a fresh one.
        problem.solve_parametric_into(nu, beta, spare)?;
        std::mem::swap(x, spare);
        history.push(objective_value(problem, x));

        // Convergence check: ϕ(β, ν) evaluated at the *response* x(β, ν). At the fixed point
        // the parametric solution reproduces the ratios that generated it — exactly the
        // optimality system (22)–(23) of Theorem 1.
        residual = phi_inf_norm(problem, x, beta, nu);
        if residual <= config.phi_tol {
            converged = true;
            break;
        }

        // Full-Newton targets at the response point: β_i → n_i(x)/d_i(x), ν_i → w_i/d_i(x).
        for i in 0..n_ratios {
            let d = problem.denominator(i, x);
            if d <= 0.0 || !d.is_finite() {
                return Err(NumError::NonPositiveParameter { name: "denominator", value: d });
            }
            beta_target[i] = problem.numerator(i, x) / d;
            nu_target[i] = problem.ratio_weight(i) / d;
        }

        // Steps 5–6: damped Newton update of (β, ν) with the Armijo-like rule (29). Because ϕ
        // is linear in (β, ν) at fixed x and the Jacobian diag(d_i) is exact, the full step
        // (j = 0) always satisfies the rule; the loop is kept for fidelity to Algorithm 1 and
        // as a safety net against inexact inner solutions. Every trial entry is rewritten
        // before it is read, so the trial buffers need no per-iteration reset.
        let phi_now = residual;
        let mut step = 1.0;
        for _j in 0..=config.max_damping {
            for i in 0..n_ratios {
                trial_beta[i] = beta[i] + step * (beta_target[i] - beta[i]);
                trial_nu[i] = nu[i] + step * (nu_target[i] - nu[i]);
            }
            let phi_trial = phi_inf_norm(problem, x, trial_beta, trial_nu);
            if phi_trial <= (1.0 - config.epsilon * step) * phi_now || phi_now == 0.0 {
                break;
            }
            step *= config.xi;
        }
        beta.copy_from_slice(trial_beta);
        nu.copy_from_slice(trial_nu);
    }

    scratch.warm_valid = true;
    Ok(FractionalSummary {
        objective: objective_value(problem, x),
        residual,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy sum-of-ratios problem with a known solution:
    /// minimize (x+1)/x + (x-3)^2/1 over x in [0.5, 5].
    /// Single variable, two ratios. The second "ratio" has denominator 1 so this is really
    /// min (x+1)/x + (x-3)^2, a convex problem whose optimum we can verify by grid search.
    struct Toy;

    impl FractionalProblem for Toy {
        type Point = f64;

        fn len(&self) -> usize {
            2
        }
        fn ratio_weight(&self, _i: usize) -> f64 {
            1.0
        }
        fn numerator(&self, i: usize, x: &f64) -> f64 {
            match i {
                0 => x + 1.0,
                _ => (x - 3.0) * (x - 3.0),
            }
        }
        fn denominator(&self, i: usize, x: &f64) -> f64 {
            match i {
                0 => *x,
                _ => 1.0,
            }
        }
        fn solve_parametric(&self, nu: &[f64], beta: &[f64]) -> Result<f64, NumError> {
            // min over x of nu0*((x+1) - beta0*x) + nu1*((x-3)^2 - beta1)
            // => derivative: nu0*(1-beta0) + 2*nu1*(x-3) = 0
            let x = 3.0 - nu[0] * (1.0 - beta[0]) / (2.0 * nu[1]);
            Ok(x.clamp(0.5, 5.0))
        }
    }

    #[test]
    fn toy_problem_matches_grid_search() {
        let sol = solve_sum_of_ratios(&Toy, 1.0, JongConfig::default()).unwrap();
        assert!(sol.converged, "residual {}", sol.residual);

        // Grid-search reference.
        let axes = vec![crate::grid::linspace(0.5, 5.0, 20_001).unwrap()];
        let reference = crate::grid::grid_min(&axes, |p| {
            let x = p[0];
            (x + 1.0) / x + (x - 3.0) * (x - 3.0)
        })
        .unwrap();
        assert!(
            (sol.objective - reference.value).abs() < 1e-4,
            "jong {} vs grid {}",
            sol.objective,
            reference.value
        );
        assert!((sol.point - reference.argmin[0]).abs() < 1e-2);
    }

    #[test]
    fn optimality_system_holds_at_fixed_point() {
        let sol = solve_sum_of_ratios(&Toy, 4.0, JongConfig::default()).unwrap();
        // (22)–(23): nu_i = w_i / d_i(x*), beta_i = n_i(x*) / d_i(x*).
        for i in 0..2 {
            let d = Toy.denominator(i, &sol.point);
            let n = Toy.numerator(i, &sol.point);
            assert!((sol.nu[i] - 1.0 / d).abs() < 1e-6);
            assert!((sol.beta[i] - n / d).abs() < 1e-6);
        }
    }

    #[test]
    fn history_is_recorded_and_mostly_decreasing() {
        let sol = solve_sum_of_ratios(&Toy, 5.0, JongConfig::default()).unwrap();
        assert!(sol.history.len() >= 2);
        assert!(sol.history.last().unwrap() <= sol.history.first().unwrap());
    }

    #[test]
    fn in_place_driver_matches_allocating_wrapper_bitwise() {
        let config = JongConfig::default();
        let sol = solve_sum_of_ratios(&Toy, 5.0, config).unwrap();

        let mut x = 5.0;
        let mut spare = 0.0; // arbitrary garbage; overwritten by the first parametric solve
        let mut scratch = JongScratch::default();
        let s1 = solve_sum_of_ratios_in(&Toy, &mut x, &mut spare, config, &mut scratch).unwrap();
        assert_eq!(x, sol.point);
        assert_eq!(s1.objective, sol.objective);
        assert_eq!(s1.residual, sol.residual);
        assert_eq!(s1.iterations, sol.iterations);
        assert_eq!(s1.converged, sol.converged);
        assert_eq!(scratch.beta, sol.beta);
        assert_eq!(scratch.nu, sol.nu);
        assert_eq!(scratch.history, sol.history);

        // A dirtied, reused scratch must reproduce the run bit for bit (the reuse contract).
        let mut x2 = 5.0;
        let mut spare2 = -7.0;
        let s2 = solve_sum_of_ratios_in(&Toy, &mut x2, &mut spare2, config, &mut scratch).unwrap();
        assert_eq!(x2, x);
        assert_eq!(s2, s1);
    }

    #[test]
    fn warm_multipliers_reach_the_same_fixed_point() {
        let config = JongConfig::default();
        let cold = solve_sum_of_ratios(&Toy, 5.0, config).unwrap();

        // First solve populates the warm seed; the second starts from a different point but
        // carries the converged multipliers — it must land on the same fixed point.
        let mut scratch = JongScratch::default();
        let (mut x, mut spare) = (5.0, 0.0);
        solve_sum_of_ratios_warm_in(&Toy, &mut x, &mut spare, config, &mut scratch, WarmMode::Cold)
            .unwrap();
        let mut x2 = 4.0;
        let s2 = solve_sum_of_ratios_warm_in(
            &Toy,
            &mut x2,
            &mut spare,
            config,
            &mut scratch,
            WarmMode::Multipliers,
        )
        .unwrap();
        assert!(s2.converged);
        assert!(
            (s2.objective - cold.objective).abs() <= 1e-8 * cold.objective.abs(),
            "warm {} vs cold {}",
            s2.objective,
            cold.objective
        );
    }

    #[test]
    fn fast_path_skips_the_loop_when_multipliers_still_hold() {
        let config = JongConfig::default();
        let mut scratch = JongScratch::default();
        let (mut x, mut spare) = (5.0, 0.0);
        let first = solve_sum_of_ratios_warm_in(
            &Toy,
            &mut x,
            &mut spare,
            config,
            &mut scratch,
            WarmMode::Cold,
        )
        .unwrap();
        assert!(first.converged);

        // Same point, carried multipliers, constraints unchanged: zero iterations.
        let again = solve_sum_of_ratios_warm_in(
            &Toy,
            &mut x,
            &mut spare,
            config,
            &mut scratch,
            WarmMode::FastPath,
        )
        .unwrap();
        assert!(again.converged);
        assert_eq!(again.iterations, 0, "fast path must skip the loop");
        assert_eq!(again.objective, first.objective);

        // An invalidated seed falls back to the cold start (and still solves).
        scratch.invalidate_warm();
        assert!(!scratch.warm_available(2));
        let after_reset = solve_sum_of_ratios_warm_in(
            &Toy,
            &mut x,
            &mut spare,
            config,
            &mut scratch,
            WarmMode::FastPath,
        )
        .unwrap();
        assert!(after_reset.iterations >= 1, "cold fallback must run the loop");
        assert!(after_reset.converged);
    }

    #[test]
    fn cold_mode_ignores_warm_state_bitwise() {
        let config = JongConfig::default();
        let reference = solve_sum_of_ratios(&Toy, 5.0, config).unwrap();

        // A scratch dirtied by a previous (different-start) solve, used in Cold mode, must
        // reproduce the fresh-scratch run bit for bit — the warm seed is never read.
        let mut scratch = JongScratch::default();
        let (mut x0, mut spare) = (1.0, 0.0);
        solve_sum_of_ratios_warm_in(
            &Toy,
            &mut x0,
            &mut spare,
            config,
            &mut scratch,
            WarmMode::Cold,
        )
        .unwrap();
        let mut x = 5.0;
        let summary = solve_sum_of_ratios_warm_in(
            &Toy,
            &mut x,
            &mut spare,
            config,
            &mut scratch,
            WarmMode::Cold,
        )
        .unwrap();
        assert_eq!(x, reference.point);
        assert_eq!(summary.objective, reference.objective);
        assert_eq!(summary.iterations, reference.iterations);
        assert_eq!(scratch.beta, reference.beta);
        assert_eq!(scratch.nu, reference.nu);
    }

    #[test]
    fn rejects_empty_problem() {
        struct Empty;
        impl FractionalProblem for Empty {
            type Point = f64;
            fn len(&self) -> usize {
                0
            }
            fn ratio_weight(&self, _: usize) -> f64 {
                1.0
            }
            fn numerator(&self, _: usize, _: &f64) -> f64 {
                0.0
            }
            fn denominator(&self, _: usize, _: &f64) -> f64 {
                1.0
            }
            fn solve_parametric(&self, _: &[f64], _: &[f64]) -> Result<f64, NumError> {
                Ok(0.0)
            }
        }
        assert!(matches!(
            solve_sum_of_ratios(&Empty, 0.0, JongConfig::default()),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_config() {
        let bad_xi = JongConfig { xi: 1.5, ..Default::default() };
        assert!(solve_sum_of_ratios(&Toy, 1.0, bad_xi).is_err());
        let bad_eps = JongConfig { epsilon: 0.0, ..Default::default() };
        assert!(solve_sum_of_ratios(&Toy, 1.0, bad_eps).is_err());
    }

    #[test]
    fn rejects_nonpositive_denominator_start() {
        struct BadDen;
        impl FractionalProblem for BadDen {
            type Point = f64;
            fn len(&self) -> usize {
                1
            }
            fn ratio_weight(&self, _: usize) -> f64 {
                1.0
            }
            fn numerator(&self, _: usize, x: &f64) -> f64 {
                *x
            }
            fn denominator(&self, _: usize, _x: &f64) -> f64 {
                0.0
            }
            fn solve_parametric(&self, _: &[f64], _: &[f64]) -> Result<f64, NumError> {
                Ok(1.0)
            }
        }
        assert!(matches!(
            solve_sum_of_ratios(&BadDen, 1.0, JongConfig::default()),
            Err(NumError::NonPositiveParameter { .. })
        ));
    }
}
