//! Euclidean projection onto the scaled probability simplex.
//!
//! The dual problem (17) of the paper maximizes a concave function of the multipliers
//! `λ ∈ R^N` over the set `{λ ≥ 0, Σ λ_n = w₂ R_g}` — a simplex scaled by `w₂ R_g`.
//! Projected gradient ascent needs the Euclidean projection onto that set, computed here with
//! the classic sort-and-threshold algorithm (Held, Wolfe & Crowder; see also Duchi et al. 2008),
//! which runs in `O(N log N)`.

use crate::error::NumError;

/// Projects `v` onto the simplex `{x ≥ 0, Σ x_i = radius}` in Euclidean norm, in place.
///
/// # Errors
///
/// * [`NumError::NonPositiveParameter`] if `radius` is not strictly positive.
/// * [`NumError::DimensionMismatch`] if `v` is empty.
/// * [`NumError::NonFiniteValue`] if any component of `v` is NaN/∞.
///
/// # Examples
///
/// ```rust
/// # use numopt::simplex::project_simplex;
/// let mut v = vec![0.5, 1.5, -3.0];
/// project_simplex(&mut v, 1.0)?;
/// let sum: f64 = v.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-12);
/// assert!(v.iter().all(|&x| x >= 0.0));
/// # Ok::<(), numopt::NumError>(())
/// ```
pub fn project_simplex(v: &mut [f64], radius: f64) -> Result<(), NumError> {
    if radius <= 0.0 || !radius.is_finite() {
        return Err(NumError::NonPositiveParameter { name: "radius", value: radius });
    }
    if v.is_empty() {
        return Err(NumError::DimensionMismatch { expected: 1, actual: 0 });
    }
    if let Some(&bad) = v.iter().find(|x| !x.is_finite()) {
        return Err(NumError::NonFiniteValue { at: bad });
    }

    // Sort a copy in decreasing order and find the threshold.
    let mut u: Vec<f64> = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite values compare"));
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    let mut rho = 0usize;
    for (i, &ui) in u.iter().enumerate() {
        cumsum += ui;
        let t = (cumsum - radius) / (i as f64 + 1.0);
        if ui - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    // rho >= 1 always holds because the largest element minus (largest - radius) = radius > 0.
    debug_assert!(rho >= 1);
    for x in v.iter_mut() {
        *x = (*x - theta).max(0.0);
    }
    Ok(())
}

/// Returns the squared Euclidean distance between two equal-length slices.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if the slices have different lengths.
pub fn distance_sq(a: &[f64], b: &[f64]) -> Result<f64, NumError> {
    if a.len() != b.len() {
        return Err(NumError::DimensionMismatch { expected: a.len(), actual: b.len() });
    }
    Ok(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_on_simplex(v: &[f64], radius: f64) {
        let sum: f64 = v.iter().sum();
        assert!((sum - radius).abs() < 1e-10, "sum {sum} != radius {radius}");
        assert!(v.iter().all(|&x| x >= -1e-15), "negative component in {v:?}");
    }

    #[test]
    fn already_on_simplex_is_fixed_point() {
        let mut v = vec![0.2, 0.3, 0.5];
        let orig = v.clone();
        project_simplex(&mut v, 1.0).unwrap();
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projects_negative_vector() {
        let mut v = vec![-1.0, -2.0, -3.0];
        project_simplex(&mut v, 2.0).unwrap();
        assert_on_simplex(&v, 2.0);
        // Hand-computed Euclidean projection: threshold theta = -2.5.
        assert!((v[0] - 1.5).abs() < 1e-12);
        assert!((v[1] - 0.5).abs() < 1e-12);
        assert!(v[2].abs() < 1e-12);
    }

    #[test]
    fn scaled_radius() {
        let mut v = vec![10.0, 0.0, 0.0, 5.0];
        project_simplex(&mut v, 3.0).unwrap();
        assert_on_simplex(&v, 3.0);
    }

    #[test]
    fn single_element() {
        let mut v = vec![-7.0];
        project_simplex(&mut v, 4.0).unwrap();
        assert_eq!(v[0], 4.0);
    }

    #[test]
    fn rejects_empty_and_bad_radius() {
        let mut empty: Vec<f64> = vec![];
        assert!(matches!(
            project_simplex(&mut empty, 1.0),
            Err(NumError::DimensionMismatch { .. })
        ));
        let mut v = vec![1.0];
        assert!(matches!(project_simplex(&mut v, 0.0), Err(NumError::NonPositiveParameter { .. })));
        assert!(matches!(
            project_simplex(&mut v, f64::NAN),
            Err(NumError::NonPositiveParameter { .. })
        ));
    }

    #[test]
    fn rejects_nan_component() {
        let mut v = vec![1.0, f64::NAN];
        assert!(matches!(project_simplex(&mut v, 1.0), Err(NumError::NonFiniteValue { .. })));
    }

    #[test]
    fn projection_is_idempotent() {
        let mut v = vec![3.0, -1.0, 0.5, 2.0, 0.0];
        project_simplex(&mut v, 1.5).unwrap();
        let first = v.clone();
        project_simplex(&mut v, 1.5).unwrap();
        assert!(distance_sq(&first, &v).unwrap() < 1e-20);
    }

    #[test]
    fn distance_sq_mismatch() {
        assert!(matches!(
            distance_sq(&[1.0], &[1.0, 2.0]),
            Err(NumError::DimensionMismatch { .. })
        ));
    }
}
