//! # numopt
//!
//! A small, dependency-free numerical-optimization toolkit that stands in for the convex
//! optimization package (CVX) used by the paper *"Joint Optimization of Energy Consumption and
//! Completion Time in Federated Learning"* (ICDCS 2022).
//!
//! The paper solves two convex subproblems per outer iteration; the structure of both is fully
//! characterized by their KKT conditions, so a general-purpose modelling language is not
//! required. This crate provides the numerical primitives those KKT systems need:
//!
//! * [`roots`] — safeguarded bisection and Brent-style hybrid root finding for monotone and
//!   general continuous scalar functions (used for the bandwidth price `μ` in Theorem 2, and
//!   for water-filling style allocations in the baselines).
//! * [`scalar`] — golden-section and ternary search for one-dimensional convex minimization
//!   (used by the direct Subproblem-1 solver and the Scheme-1 baseline).
//! * [`lambertw`] — the principal branch `W₀` of the Lambert W function, needed by equation
//!   (A.4) of the paper.
//! * [`simplex`] — Euclidean projection onto the scaled probability simplex, used to solve the
//!   dual problem (17) by projected gradient ascent.
//! * [`projgrad`] — projected gradient ascent/descent with diminishing or backtracking steps.
//! * [`fractional`] — a generic implementation of Jong's Newton-like algorithm for
//!   sum-of-ratios ("fractional programming") problems, the skeleton of the paper's Algorithm 1.
//! * [`grid`] — brute-force grid search, used only by tests and cross-validation helpers.
//!
//! All routines are deterministic, allocation-light, and return typed errors instead of
//! panicking on bad inputs.
//!
//! ## Example
//!
//! ```rust
//! use numopt::roots::bisect;
//! use numopt::scalar::golden_section_min;
//!
//! # fn main() -> Result<(), numopt::NumError> {
//! // Root of x^3 - 2 on [0, 2].
//! let r = bisect(|x| x * x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
//! assert!((r.root - 2f64.powf(1.0 / 3.0)).abs() < 1e-9);
//!
//! // Minimum of (x - 3)^2 on [0, 10].
//! let m = golden_section_min(|x| (x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-10, 500)?;
//! assert!((m.argmin - 3.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fractional;
pub mod grid;
pub mod lambertw;
pub mod projgrad;
pub mod roots;
pub mod scalar;
pub mod simplex;

pub use error::NumError;
pub use fractional::{
    solve_sum_of_ratios, solve_sum_of_ratios_in, solve_sum_of_ratios_warm_in, FractionalProblem,
    FractionalSolution, FractionalSummary, JongConfig, JongScratch, WarmMode,
};
pub use lambertw::lambert_w0;
pub use roots::{bisect, brent, BisectOutcome};
pub use scalar::{golden_section_min, ScalarMinimum};
pub use simplex::project_simplex;
