//! One-dimensional minimization of unimodal (convex) functions.
//!
//! Subproblem 1 of the paper reduces, after eliminating the per-device frequencies, to a
//! one-dimensional convex minimization over the round completion time `T`; the Scheme-1
//! baseline does the same per-device over the compute/upload time split. Golden-section
//! search solves both without derivatives.

use crate::error::NumError;

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMinimum {
    /// Argument attaining the (approximate) minimum.
    pub argmin: f64,
    /// Objective value at [`ScalarMinimum::argmin`].
    pub value: f64,
    /// Iterations used.
    pub iterations: usize,
}

const INV_PHI: f64 = 0.618_033_988_749_894_8; // 1/φ
const INV_PHI2: f64 = 0.381_966_011_250_105_2; // 1/φ²

/// Minimizes a unimodal function on `[lo, hi]` by golden-section search.
///
/// The function must be unimodal on the interval (strictly decreasing then increasing, or
/// monotone — in which case the minimum is at an endpoint). Convex functions qualify.
///
/// # Errors
///
/// * [`NumError::InvalidInterval`] for a malformed bracket.
/// * [`NumError::NonFiniteValue`] if an evaluation returns NaN/∞.
/// * [`NumError::MaxIterations`] if the bracket has not shrunk to `tol` within `max_iter`.
///
/// # Examples
///
/// ```rust
/// # use numopt::scalar::golden_section_min;
/// let m = golden_section_min(|x: f64| (x - 2.0).powi(2) + 1.0, -10.0, 10.0, 1e-9, 500)?;
/// assert!((m.argmin - 2.0).abs() < 1e-6);
/// assert!((m.value - 1.0).abs() < 1e-9);
/// # Ok::<(), numopt::NumError>(())
/// ```
pub fn golden_section_min<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<ScalarMinimum, NumError>
where
    F: FnMut(f64) -> f64,
{
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(NumError::InvalidInterval { lo, hi });
    }
    if hi - lo <= tol {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        if !v.is_finite() {
            return Err(NumError::NonFiniteValue { at: mid });
        }
        return Ok(ScalarMinimum { argmin: mid, value: v, iterations: 0 });
    }

    let mut a = lo;
    let mut b = hi;
    let mut c = a + INV_PHI2 * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    if !fc.is_finite() {
        return Err(NumError::NonFiniteValue { at: c });
    }
    if !fd.is_finite() {
        return Err(NumError::NonFiniteValue { at: d });
    }

    for it in 0..max_iter {
        if (b - a) <= tol {
            let (argmin, value) = if fc < fd { (c, fc) } else { (d, fd) };
            return Ok(ScalarMinimum { argmin, value, iterations: it });
        }
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = a + INV_PHI2 * (b - a);
            fc = f(c);
            if !fc.is_finite() {
                return Err(NumError::NonFiniteValue { at: c });
            }
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
            if !fd.is_finite() {
                return Err(NumError::NonFiniteValue { at: d });
            }
        }
    }
    Err(NumError::MaxIterations { iterations: max_iter, residual: b - a })
}

/// Minimizes a unimodal function over `[lo, hi]` but also evaluates both endpoints, returning
/// whichever of {endpoints, interior golden-section minimum} is best.
///
/// Golden-section converges to an interior stationary point; when the minimum of a monotone
/// objective sits exactly on the boundary the interior estimate can be a hair off. The
/// allocation code paths in `fedopt-core` always call this variant so that box-constrained
/// quantities (frequencies, time splits) land exactly on their bounds when optimal.
///
/// # Errors
///
/// Same as [`golden_section_min`].
pub fn golden_section_min_with_endpoints<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<ScalarMinimum, NumError>
where
    F: FnMut(f64) -> f64,
{
    let f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() {
        return Err(NumError::NonFiniteValue { at: lo });
    }
    if !f_hi.is_finite() {
        return Err(NumError::NonFiniteValue { at: hi });
    }
    let interior = golden_section_min(&mut f, lo, hi, tol, max_iter)?;
    let mut best = interior;
    if f_lo <= best.value {
        best = ScalarMinimum { argmin: lo, value: f_lo, iterations: interior.iterations };
    }
    if f_hi < best.value {
        best = ScalarMinimum { argmin: hi, value: f_hi, iterations: interior.iterations };
    }
    Ok(best)
}

/// Clamps `x` into `[lo, hi]`.
///
/// Tiny convenience used throughout the workspace; defined here so that every crate clamps
/// identically (NaN-safe: a NaN input returns `lo`).
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    if x.is_nan() {
        return lo;
    }
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_minimum() {
        let m = golden_section_min(|x: f64| (x - 3.5).powi(2), 0.0, 10.0, 1e-10, 500).unwrap();
        assert!((m.argmin - 3.5).abs() < 1e-6);
        assert!(m.value < 1e-10);
    }

    #[test]
    fn handles_monotone_decreasing() {
        let m = golden_section_min(|x: f64| -x, 0.0, 1.0, 1e-10, 500).unwrap();
        assert!((m.argmin - 1.0).abs() < 1e-4);
    }

    #[test]
    fn endpoint_variant_hits_boundary_exactly() {
        let m = golden_section_min_with_endpoints(|x: f64| -x, 0.0, 1.0, 1e-10, 500).unwrap();
        assert_eq!(m.argmin, 1.0);
        assert_eq!(m.value, -1.0);
    }

    #[test]
    fn degenerate_interval_ok() {
        let m = golden_section_min(|x: f64| x * x, 2.0, 2.0, 1e-12, 10).unwrap();
        assert_eq!(m.argmin, 2.0);
    }

    #[test]
    fn rejects_reversed_interval() {
        let err = golden_section_min(|x: f64| x, 1.0, 0.0, 1e-12, 10).unwrap_err();
        assert!(matches!(err, NumError::InvalidInterval { .. }));
    }

    #[test]
    fn detects_nan_objective() {
        let err = golden_section_min(|_x: f64| f64::NAN, 0.0, 1.0, 1e-12, 10).unwrap_err();
        assert!(matches!(err, NumError::NonFiniteValue { .. }));
    }

    #[test]
    fn clamp_is_nan_safe() {
        assert_eq!(clamp(f64::NAN, 1.0, 2.0), 1.0);
        assert_eq!(clamp(5.0, 1.0, 2.0), 2.0);
        assert_eq!(clamp(0.0, 1.0, 2.0), 1.0);
        assert_eq!(clamp(1.5, 1.0, 2.0), 1.5);
    }

    #[test]
    fn asymmetric_convex_function() {
        // f(x) = e^x + e^{-2x}; minimum at x = ln(2)/3.
        let m =
            golden_section_min(|x: f64| x.exp() + (-2.0 * x).exp(), -5.0, 5.0, 1e-11, 500).unwrap();
        assert!((m.argmin - (2f64.ln() / 3.0)).abs() < 1e-6);
    }
}
