//! Scalar root finding: safeguarded bisection and a Brent-style hybrid.
//!
//! The paper's Theorem 2 finds the bandwidth-budget multiplier `μ` as the root of the
//! monotone decreasing derivative `g'(μ)` of a concave dual function; the baselines use the
//! same machinery to price bandwidth. Bisection is slow but unconditionally robust, which is
//! what an inner solver that runs thousands of times per experiment sweep needs.

use crate::error::NumError;

/// Result of a successful root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BisectOutcome {
    /// Approximate root.
    pub root: f64,
    /// Function value at [`BisectOutcome::root`].
    pub f_root: f64,
    /// Number of iterations used.
    pub iterations: usize,
}

fn check_interval(lo: f64, hi: f64) -> Result<(), NumError> {
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(NumError::InvalidInterval { lo, hi });
    }
    Ok(())
}

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// The function must be continuous on the interval and `f(lo)` / `f(hi)` must have opposite
/// signs (a zero at either endpoint is accepted and returned immediately).
///
/// # Errors
///
/// * [`NumError::InvalidInterval`] if `lo > hi` or either endpoint is not finite.
/// * [`NumError::NoSignChange`] if the endpoint values have the same (nonzero) sign.
/// * [`NumError::NonFiniteValue`] if any evaluation returns NaN/∞.
/// * [`NumError::MaxIterations`] if the interval is still wider than `tol` after `max_iter`
///   halvings (with `tol = 1e-12` and a unit interval this needs ~40 iterations, so the error
///   indicates a pathological input rather than a tight budget).
///
/// # Examples
///
/// ```rust
/// # use numopt::roots::bisect;
/// let out = bisect(|x| x.cos() - x, 0.0, 1.0, 1e-12, 200)?;
/// assert!((out.root - 0.7390851332151607).abs() < 1e-9);
/// # Ok::<(), numopt::NumError>(())
/// ```
pub fn bisect<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<BisectOutcome, NumError>
where
    F: FnMut(f64) -> f64,
{
    check_interval(lo, hi)?;
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() {
        return Err(NumError::NonFiniteValue { at: a });
    }
    if !fb.is_finite() {
        return Err(NumError::NonFiniteValue { at: b });
    }
    if fa == 0.0 {
        return Ok(BisectOutcome { root: a, f_root: 0.0, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(BisectOutcome { root: b, f_root: 0.0, iterations: 0 });
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::NoSignChange { f_lo: fa, f_hi: fb });
    }
    let mut mid = 0.5 * (a + b);
    let mut fm = f(mid);
    for it in 0..max_iter {
        mid = 0.5 * (a + b);
        fm = f(mid);
        if !fm.is_finite() {
            return Err(NumError::NonFiniteValue { at: mid });
        }
        if fm == 0.0 || (b - a) <= tol {
            return Ok(BisectOutcome { root: mid, f_root: fm, iterations: it + 1 });
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumError::MaxIterations { iterations: max_iter, residual: (b - a).abs().max(fm.abs()) })
}

/// Finds the root of a **monotone decreasing** function on `[lo, hi]`, clamping to the
/// endpoints when the root lies outside the bracket.
///
/// This is the shape of every "price" search in the paper (bandwidth multiplier `μ`,
/// bandwidth price in Scheme 1): the derivative of a concave dual is decreasing, and a root
/// below `lo` (resp. above `hi`) simply means the constraint is inactive (resp. the budget is
/// binding at the boundary). Returning the clamped endpoint is the economically meaningful
/// answer, so this helper never fails on a missing sign change.
///
/// # Errors
///
/// * [`NumError::InvalidInterval`] for a malformed bracket.
/// * [`NumError::NonFiniteValue`] if an evaluation is NaN/∞.
///
/// # Examples
///
/// ```rust
/// # use numopt::roots::root_of_decreasing;
/// // g'(mu) = 5 - mu; root at 5, inside [0, 10].
/// let mu = root_of_decreasing(|x| 5.0 - x, 0.0, 10.0, 1e-10, 200)?;
/// assert!((mu - 5.0).abs() < 1e-8);
/// // Root outside the bracket: clamp.
/// let clamped = root_of_decreasing(|x| -1.0 - x, 0.0, 10.0, 1e-10, 200)?;
/// assert_eq!(clamped, 0.0);
/// # Ok::<(), numopt::NumError>(())
/// ```
pub fn root_of_decreasing<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumError>
where
    F: FnMut(f64) -> f64,
{
    check_interval(lo, hi)?;
    let f_lo = f(lo);
    if !f_lo.is_finite() {
        return Err(NumError::NonFiniteValue { at: lo });
    }
    // Decreasing and already non-positive at the left end: the root is at or below `lo`.
    if f_lo <= 0.0 {
        return Ok(lo);
    }
    let f_hi = f(hi);
    if !f_hi.is_finite() {
        return Err(NumError::NonFiniteValue { at: hi });
    }
    // Still positive at the right end: the root is beyond `hi`.
    if f_hi >= 0.0 {
        return Ok(hi);
    }
    bisect(f, lo, hi, tol, max_iter).map(|o| o.root)
}

/// Finds a root of `f` on `[lo, hi]` by Brent's method: inverse quadratic interpolation and
/// secant steps safeguarded by bisection.
///
/// Same contract as [`bisect`] — continuous `f`, endpoint values of opposite sign (an
/// endpoint zero is returned immediately), and the same stopping rule (the bracketing
/// interval has shrunk to `tol`, up to a few machine epsilons of the iterate's magnitude) —
/// but with superlinear convergence on smooth functions: where bisection needs
/// `log2(width/tol)` evaluations unconditionally, Brent typically needs a handful, falling
/// back to a bisection step whenever an interpolated step would leave the bracket or fail
/// to halve it. This is the `μ`-root accelerator of the Theorem-2 KKT solver; `g'(μ)` is
/// smooth in `μ`, so the interpolated steps almost always land.
///
/// # Errors
///
/// Same as [`bisect`].
///
/// # Examples
///
/// ```rust
/// # use numopt::roots::brent;
/// let out = brent(|x| x.cos() - x, 0.0, 1.0, 1e-12, 200)?;
/// assert!((out.root - 0.7390851332151607).abs() < 1e-9);
/// # Ok::<(), numopt::NumError>(())
/// ```
pub fn brent<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<BisectOutcome, NumError>
where
    F: FnMut(f64) -> f64,
{
    check_interval(lo, hi)?;
    let a = lo;
    let b = hi;
    let fa = f(a);
    let fb = f(b);
    if !fa.is_finite() {
        return Err(NumError::NonFiniteValue { at: a });
    }
    if !fb.is_finite() {
        return Err(NumError::NonFiniteValue { at: b });
    }
    if fa == 0.0 {
        return Ok(BisectOutcome { root: a, f_root: 0.0, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(BisectOutcome { root: b, f_root: 0.0, iterations: 0 });
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::NoSignChange { f_lo: fa, f_hi: fb });
    }
    brent_seeded(f, a, fa, b, fb, tol, max_iter)
}

/// [`brent`] with both endpoint values already known: the iteration starts immediately,
/// spending zero evaluations re-probing `lo` and `hi`. Bit-identical to [`brent`] fed the
/// same endpoint values — this is the same loop, entered past the entry probes.
///
/// The caller vouches for the preconditions [`brent`] normally checks: `lo < hi` finite,
/// `f_lo`/`f_hi` finite, of opposite sign and neither zero, and actually equal to
/// `f(lo)` / `f(hi)`. This is the warm-start entry of the `μ`-root search, where the
/// bracket-validation probes double as the endpoint values.
///
/// # Errors
///
/// Same as [`brent`], except that the endpoint preconditions are not re-checked.
pub fn brent_with_endpoints<F>(
    f: F,
    lo: f64,
    f_lo: f64,
    hi: f64,
    f_hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<BisectOutcome, NumError>
where
    F: FnMut(f64) -> f64,
{
    check_interval(lo, hi)?;
    if f_lo == 0.0 {
        return Ok(BisectOutcome { root: lo, f_root: 0.0, iterations: 0 });
    }
    if f_hi == 0.0 {
        return Ok(BisectOutcome { root: hi, f_root: 0.0, iterations: 0 });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(NumError::NoSignChange { f_lo, f_hi });
    }
    brent_seeded(f, lo, f_lo, hi, f_hi, tol, max_iter)
}

/// The Brent iteration proper, entered with both endpoint values in hand.
fn brent_seeded<F>(
    mut f: F,
    mut a: f64,
    mut fa: f64,
    mut b: f64,
    mut fb: f64,
    tol: f64,
    max_iter: usize,
) -> Result<BisectOutcome, NumError>
where
    F: FnMut(f64) -> f64,
{
    // Invariant: the root is bracketed by `b` (best iterate) and `c`; `a` is the previous
    // iterate feeding the interpolation.
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    for it in 0..max_iter {
        if fb.signum() == fc.signum() {
            // `b` and `c` fell on the same side: restore the bracket from `a`.
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
        if fc.abs() < fb.abs() {
            // Keep the smaller residual in `b`.
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        // Half-width convergence test: `|c - b| <= tol` matches bisection's `(b - a) <= tol`
        // stop, with a machine-epsilon floor so a tol far below the iterate's ulp spacing
        // cannot stall the loop.
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(BisectOutcome { root: b, f_root: fb, iterations: it });
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation (secant when only two points exist).
            let s = fb / fa;
            let mut p;
            let mut q;
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let r0 = fa / fc;
                let r1 = fb / fc;
                p = s * (2.0 * xm * r0 * (r0 - r1) - (b - a) * (r1 - 1.0));
                q = (r0 - 1.0) * (r1 - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            // Accept only steps that stay in the bracket and beat the previous shrink rate;
            // otherwise take the safeguarding bisection step.
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        if d.abs() > tol1 {
            b += d;
        } else {
            b += if xm > 0.0 { tol1 } else { -tol1 };
        }
        fb = f(b);
        if !fb.is_finite() {
            return Err(NumError::NonFiniteValue { at: b });
        }
    }
    Err(NumError::MaxIterations { iterations: max_iter, residual: (c - b).abs().max(fb.abs()) })
}

/// [`root_of_decreasing`] with the interior search performed by [`brent`] instead of
/// [`bisect`]: identical endpoint-clamp semantics and tolerance, superlinear convergence in
/// the interior. Falls back to plain bisection if the Brent iteration errors out (it cannot
/// on a finite monotone function, but the solver stack must never be less robust than the
/// pure-bisection path it replaces).
///
/// # Errors
///
/// Same as [`root_of_decreasing`].
pub fn root_of_decreasing_brent<F>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64, NumError>
where
    F: FnMut(f64) -> f64,
{
    check_interval(lo, hi)?;
    let f_lo = f(lo);
    if !f_lo.is_finite() {
        return Err(NumError::NonFiniteValue { at: lo });
    }
    if f_lo <= 0.0 {
        return Ok(lo);
    }
    let f_hi = f(hi);
    if !f_hi.is_finite() {
        return Err(NumError::NonFiniteValue { at: hi });
    }
    if f_hi >= 0.0 {
        return Ok(hi);
    }
    match brent(&mut f, lo, hi, tol, max_iter) {
        Ok(o) => Ok(o.root),
        Err(NumError::MaxIterations { .. }) => bisect(f, lo, hi, tol, max_iter).map(|o| o.root),
        Err(e) => Err(e),
    }
}

/// Expands `hi` geometrically until `f(hi)` changes sign relative to `f(lo)`, then bisects.
///
/// Useful when only a lower bound of the bracket is known (e.g. searching for the completion
/// time `T` at which a feasibility function flips). The bracket grows by `factor` up to
/// `max_expansions` times.
///
/// # Errors
///
/// Same as [`bisect`], plus [`NumError::NoSignChange`] if no sign change is found after all
/// expansions.
pub fn bisect_with_expansion<F>(
    mut f: F,
    lo: f64,
    initial_hi: f64,
    factor: f64,
    max_expansions: usize,
    tol: f64,
    max_iter: usize,
) -> Result<BisectOutcome, NumError>
where
    F: FnMut(f64) -> f64,
{
    check_interval(lo, initial_hi)?;
    if factor <= 1.0 {
        return Err(NumError::NonPositiveParameter { name: "factor - 1", value: factor - 1.0 });
    }
    let f_lo = f(lo);
    if !f_lo.is_finite() {
        return Err(NumError::NonFiniteValue { at: lo });
    }
    let mut hi = initial_hi;
    let mut f_hi = f(hi);
    let mut expansions = 0usize;
    while f_hi.is_finite() && f_lo.signum() == f_hi.signum() && expansions < max_expansions {
        hi *= factor;
        f_hi = f(hi);
        expansions += 1;
    }
    if !f_hi.is_finite() {
        return Err(NumError::NonFiniteValue { at: hi });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(NumError::NoSignChange { f_lo, f_hi });
    }
    bisect(f, lo, hi, tol, max_iter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_cube_root_of_two() {
        let out = bisect(|x| x * x * x - 2.0, 0.0, 2.0, 1e-13, 200).unwrap();
        assert!((out.root - 2f64.powf(1.0 / 3.0)).abs() < 1e-10);
        assert!(out.iterations > 0);
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        let out = bisect(|x| x, 0.0, 5.0, 1e-12, 100).unwrap();
        assert_eq!(out.root, 0.0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn bisect_rejects_bad_interval() {
        let err = bisect(|x| x, 2.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::InvalidInterval { .. }));
    }

    #[test]
    fn bisect_rejects_same_sign() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::NoSignChange { .. }));
    }

    #[test]
    fn bisect_detects_nan() {
        let err =
            bisect(|x| if x > 0.5 { f64::NAN } else { -1.0 }, 0.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::NonFiniteValue { .. }));
    }

    #[test]
    fn decreasing_root_interior() {
        let mu = root_of_decreasing(|x| 3.0 - x * x, 0.0, 10.0, 1e-12, 200).unwrap();
        assert!((mu - 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn decreasing_root_clamps_left() {
        let mu = root_of_decreasing(|x| -1.0 - x, 0.0, 10.0, 1e-12, 200).unwrap();
        assert_eq!(mu, 0.0);
    }

    #[test]
    fn decreasing_root_clamps_right() {
        let mu = root_of_decreasing(|x| 100.0 - x, 0.0, 10.0, 1e-12, 200).unwrap();
        assert_eq!(mu, 10.0);
    }

    #[test]
    fn brent_matches_bisect_with_fewer_evaluations() {
        let mut evals_brent = 0usize;
        let mut evals_bisect = 0usize;
        let f = |x: f64| x.exp() - 3.0 * x * x; // smooth, one root in [-1, 0]
        let b1 = brent(
            |x| {
                evals_brent += 1;
                f(x)
            },
            -1.0,
            0.0,
            1e-13,
            200,
        )
        .unwrap();
        let b2 = bisect(
            |x| {
                evals_bisect += 1;
                f(x)
            },
            -1.0,
            0.0,
            1e-13,
            200,
        )
        .unwrap();
        assert!((b1.root - b2.root).abs() < 1e-10, "{} vs {}", b1.root, b2.root);
        assert!(f(b1.root).abs() < 1e-9);
        assert!(
            evals_brent < evals_bisect / 2,
            "brent used {evals_brent} evaluations, bisect {evals_bisect}"
        );
    }

    #[test]
    fn brent_accepts_root_at_endpoint_and_rejects_same_sign() {
        let out = brent(|x| x, 0.0, 5.0, 1e-12, 100).unwrap();
        assert_eq!(out.root, 0.0);
        assert_eq!(out.iterations, 0);
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::NoSignChange { .. }));
        let err = brent(|x| x, 2.0, 1.0, 1e-12, 100).unwrap_err();
        assert!(matches!(err, NumError::InvalidInterval { .. }));
    }

    #[test]
    fn brent_handles_hard_functions_via_bisection_safeguard() {
        // A kink at the root defeats interpolation; the safeguard must still converge.
        let out = brent(|x: f64| x.abs().sqrt() * x.signum() - 0.3, -1.0, 1.0, 1e-12, 200).unwrap();
        assert!((out.root - 0.09).abs() < 1e-9, "root {}", out.root);
        // A step function: no smoothness at all.
        let out = brent(|x: f64| if x < 0.25 { 1.0 } else { -1.0 }, 0.0, 1.0, 1e-9, 200).unwrap();
        assert!((out.root - 0.25).abs() < 1e-8);
    }

    #[test]
    fn decreasing_brent_matches_decreasing_bisect_clamps() {
        // Interior root: both agree within tolerance.
        let a = root_of_decreasing(|x| 3.0 - x * x, 0.0, 10.0, 1e-12, 200).unwrap();
        let b = root_of_decreasing_brent(|x| 3.0 - x * x, 0.0, 10.0, 1e-12, 200).unwrap();
        assert!((a - b).abs() < 1e-9);
        // Clamps are bit-identical to the bisection helper.
        assert_eq!(root_of_decreasing_brent(|x| -1.0 - x, 0.0, 10.0, 1e-12, 200).unwrap(), 0.0);
        assert_eq!(root_of_decreasing_brent(|x| 100.0 - x, 0.0, 10.0, 1e-12, 200).unwrap(), 10.0);
    }

    #[test]
    fn expansion_finds_far_root() {
        let out = bisect_with_expansion(|x| x - 1000.0, 0.0, 1.0, 2.0, 60, 1e-9, 300).unwrap();
        assert!((out.root - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn expansion_gives_up_gracefully() {
        let err = bisect_with_expansion(|x| x + 1.0, 0.0, 1.0, 2.0, 5, 1e-9, 100).unwrap_err();
        assert!(matches!(err, NumError::NoSignChange { .. }));
    }

    #[test]
    fn expansion_rejects_bad_factor() {
        let err = bisect_with_expansion(|x| x - 3.0, 0.0, 1.0, 0.5, 5, 1e-9, 100).unwrap_err();
        assert!(matches!(err, NumError::NonPositiveParameter { .. }));
    }
}
