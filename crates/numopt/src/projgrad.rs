//! Projected gradient ascent over a convex feasible set.
//!
//! Used to maximize the concave dual (17) of Subproblem 1 over the scaled simplex
//! `{λ ≥ 0, Σλ = w₂ R_g}`. The projection is supplied by the caller so the routine is
//! reusable for any closed convex set (box, simplex, half-space).

use crate::error::NumError;

/// Configuration for [`projected_gradient_ascent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjGradConfig {
    /// Initial step size.
    pub step: f64,
    /// Multiplicative backtracking factor applied when a step does not improve the objective.
    pub backtrack: f64,
    /// Maximum number of outer iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the squared step length.
    pub tol: f64,
}

impl Default for ProjGradConfig {
    fn default() -> Self {
        Self { step: 1.0, backtrack: 0.5, max_iter: 2_000, tol: 1e-18 }
    }
}

/// Result of a projected gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjGradOutcome {
    /// Final iterate (feasible — it has been projected).
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration budget ran out.
    pub converged: bool,
}

/// Maximizes a concave differentiable function over a convex set by projected gradient ascent
/// with backtracking.
///
/// * `objective(x)` returns the function value.
/// * `gradient(x, g)` writes the gradient into `g` (same length as `x`).
/// * `project(x)` projects `x` onto the feasible set in place; it is applied to the initial
///   point too, so the caller may pass any starting vector of the right length.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if `x0` is empty.
/// * [`NumError::NonFiniteValue`] if the objective or gradient produces NaN/∞.
/// * Errors from `project` are propagated.
///
/// # Examples
///
/// ```rust
/// use numopt::projgrad::{projected_gradient_ascent, ProjGradConfig};
/// use numopt::simplex::project_simplex;
///
/// # fn main() -> Result<(), numopt::NumError> {
/// // maximize -(x0-0.2)^2 - (x1-0.9)^2 over the unit simplex
/// let out = projected_gradient_ascent(
///     vec![0.5, 0.5],
///     |x| -((x[0] - 0.2).powi(2) + (x[1] - 0.9).powi(2)),
///     |x, g| {
///         g[0] = -2.0 * (x[0] - 0.2);
///         g[1] = -2.0 * (x[1] - 0.9);
///     },
///     |x| project_simplex(x, 1.0),
///     ProjGradConfig::default(),
/// )?;
/// assert!((out.x[0] - 0.15).abs() < 1e-4);
/// assert!((out.x[1] - 0.85).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn projected_gradient_ascent<O, G, P>(
    mut x0: Vec<f64>,
    mut objective: O,
    mut gradient: G,
    mut project: P,
    config: ProjGradConfig,
) -> Result<ProjGradOutcome, NumError>
where
    O: FnMut(&[f64]) -> f64,
    G: FnMut(&[f64], &mut [f64]),
    P: FnMut(&mut [f64]) -> Result<(), NumError>,
{
    if x0.is_empty() {
        return Err(NumError::DimensionMismatch { expected: 1, actual: 0 });
    }
    project(&mut x0)?;
    let n = x0.len();
    let mut x = x0;
    let mut value = objective(&x);
    if !value.is_finite() {
        return Err(NumError::NonFiniteValue { at: x[0] });
    }
    let mut grad = vec![0.0; n];
    let mut candidate = vec![0.0; n];

    for it in 0..config.max_iter {
        gradient(&x, &mut grad);
        if let Some(&bad) = grad.iter().find(|g| !g.is_finite()) {
            return Err(NumError::NonFiniteValue { at: bad });
        }

        // Monotone ascent with backtracking: shrink the step until the projected step strictly
        // improves the objective; if no step length improves it, we are at a stationary point
        // of the projected problem and stop.
        let mut step = config.step;
        let mut improved = false;
        let mut step_len_sq = 0.0;
        for _ in 0..60 {
            for i in 0..n {
                candidate[i] = x[i] + step * grad[i];
            }
            project(&mut candidate)?;
            let cand_value = objective(&candidate);
            if !cand_value.is_finite() {
                return Err(NumError::NonFiniteValue { at: candidate[0] });
            }
            if cand_value > value + 1e-15 * value.abs().max(1.0) * 1e-3 {
                step_len_sq = x.iter().zip(&candidate).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
                std::mem::swap(&mut x, &mut candidate);
                value = cand_value;
                improved = true;
                break;
            }
            step *= config.backtrack;
            if step < 1e-18 {
                break;
            }
        }

        if !improved || step_len_sq <= config.tol {
            return Ok(ProjGradOutcome { x, value, iterations: it + 1, converged: true });
        }
    }
    Ok(ProjGradOutcome { x, value, iterations: config.max_iter, converged: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::project_simplex;

    #[test]
    fn quadratic_over_box() {
        // maximize -(x-2)^2 over [0, 1]: optimum at x = 1.
        let out = projected_gradient_ascent(
            vec![0.0],
            |x| -(x[0] - 2.0).powi(2),
            |x, g| g[0] = -2.0 * (x[0] - 2.0),
            |x| {
                x[0] = x[0].clamp(0.0, 1.0);
                Ok(())
            },
            ProjGradConfig::default(),
        )
        .unwrap();
        assert!((out.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn concave_over_simplex_matches_kkt() {
        // maximize sum a_i * sqrt(x_i) over the simplex of radius 1.
        // KKT: a_i / (2 sqrt(x_i)) = mu  =>  x_i ∝ a_i^2.
        let a = [1.0, 2.0, 3.0];
        let expected: Vec<f64> = {
            let s: f64 = a.iter().map(|v| v * v).sum();
            a.iter().map(|v| v * v / s).collect()
        };
        let out = projected_gradient_ascent(
            vec![1.0 / 3.0; 3],
            |x| x.iter().zip(&a).map(|(xi, ai)| ai * xi.max(0.0).sqrt()).sum(),
            |x, g| {
                for i in 0..3 {
                    g[i] = a[i] / (2.0 * x[i].max(1e-12).sqrt());
                }
            },
            |x| project_simplex(x, 1.0),
            ProjGradConfig { max_iter: 20_000, step: 0.1, ..Default::default() },
        )
        .unwrap();
        for (xi, ei) in out.x.iter().zip(&expected) {
            assert!((xi - ei).abs() < 1e-3, "got {:?}, want {:?}", out.x, expected);
        }
    }

    #[test]
    fn rejects_empty_start() {
        let out = projected_gradient_ascent(
            vec![],
            |_x| 0.0,
            |_x, _g| {},
            |_x| Ok(()),
            ProjGradConfig::default(),
        );
        assert!(matches!(out, Err(NumError::DimensionMismatch { .. })));
    }

    #[test]
    fn detects_nan_objective() {
        let out = projected_gradient_ascent(
            vec![1.0],
            |_x| f64::NAN,
            |_x, g| g[0] = 0.0,
            |_x| Ok(()),
            ProjGradConfig::default(),
        );
        assert!(matches!(out, Err(NumError::NonFiniteValue { .. })));
    }

    #[test]
    fn objective_never_decreases() {
        // Track values through a callback objective and assert monotone non-decreasing.
        use std::cell::RefCell;
        let history = RefCell::new(Vec::new());
        let out = projected_gradient_ascent(
            vec![0.9, 0.1],
            |x| {
                let v = -(x[0] - 0.3).powi(2) - 2.0 * (x[1] - 0.7).powi(2);
                history.borrow_mut().push(v);
                v
            },
            |x, g| {
                g[0] = -2.0 * (x[0] - 0.3);
                g[1] = -4.0 * (x[1] - 0.7);
            },
            |x| project_simplex(x, 1.0),
            ProjGradConfig::default(),
        )
        .unwrap();
        assert!(out.converged);
        // The accepted-value sequence is monotone even if trial evaluations are not; just check
        // the final value is the best seen.
        let best = history.borrow().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(out.value >= best - 1e-12);
    }
}
