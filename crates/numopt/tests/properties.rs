//! Property-based tests of the numerical substrate.

use numopt::grid::{grid_min, linspace};
use numopt::lambertw::lambert_w0;
use numopt::roots::bisect;
use numopt::scalar::golden_section_min;
use numopt::simplex::project_simplex;
use proptest::prelude::*;

proptest! {
    /// `W0(x)·e^{W0(x)} = x` across the whole principal-branch domain.
    #[test]
    fn lambert_w_inverse_identity(x in -0.3678f64..1.0e6) {
        let w = lambert_w0(x).unwrap();
        let back = w * w.exp();
        prop_assert!((back - x).abs() <= 1e-9 * x.abs().max(1.0));
    }

    /// W0 is monotone increasing.
    #[test]
    fn lambert_w_monotone(a in -0.36f64..1.0e4, delta in 1e-6f64..1.0e4) {
        let w1 = lambert_w0(a).unwrap();
        let w2 = lambert_w0(a + delta).unwrap();
        prop_assert!(w2 >= w1);
    }

    /// The simplex projection lands on the simplex and is idempotent.
    #[test]
    fn simplex_projection_feasible_and_idempotent(
        v in proptest::collection::vec(-100.0f64..100.0, 1..40),
        radius in 0.1f64..50.0,
    ) {
        let mut x = v.clone();
        project_simplex(&mut x, radius).unwrap();
        let sum: f64 = x.iter().sum();
        prop_assert!((sum - radius).abs() < 1e-8 * radius.max(1.0));
        prop_assert!(x.iter().all(|&xi| xi >= -1e-12));
        let mut y = x.clone();
        project_simplex(&mut y, radius).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The projection never moves a point that is already on the simplex by more than the
    /// distance to any other candidate (optimality check against random feasible points).
    #[test]
    fn simplex_projection_is_closest_among_samples(
        v in proptest::collection::vec(-10.0f64..10.0, 2..10),
        radius in 0.5f64..5.0,
        seed_point in proptest::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let n = v.len().min(seed_point.len());
        let v = &v[..n];
        // Build a random feasible point from the seed by normalizing to the simplex.
        let total: f64 = seed_point[..n].iter().sum::<f64>().max(1e-9);
        let feasible: Vec<f64> = seed_point[..n].iter().map(|s| s / total * radius).collect();

        let mut projected = v.to_vec();
        project_simplex(&mut projected, radius).unwrap();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        prop_assert!(dist(v, &projected) <= dist(v, &feasible) + 1e-9);
    }

    /// Golden-section search matches a dense grid on random convex parabolas.
    #[test]
    fn golden_section_matches_grid_on_parabolas(center in -50.0f64..50.0, scale in 0.1f64..10.0) {
        let f = |x: f64| scale * (x - center) * (x - center) + 1.0;
        let m = golden_section_min(f, -100.0, 100.0, 1e-9, 500).unwrap();
        let axes = vec![linspace(-100.0, 100.0, 4001).unwrap()];
        let g = grid_min(&axes, |p| f(p[0])).unwrap();
        prop_assert!(m.value <= g.value + 1e-6);
        prop_assert!((m.argmin - center).abs() < 1e-4);
    }

    /// Bisection finds the root of any monotone cubic with a sign change.
    #[test]
    fn bisection_finds_root_of_monotone_cubic(shift in -100.0f64..100.0) {
        let f = |x: f64| x * x * x - shift;
        let out = bisect(f, -10.0, 10.0, 1e-12, 300);
        // Only valid when the root lies in the bracket.
        prop_assume!(shift.abs() <= 1000.0);
        let root = out.unwrap().root;
        prop_assert!((root * root * root - shift).abs() < 1e-6);
    }
}
