//! Property-based tests of the system model: cost formulas and feasibility projection.

use flsys::{Allocation, ScenarioArrays, ScenarioBuilder, Weights};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Projecting an arbitrary allocation always yields a feasible one, and evaluation on a
    /// feasible allocation produces finite, non-negative costs.
    #[test]
    fn projection_always_restores_feasibility(
        seed in 0u64..1000,
        devices in 2usize..12,
        p_scale in 0.0f64..5.0,
        f_scale in 0.0f64..5.0,
        b_scale in 0.0f64..5.0,
    ) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let mut alloc = Allocation::equal_split_max(&scenario);
        for p in &mut alloc.powers_w { *p *= p_scale; }
        for f in &mut alloc.frequencies_hz { *f *= f_scale; }
        for b in &mut alloc.bandwidths_hz { *b *= b_scale; }
        alloc.project_feasible(&scenario);
        prop_assert!(alloc.is_feasible(&scenario, 1e-6));

        let cost = scenario.cost(&alloc).unwrap();
        prop_assert!(cost.total_energy_j >= 0.0);
        prop_assert!(cost.round_time_s >= 0.0);
        prop_assert!(cost.total_energy_j.is_finite());
        // The weighted objective interpolates between the two totals.
        let w = Weights::new(0.3, 0.7).unwrap();
        let obj = cost.objective(w);
        prop_assert!(obj <= cost.total_energy_j.max(cost.total_time_s) + 1e-9);
        prop_assert!(obj >= cost.total_energy_j.min(cost.total_time_s) - 1e-9);
    }

    /// Raising any device's CPU frequency never increases the round completion time and never
    /// decreases the computation energy.
    #[test]
    fn frequency_monotonicity(seed in 0u64..1000, devices in 2usize..10, which in 0usize..10, bump in 1.1f64..4.0) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let idx = which % devices;
        let base = Allocation::equal_split_max(&scenario);
        let mut slow = base.clone();
        slow.frequencies_hz[idx] /= bump;
        let fast = base;
        let cost_slow = scenario.cost(&slow).unwrap();
        let cost_fast = scenario.cost(&fast).unwrap();
        prop_assert!(cost_fast.round_time_s <= cost_slow.round_time_s + 1e-12);
        prop_assert!(cost_fast.computation_energy_j >= cost_slow.computation_energy_j - 1e-12);
    }

    /// The struct-of-arrays cost kernel is **bit-identical** to the struct-walking one on
    /// arbitrary feasible allocations, across the whole 2–200 device range the sweeps use.
    /// Floating-point summation is order-sensitive, so this only holds because the lane
    /// kernel reproduces the exact operand grouping — `assert_eq!` on every `f64` field,
    /// no tolerance.
    #[test]
    fn soa_cost_kernel_is_bit_identical_to_struct_walk(
        seed in 0u64..1000,
        devices in 2usize..201,
        p_scale in 0.1f64..3.0,
        f_scale in 0.1f64..3.0,
        b_scale in 0.1f64..3.0,
    ) {
        let scenario = ScenarioBuilder::paper_default().with_devices(devices).build(seed).unwrap();
        let mut alloc = Allocation::equal_split_max(&scenario);
        for p in &mut alloc.powers_w { *p *= p_scale; }
        for f in &mut alloc.frequencies_hz { *f *= f_scale; }
        for b in &mut alloc.bandwidths_hz { *b *= b_scale; }
        alloc.project_feasible(&scenario);

        let arrays = ScenarioArrays::from_scenario(&scenario);
        let lanes = scenario.cost_summary_arrays(&arrays, &alloc).unwrap();
        let structs = scenario.cost_summary(&alloc).unwrap();
        prop_assert_eq!(lanes, structs);
    }

    /// `rebuild` into a reused [`ScenarioArrays`] — growing, shrinking, or same-size — is
    /// indistinguishable from a fresh `from_scenario` build: no stale lane tails, no
    /// cross-scenario leakage. This is the resize-safety contract the sweep engine relies
    /// on when one workspace serves cells of different device counts.
    #[test]
    fn soa_rebuild_is_resize_safe(
        seed in 0u64..500,
        first in 1usize..201,
        second in 1usize..201,
        third in 1usize..201,
    ) {
        let mut reused = ScenarioArrays::new();
        for (i, n) in [first, second, third].into_iter().enumerate() {
            let s = ScenarioBuilder::paper_default()
                .with_devices(n)
                .build(seed.wrapping_add(i as u64))
                .unwrap();
            reused.rebuild(&s);
            prop_assert_eq!(&reused, &ScenarioArrays::from_scenario(&s));
            prop_assert_eq!(reused.len(), n);
        }
    }

    /// Scenario generation is deterministic in the seed and scales sample counts as asked.
    #[test]
    fn scenario_generation_is_deterministic(seed in 0u64..500, devices in 1usize..30) {
        let builder = ScenarioBuilder::paper_default().with_devices(devices).with_total_samples(12_000);
        let a = builder.build(seed).unwrap();
        let b = builder.build(seed).unwrap();
        prop_assert_eq!(&a, &b);
        let total: u64 = a.devices.iter().map(|d| d.samples).sum();
        prop_assert_eq!(total, 12_000);
    }
}
