//! Energy formulas — equations (3)–(6) of the paper.

use crate::device::DeviceProfile;
use crate::params::SystemParams;

/// Transmission energy of device `n` in **one global round**: `E_n^trans = p_n · T_n^up`
/// (equation (3)), with `T_n^up = d_n / r_n` (equation (2)).
///
/// Returns `f64::INFINITY` if the rate is non-positive (the device can never finish its
/// upload), which is how infeasibility propagates into objective comparisons.
pub fn transmission_energy_per_round(device: &DeviceProfile, power_w: f64, rate_bps: f64) -> f64 {
    if rate_bps <= 0.0 {
        return f64::INFINITY;
    }
    power_w * device.upload_bits / rate_bps
}

/// Computation energy of device `n` in **one local iteration**:
/// `E_n^cmp' = κ · c_n · D_n · f_n²` (equation (4)).
pub fn computation_energy_per_local_iteration(
    params: &SystemParams,
    device: &DeviceProfile,
    frequency_hz: f64,
) -> f64 {
    params.kappa * device.cycles_per_local_iteration() * frequency_hz * frequency_hz
}

/// Computation energy of device `n` in **one global round**:
/// `E_n^cmp = κ · R_l · c_n · D_n · f_n²` (equation (5)).
pub fn computation_energy_per_round(
    params: &SystemParams,
    device: &DeviceProfile,
    frequency_hz: f64,
) -> f64 {
    params.rl() * computation_energy_per_local_iteration(params, device, frequency_hz)
}

/// Total energy over the whole training process (equation (6)):
/// `E = R_g · Σ_n (E_n^trans + E_n^cmp)`.
///
/// The slices must be indexed consistently (device `i` ↔ `powers[i]`, `rates[i]`,
/// `frequencies[i]`); the caller (`Scenario::evaluate`) guarantees the lengths match.
pub fn total_energy(
    params: &SystemParams,
    devices: &[DeviceProfile],
    powers_w: &[f64],
    rates_bps: &[f64],
    frequencies_hz: &[f64],
) -> f64 {
    let per_round: f64 = devices
        .iter()
        .enumerate()
        .map(|(i, dev)| {
            transmission_energy_per_round(dev, powers_w[i], rates_bps[i])
                + computation_energy_per_round(params, dev, frequencies_hz[i])
        })
        .sum();
    params.rg() * per_round
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireless::channel::ChannelGain;
    use wireless::units::{Hertz, Watts};

    fn device() -> DeviceProfile {
        DeviceProfile {
            samples: 500,
            cycles_per_sample: 2.0e4,
            upload_bits: 28_100.0,
            gain: ChannelGain::from_db(-100.0),
            p_min: Watts::new(1.0e-3),
            p_max: Watts::new(1.585e-2),
            f_min: Hertz::new(1.0e6),
            f_max: Hertz::from_ghz(2.0),
        }
    }

    #[test]
    fn transmission_energy_hand_check() {
        // 10 mW, 28.1 kbit at 2.81 Mbit/s -> 10 ms upload -> 0.1 mJ.
        let e = transmission_energy_per_round(&device(), 0.01, 2.81e6);
        assert!((e - 1.0e-4).abs() < 1e-12);
    }

    #[test]
    fn transmission_energy_infinite_for_zero_rate() {
        assert!(transmission_energy_per_round(&device(), 0.01, 0.0).is_infinite());
    }

    #[test]
    fn computation_energy_hand_check() {
        let params = SystemParams::paper_default();
        // kappa cD f^2 = 1e-28 * 1e7 * (1e9)^2 = 1e-3 J per local iteration.
        let per_iter = computation_energy_per_local_iteration(&params, &device(), 1.0e9);
        assert!((per_iter - 1.0e-3).abs() < 1e-12);
        // One global round = R_l = 10 local iterations.
        let per_round = computation_energy_per_round(&params, &device(), 1.0e9);
        assert!((per_round - 1.0e-2).abs() < 1e-12);
    }

    #[test]
    fn computation_energy_scales_quadratically() {
        let params = SystemParams::paper_default();
        let e1 = computation_energy_per_round(&params, &device(), 0.5e9);
        let e2 = computation_energy_per_round(&params, &device(), 1.0e9);
        assert!((e2 / e1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn total_energy_sums_and_scales_by_rounds() {
        let params = SystemParams::paper_default();
        let devices = vec![device(), device()];
        let powers = [0.01, 0.005];
        let rates = [2.81e6, 1.0e6];
        let freqs = [1.0e9, 0.5e9];
        let total = total_energy(&params, &devices, &powers, &rates, &freqs);
        let manual: f64 = (0..2)
            .map(|i| {
                transmission_energy_per_round(&devices[i], powers[i], rates[i])
                    + computation_energy_per_round(&params, &devices[i], freqs[i])
            })
            .sum::<f64>()
            * 400.0;
        assert!((total - manual).abs() < 1e-12);
        assert!(total > 0.0);
    }
}
