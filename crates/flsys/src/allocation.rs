//! Resource allocations and their cost evaluation.
//!
//! An [`Allocation`] is the decision vector of the optimization problem (8): one transmit
//! power, one CPU frequency and one bandwidth share per device. [`CostBreakdown`] is the
//! result of plugging an allocation into the energy/latency formulas — every algorithm in the
//! workspace (the paper's and all baselines) is scored through the same
//! [`crate::Scenario::evaluate`] path so comparisons are apples-to-apples.

use crate::device::DeviceProfile;
use crate::energy;
use crate::error::FlError;
use crate::latency;
use crate::scenario::Scenario;
use crate::weights::Weights;
use serde::{Deserialize, Serialize};
use wireless::channel::shannon_rate_raw;

/// One candidate solution of problem (8): per-device transmit power, CPU frequency and
/// bandwidth share.
#[derive(Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct Allocation {
    /// Transmit power of each device in watts (`p_n`).
    pub powers_w: Vec<f64>,
    /// CPU frequency of each device in hertz (`f_n`).
    pub frequencies_hz: Vec<f64>,
    /// Bandwidth allocated to each device in hertz (`B_n`).
    pub bandwidths_hz: Vec<f64>,
}

// Hand-written (not derived) so that `clone_from` delegates to `Vec::clone_from` and
// reuses the destination's capacity — the solver outer loops clone allocations every
// iteration, and the derived fallback (`*self = source.clone()`) would reallocate all
// three vectors each time, breaking the zero-allocation steady state.
impl Clone for Allocation {
    fn clone(&self) -> Self {
        Self {
            powers_w: self.powers_w.clone(),
            frequencies_hz: self.frequencies_hz.clone(),
            bandwidths_hz: self.bandwidths_hz.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.powers_w.clone_from(&source.powers_w);
        self.frequencies_hz.clone_from(&source.frequencies_hz);
        self.bandwidths_hz.clone_from(&source.bandwidths_hz);
    }
}

impl Allocation {
    /// Creates an allocation from raw vectors.
    pub fn new(powers_w: Vec<f64>, frequencies_hz: Vec<f64>, bandwidths_hz: Vec<f64>) -> Self {
        Self { powers_w, frequencies_hz, bandwidths_hz }
    }

    /// A simple feasible starting point: every device at maximum power, maximum frequency,
    /// and an equal share of the total bandwidth.
    pub fn equal_split_max(scenario: &Scenario) -> Self {
        let mut out = Self::default();
        out.set_equal_split_max(scenario);
        out
    }

    /// Overwrites `self` with [`Self::equal_split_max`]'s starting point, reusing the
    /// existing vector capacity — the hot-path form used once per solver run.
    pub fn set_equal_split_max(&mut self, scenario: &Scenario) {
        let n = scenario.devices.len();
        let share = scenario.params.total_bandwidth.value() / n.max(1) as f64;
        self.powers_w.clear();
        self.powers_w.extend(scenario.devices.iter().map(|d| d.p_max.value()));
        self.frequencies_hz.clear();
        self.frequencies_hz.extend(scenario.devices.iter().map(|d| d.f_max.value()));
        self.bandwidths_hz.clear();
        self.bandwidths_hz.resize(n, share);
    }

    /// The paper's initialization for the state-of-the-art comparison (Section VII-D):
    /// maximum power, maximum frequency, and `B/(2N)` bandwidth per device.
    pub fn half_split_max(scenario: &Scenario) -> Self {
        let mut out = Self::default();
        out.set_half_split_max(scenario);
        out
    }

    /// Overwrites `self` with [`Self::half_split_max`]'s starting point, reusing the
    /// existing vector capacity (see [`Self::set_equal_split_max`]).
    pub fn set_half_split_max(&mut self, scenario: &Scenario) {
        let n = scenario.devices.len();
        let share = scenario.params.total_bandwidth.value() / (2.0 * n.max(1) as f64);
        self.powers_w.clear();
        self.powers_w.extend(scenario.devices.iter().map(|d| d.p_max.value()));
        self.frequencies_hz.clear();
        self.frequencies_hz.extend(scenario.devices.iter().map(|d| d.f_max.value()));
        self.bandwidths_hz.clear();
        self.bandwidths_hz.resize(n, share);
    }

    /// Number of devices this allocation covers.
    pub fn len(&self) -> usize {
        self.powers_w.len()
    }

    /// Returns `true` if the allocation covers no devices.
    pub fn is_empty(&self) -> bool {
        self.powers_w.is_empty()
    }

    /// Checks that the three vectors have the same length and match the scenario size.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::AllocationSizeMismatch`] on any mismatch.
    pub fn check_shape(&self, scenario: &Scenario) -> Result<(), FlError> {
        let n = scenario.devices.len();
        for len in [self.powers_w.len(), self.frequencies_hz.len(), self.bandwidths_hz.len()] {
            if len != n {
                return Err(FlError::AllocationSizeMismatch { devices: n, got: len });
            }
        }
        Ok(())
    }

    /// Uplink Shannon rate of every device under this allocation (bit/s).
    pub fn rates_bps(&self, scenario: &Scenario) -> Vec<f64> {
        let mut rates = Vec::with_capacity(scenario.devices.len());
        self.rates_bps_into(scenario, &mut rates);
        rates
    }

    /// [`Self::rates_bps`] into a caller-owned buffer (cleared first), so sweep hot paths can
    /// reuse one allocation across scenarios.
    pub fn rates_bps_into(&self, scenario: &Scenario, out: &mut Vec<f64>) {
        let n0 = scenario.params.noise.watts_per_hz();
        out.clear();
        out.extend(scenario.devices.iter().enumerate().map(|(i, dev)| {
            shannon_rate_raw(self.powers_w[i], self.bandwidths_hz[i], dev.gain.value(), n0)
        }));
    }

    /// Returns `true` if the allocation satisfies every constraint of problem (8) within the
    /// given absolute/relative tolerance: power boxes (8a), frequency boxes (8b), the total
    /// bandwidth budget (8c), and non-negative bandwidths.
    pub fn is_feasible(&self, scenario: &Scenario, tol: f64) -> bool {
        if self.check_shape(scenario).is_err() {
            return false;
        }
        let b_total = scenario.params.total_bandwidth.value();
        let mut b_sum = 0.0;
        for (i, dev) in scenario.devices.iter().enumerate() {
            let p = self.powers_w[i];
            let f = self.frequencies_hz[i];
            let b = self.bandwidths_hz[i];
            if !(p.is_finite() && f.is_finite() && b.is_finite()) {
                return false;
            }
            if p < dev.p_min.value() - tol * dev.p_max.value().max(1.0)
                || p > dev.p_max.value() + tol * dev.p_max.value().max(1.0)
            {
                return false;
            }
            if f < dev.f_min.value() - tol * dev.f_max.value()
                || f > dev.f_max.value() + tol * dev.f_max.value()
            {
                return false;
            }
            if b < -tol * b_total {
                return false;
            }
            b_sum += b;
        }
        b_sum <= b_total * (1.0 + tol)
    }

    /// Projects the allocation onto the feasible set of problem (8): clamps powers and
    /// frequencies into their boxes, floors bandwidths at zero, and rescales bandwidths
    /// proportionally if their sum exceeds the budget.
    pub fn project_feasible(&mut self, scenario: &Scenario) {
        let b_total = scenario.params.total_bandwidth.value();
        for (i, dev) in scenario.devices.iter().enumerate() {
            self.powers_w[i] = dev.clamp_power(self.powers_w[i]);
            self.frequencies_hz[i] = dev.clamp_frequency(self.frequencies_hz[i]);
            if !self.bandwidths_hz[i].is_finite() || self.bandwidths_hz[i] < 0.0 {
                self.bandwidths_hz[i] = 0.0;
            }
        }
        let sum: f64 = self.bandwidths_hz.iter().sum();
        if sum > b_total && sum > 0.0 {
            let scale = b_total / sum;
            for b in &mut self.bandwidths_hz {
                *b *= scale;
            }
        }
    }

    /// Largest absolute component-wise difference to another allocation (the convergence
    /// metric `|sol_k − sol_{k−1}|` of Algorithm 2), with each component normalized by its
    /// own typical magnitude so watts, hertz and gigahertz are comparable.
    pub fn normalized_distance(&self, other: &Allocation) -> f64 {
        fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-12))
                .fold(0.0, f64::max)
        }
        rel_diff(&self.powers_w, &other.powers_w)
            .max(rel_diff(&self.frequencies_hz, &other.frequencies_hz))
            .max(rel_diff(&self.bandwidths_hz, &other.bandwidths_hz))
    }
}

/// Cost of one device under an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceCost {
    /// Uplink rate (bit/s).
    pub rate_bps: f64,
    /// Upload time per round (s).
    pub upload_time_s: f64,
    /// Computation time per round (s).
    pub computation_time_s: f64,
    /// Transmission energy per round (J).
    pub transmission_energy_j: f64,
    /// Computation energy per round (J).
    pub computation_energy_j: f64,
}

impl DeviceCost {
    /// Per-round completion time of this device.
    pub fn round_time_s(&self) -> f64 {
        self.upload_time_s + self.computation_time_s
    }

    /// Per-round energy of this device.
    pub fn round_energy_j(&self) -> f64 {
        self.transmission_energy_j + self.computation_energy_j
    }
}

/// Full cost of an allocation over the whole training process.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Total energy `E` of equation (6), in joules.
    pub total_energy_j: f64,
    /// Total transmission energy (all devices, all rounds), in joules.
    pub transmission_energy_j: f64,
    /// Total computation energy (all devices, all rounds), in joules.
    pub computation_energy_j: f64,
    /// Per-round completion time `max_n (T_n^cmp + T_n^up)`, in seconds.
    pub round_time_s: f64,
    /// Total completion time `R_g · round_time`, in seconds.
    pub total_time_s: f64,
    /// Per-device cost detail.
    pub per_device: Vec<DeviceCost>,
}

impl CostBreakdown {
    /// The weighted objective of problem (9): `w1·E + w2·R_g·T`.
    pub fn objective(&self, weights: Weights) -> f64 {
        weights.energy() * self.total_energy_j + weights.time() * self.total_time_s
    }

    /// Index and per-round time of the straggler (slowest device), if any.
    pub fn straggler(&self) -> Option<(usize, f64)> {
        self.per_device
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.round_time_s()))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
    }
}

/// The scalar totals of a [`CostBreakdown`] — everything the optimizers and sweep
/// aggregates consume, with no per-device detail and therefore no owned buffers.
///
/// Produced by [`Scenario::cost_summary`](crate::Scenario::cost_summary), whose fused
/// single-pass evaluation is bit-identical to the corresponding [`CostBreakdown`] fields
/// (same per-device terms, same summation order) while performing zero heap allocations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostSummary {
    /// Total energy `E` of equation (6), in joules.
    pub total_energy_j: f64,
    /// Total transmission energy (all devices, all rounds), in joules.
    pub transmission_energy_j: f64,
    /// Total computation energy (all devices, all rounds), in joules.
    pub computation_energy_j: f64,
    /// Per-round completion time `max_n (T_n^cmp + T_n^up)`, in seconds.
    pub round_time_s: f64,
    /// Total completion time `R_g · round_time`, in seconds.
    pub total_time_s: f64,
}

impl CostSummary {
    /// The weighted objective of problem (9): `w1·E + w2·R_g·T`.
    pub fn objective(&self, weights: Weights) -> f64 {
        weights.energy() * self.total_energy_j + weights.time() * self.total_time_s
    }
}

pub(crate) fn evaluate_allocation_summary(
    scenario: &Scenario,
    allocation: &Allocation,
) -> Result<CostSummary, FlError> {
    allocation.check_shape(scenario)?;
    let params = &scenario.params;
    let n0 = params.noise.watts_per_hz();

    // One fused pass, with exactly the per-device terms and left-to-right summation order
    // of `evaluate_allocation`, so the totals are bit-identical to `CostBreakdown`'s.
    let mut transmission_sum = 0.0;
    let mut computation_sum = 0.0;
    let mut round_time_s = 0.0_f64;
    for (i, dev) in scenario.devices.iter().enumerate() {
        let rate = shannon_rate_raw(
            allocation.powers_w[i],
            allocation.bandwidths_hz[i],
            dev.gain.value(),
            n0,
        );
        let upload_time_s = latency::upload_time(dev, rate);
        let computation_time_s =
            latency::computation_time(params, dev, allocation.frequencies_hz[i]);
        transmission_sum +=
            energy::transmission_energy_per_round(dev, allocation.powers_w[i], rate);
        computation_sum +=
            energy::computation_energy_per_round(params, dev, allocation.frequencies_hz[i]);
        round_time_s = round_time_s.max(upload_time_s + computation_time_s);
    }

    let transmission_energy_j = params.rg() * transmission_sum;
    let computation_energy_j = params.rg() * computation_sum;
    Ok(CostSummary {
        total_energy_j: transmission_energy_j + computation_energy_j,
        transmission_energy_j,
        computation_energy_j,
        round_time_s,
        total_time_s: params.rg() * round_time_s,
    })
}

pub(crate) fn evaluate_allocation(
    scenario: &Scenario,
    allocation: &Allocation,
) -> Result<CostBreakdown, FlError> {
    allocation.check_shape(scenario)?;
    let params = &scenario.params;
    let devices: &[DeviceProfile] = &scenario.devices;
    let rates = allocation.rates_bps(scenario);

    let mut per_device = Vec::with_capacity(devices.len());
    for (i, dev) in devices.iter().enumerate() {
        per_device.push(DeviceCost {
            rate_bps: rates[i],
            upload_time_s: latency::upload_time(dev, rates[i]),
            computation_time_s: latency::computation_time(
                params,
                dev,
                allocation.frequencies_hz[i],
            ),
            transmission_energy_j: energy::transmission_energy_per_round(
                dev,
                allocation.powers_w[i],
                rates[i],
            ),
            computation_energy_j: energy::computation_energy_per_round(
                params,
                dev,
                allocation.frequencies_hz[i],
            ),
        });
    }

    let transmission_energy_j: f64 =
        params.rg() * per_device.iter().map(|c| c.transmission_energy_j).sum::<f64>();
    let computation_energy_j: f64 =
        params.rg() * per_device.iter().map(|c| c.computation_energy_j).sum::<f64>();
    let round_time_s = per_device.iter().map(DeviceCost::round_time_s).fold(0.0, f64::max);

    Ok(CostBreakdown {
        total_energy_j: transmission_energy_j + computation_energy_j,
        transmission_energy_j,
        computation_energy_j,
        round_time_s,
        total_time_s: params.rg() * round_time_s,
        per_device,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    fn scenario() -> Scenario {
        ScenarioBuilder::paper_default().with_devices(5).build(1).unwrap()
    }

    #[test]
    fn equal_split_is_feasible() {
        let s = scenario();
        let a = Allocation::equal_split_max(&s);
        assert!(a.is_feasible(&s, 1e-9));
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn half_split_uses_half_the_band() {
        let s = scenario();
        let a = Allocation::half_split_max(&s);
        let sum: f64 = a.bandwidths_hz.iter().sum();
        assert!((sum - 0.5 * s.params.total_bandwidth.value()).abs() < 1.0);
        assert!(a.is_feasible(&s, 1e-9));
    }

    #[test]
    fn shape_mismatch_detected() {
        let s = scenario();
        let mut a = Allocation::equal_split_max(&s);
        a.powers_w.pop();
        assert!(matches!(a.check_shape(&s), Err(FlError::AllocationSizeMismatch { .. })));
        assert!(!a.is_feasible(&s, 1e-9));
    }

    #[test]
    fn infeasible_when_power_exceeds_box() {
        let s = scenario();
        let mut a = Allocation::equal_split_max(&s);
        a.powers_w[0] = s.devices[0].p_max.value() * 2.0;
        assert!(!a.is_feasible(&s, 1e-9));
        a.project_feasible(&s);
        assert!(a.is_feasible(&s, 1e-9));
    }

    #[test]
    fn infeasible_when_bandwidth_over_budget() {
        let s = scenario();
        let mut a = Allocation::equal_split_max(&s);
        for b in &mut a.bandwidths_hz {
            *b *= 3.0;
        }
        assert!(!a.is_feasible(&s, 1e-9));
        a.project_feasible(&s);
        assert!(a.is_feasible(&s, 1e-6));
        let sum: f64 = a.bandwidths_hz.iter().sum();
        assert!(sum <= s.params.total_bandwidth.value() * (1.0 + 1e-9));
    }

    #[test]
    fn evaluation_matches_formula_components() {
        let s = scenario();
        let a = Allocation::equal_split_max(&s);
        let cost = evaluate_allocation(&s, &a).unwrap();
        assert_eq!(cost.per_device.len(), 5);
        assert!(
            (cost.total_energy_j - (cost.transmission_energy_j + cost.computation_energy_j)).abs()
                < 1e-9
        );
        assert!((cost.total_time_s - s.params.rg() * cost.round_time_s).abs() < 1e-9);
        // Straggler time equals the round time.
        let (idx, t) = cost.straggler().unwrap();
        assert!(idx < 5);
        assert!((t - cost.round_time_s).abs() < 1e-12);
        // Objective is a convex combination of the two totals.
        let w = Weights::new(0.3, 0.7).unwrap();
        let obj = cost.objective(w);
        assert!((obj - (0.3 * cost.total_energy_j + 0.7 * cost.total_time_s)).abs() < 1e-9);
    }

    #[test]
    fn cost_summary_is_bit_identical_to_full_breakdown() {
        for seed in [1u64, 7, 42] {
            let s = ScenarioBuilder::paper_default().with_devices(8).build(seed).unwrap();
            let a = Allocation::equal_split_max(&s);
            let full = evaluate_allocation(&s, &a).unwrap();
            let summary = evaluate_allocation_summary(&s, &a).unwrap();
            assert_eq!(summary.total_energy_j, full.total_energy_j);
            assert_eq!(summary.transmission_energy_j, full.transmission_energy_j);
            assert_eq!(summary.computation_energy_j, full.computation_energy_j);
            assert_eq!(summary.round_time_s, full.round_time_s);
            assert_eq!(summary.total_time_s, full.total_time_s);
            let w = Weights::new(0.3, 0.7).unwrap();
            assert_eq!(summary.objective(w), full.objective(w));
        }
        // Shape mismatches are rejected the same way.
        let s = ScenarioBuilder::paper_default().with_devices(4).build(0).unwrap();
        let bad = Allocation::new(vec![0.01], vec![1e9], vec![1e6]);
        assert!(evaluate_allocation_summary(&s, &bad).is_err());
    }

    #[test]
    fn set_equal_split_max_overwrites_any_previous_contents() {
        let s5 = ScenarioBuilder::paper_default().with_devices(5).build(1).unwrap();
        let s3 = ScenarioBuilder::paper_default().with_devices(3).build(2).unwrap();
        let mut a = Allocation::new(vec![f64::NAN; 9], vec![0.0; 2], vec![-1.0; 7]);
        a.set_equal_split_max(&s5);
        assert_eq!(a, Allocation::equal_split_max(&s5));
        a.set_equal_split_max(&s3);
        assert_eq!(a, Allocation::equal_split_max(&s3));
    }

    #[test]
    fn normalized_distance_zero_for_identical() {
        let s = scenario();
        let a = Allocation::equal_split_max(&s);
        assert_eq!(a.normalized_distance(&a), 0.0);
        let mut b = a.clone();
        b.powers_w[0] *= 1.1;
        assert!(a.normalized_distance(&b) > 0.05);
    }

    #[test]
    fn rates_positive_for_reasonable_allocation() {
        let s = scenario();
        let a = Allocation::equal_split_max(&s);
        for r in a.rates_bps(&s) {
            assert!(r > 1.0e4, "rate {r} suspiciously low");
        }
    }
}
