//! Struct-of-arrays view of a scenario — the solver hot-path layout.
//!
//! [`Scenario`] stores one [`DeviceProfile`](crate::DeviceProfile) struct per device, which
//! is the right construction-time API but the wrong memory layout for the solver inner
//! loops: every per-device pass (the Theorem-2 KKT solve, Subproblem 1's golden-section
//! probes, the cost kernels) reads one or two `f64` fields out of each ~100-byte profile,
//! so an array-of-structs walk wastes most of every cache line and defeats
//! auto-vectorization. [`ScenarioArrays`] flattens the quantities those loops actually
//! read into contiguous `f64` lanes, built once per scenario (`O(n)`) and reused across
//! every inner iteration.
//!
//! The lanes store the *same* primitive values the profile getters return — no
//! re-association, no precombined products beyond [`cycles_per_iter`]
//! (`c_n · D_n`, which [`DeviceProfile::cycles_per_local_iteration`] already computes as a
//! single multiply) — so any consumer that evaluates the same arithmetic expression over a
//! lane produces bit-identical results to the struct walk. Regression tests pin this for
//! every lane and for the lane-based cost kernel.
//!
//! [`DeviceProfile`]: crate::DeviceProfile
//! [`DeviceProfile::cycles_per_local_iteration`]: crate::DeviceProfile::cycles_per_local_iteration
//! [`cycles_per_iter`]: ScenarioArrays::cycles_per_iter

use crate::allocation::{Allocation, CostSummary};
use crate::error::FlError;
use crate::scenario::Scenario;
use wireless::channel::shannon_rate_raw;

/// Contiguous per-device `f64` lanes of everything the solver inner loops read.
///
/// Built from a [`Scenario`] with [`ScenarioArrays::rebuild`] (capacity-reusing — the
/// sweep hot path rebuilds into the same allocation for every scenario of a cell-group) or
/// [`ScenarioArrays::from_scenario`]. The struct is plain data: all lanes are public, have
/// equal length [`ScenarioArrays::len`], and are indexed consistently with
/// `Scenario::devices`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioArrays {
    /// Linear channel power gain `g_n`.
    pub gain: Vec<f64>,
    /// Upload payload `d_n` in bits.
    pub upload_bits: Vec<f64>,
    /// CPU cycles per local iteration `c_n · D_n`
    /// (exactly [`DeviceProfile::cycles_per_local_iteration`]).
    ///
    /// [`DeviceProfile::cycles_per_local_iteration`]:
    /// crate::DeviceProfile::cycles_per_local_iteration
    pub cycles_per_iter: Vec<f64>,
    /// Minimum transmit power `p_n^min` in watts.
    pub p_min_w: Vec<f64>,
    /// Maximum transmit power `p_n^max` in watts.
    pub p_max_w: Vec<f64>,
    /// Minimum CPU frequency `f_n^min` in hertz.
    pub f_min_hz: Vec<f64>,
    /// Maximum CPU frequency `f_n^max` in hertz.
    pub f_max_hz: Vec<f64>,
}

impl ScenarioArrays {
    /// An empty view (zero devices). Usable immediately; [`ScenarioArrays::rebuild`] fills
    /// it in.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty view with every lane pre-sized for `n` devices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            gain: Vec::with_capacity(n),
            upload_bits: Vec::with_capacity(n),
            cycles_per_iter: Vec::with_capacity(n),
            p_min_w: Vec::with_capacity(n),
            p_max_w: Vec::with_capacity(n),
            f_min_hz: Vec::with_capacity(n),
            f_max_hz: Vec::with_capacity(n),
        }
    }

    /// Builds the lanes of `scenario` into a fresh view.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        let mut out = Self::new();
        out.rebuild(scenario);
        out
    }

    /// Rebuilds every lane from `scenario`, reusing the existing vector capacity: after
    /// the first build at a given device count, rebuilding at the same (or a smaller)
    /// count performs **zero heap allocations** — the PR 3 zero-allocation contract for
    /// the solver steady state.
    pub fn rebuild(&mut self, scenario: &Scenario) {
        let devices = &scenario.devices;
        self.gain.clear();
        self.gain.extend(devices.iter().map(|d| d.gain.value()));
        self.upload_bits.clear();
        self.upload_bits.extend(devices.iter().map(|d| d.upload_bits));
        self.cycles_per_iter.clear();
        self.cycles_per_iter.extend(devices.iter().map(|d| d.cycles_per_local_iteration()));
        self.p_min_w.clear();
        self.p_min_w.extend(devices.iter().map(|d| d.p_min.value()));
        self.p_max_w.clear();
        self.p_max_w.extend(devices.iter().map(|d| d.p_max.value()));
        self.f_min_hz.clear();
        self.f_min_hz.extend(devices.iter().map(|d| d.f_min.value()));
        self.f_max_hz.clear();
        self.f_max_hz.extend(devices.iter().map(|d| d.f_max.value()));
    }

    /// Number of devices the lanes cover.
    pub fn len(&self) -> usize {
        self.gain.len()
    }

    /// Returns `true` if the view covers no devices.
    pub fn is_empty(&self) -> bool {
        self.gain.is_empty()
    }
}

/// Lane-based twin of [`Scenario::cost_summary`]: the same fused single pass over the
/// devices, reading the [`ScenarioArrays`] lanes instead of the profile structs. Performs
/// exactly the per-device arithmetic (and left-to-right summation order) of the
/// struct-walking kernel, so the result is **bit-identical** — a regression test pins this.
///
/// # Errors
///
/// Returns [`FlError::AllocationSizeMismatch`] if the allocation or the lanes do not match
/// the scenario's device count.
pub(crate) fn evaluate_allocation_summary_arrays(
    scenario: &Scenario,
    arrays: &ScenarioArrays,
    allocation: &Allocation,
) -> Result<CostSummary, FlError> {
    allocation.check_shape(scenario)?;
    let n = scenario.devices.len();
    if arrays.len() != n {
        return Err(FlError::AllocationSizeMismatch { devices: n, got: arrays.len() });
    }
    let params = &scenario.params;
    let n0 = params.noise.watts_per_hz();
    let rl = params.rl();
    let kappa = params.kappa;

    let mut transmission_sum = 0.0;
    let mut computation_sum = 0.0;
    let mut round_time_s = 0.0_f64;
    // Bounds-check-free lane walk: one zip over equal-length slices. Each term reproduces
    // the corresponding `energy::`/`latency::` helper verbatim (same operand grouping).
    let it = allocation
        .powers_w
        .iter()
        .zip(&allocation.bandwidths_hz)
        .zip(&allocation.frequencies_hz)
        .zip(&arrays.gain)
        .zip(&arrays.upload_bits)
        .zip(&arrays.cycles_per_iter);
    for (((((&p, &b), &f), &g), &d_bits), &cd) in it {
        let rate = shannon_rate_raw(p, b, g, n0);
        let upload_time_s = if rate <= 0.0 { f64::INFINITY } else { d_bits / rate };
        let computation_time_s = if f <= 0.0 { f64::INFINITY } else { rl * cd / f };
        transmission_sum += if rate <= 0.0 { f64::INFINITY } else { p * d_bits / rate };
        computation_sum += rl * (kappa * cd * f * f);
        round_time_s = round_time_s.max(upload_time_s + computation_time_s);
    }

    let transmission_energy_j = params.rg() * transmission_sum;
    let computation_energy_j = params.rg() * computation_sum;
    Ok(CostSummary {
        total_energy_j: transmission_energy_j + computation_energy_j,
        transmission_energy_j,
        computation_energy_j,
        round_time_s,
        total_time_s: params.rg() * round_time_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioBuilder;

    #[test]
    fn lanes_match_the_profile_getters_exactly() {
        let s = ScenarioBuilder::paper_default().with_devices(17).build(5).unwrap();
        let a = ScenarioArrays::from_scenario(&s);
        assert_eq!(a.len(), 17);
        assert!(!a.is_empty());
        for (i, d) in s.devices.iter().enumerate() {
            assert_eq!(a.gain[i], d.gain.value());
            assert_eq!(a.upload_bits[i], d.upload_bits);
            assert_eq!(a.cycles_per_iter[i], d.cycles_per_local_iteration());
            assert_eq!(a.p_min_w[i], d.p_min.value());
            assert_eq!(a.p_max_w[i], d.p_max.value());
            assert_eq!(a.f_min_hz[i], d.f_min.value());
            assert_eq!(a.f_max_hz[i], d.f_max.value());
        }
    }

    #[test]
    fn rebuild_is_resize_safe_across_device_counts() {
        let mut a = ScenarioArrays::new();
        assert!(a.is_empty());
        for n in [10usize, 4, 7, 1, 12] {
            let s = ScenarioBuilder::paper_default().with_devices(n).build(n as u64).unwrap();
            a.rebuild(&s);
            assert_eq!(a, ScenarioArrays::from_scenario(&s), "stale lanes at n = {n}");
        }
    }

    #[test]
    fn lane_cost_kernel_is_bit_identical_to_struct_kernel() {
        for seed in [1u64, 7, 42] {
            let s = ScenarioBuilder::paper_default().with_devices(9).build(seed).unwrap();
            let arrays = ScenarioArrays::from_scenario(&s);
            let alloc = Allocation::equal_split_max(&s);
            let lanes = evaluate_allocation_summary_arrays(&s, &arrays, &alloc).unwrap();
            let structs = s.cost_summary(&alloc).unwrap();
            assert_eq!(lanes, structs);
        }
    }

    #[test]
    fn lane_cost_kernel_rejects_mismatched_lanes() {
        let s5 = ScenarioBuilder::paper_default().with_devices(5).build(1).unwrap();
        let s3 = ScenarioBuilder::paper_default().with_devices(3).build(1).unwrap();
        let arrays = ScenarioArrays::from_scenario(&s3);
        let alloc = Allocation::equal_split_max(&s5);
        assert!(evaluate_allocation_summary_arrays(&s5, &arrays, &alloc).is_err());
    }

    #[test]
    fn lane_cost_kernel_propagates_infeasible_rates() {
        let s = ScenarioBuilder::paper_default().with_devices(3).build(2).unwrap();
        let arrays = ScenarioArrays::from_scenario(&s);
        let mut alloc = Allocation::equal_split_max(&s);
        alloc.bandwidths_hz[1] = 0.0; // zero rate -> infinite upload time and energy
        let summary = evaluate_allocation_summary_arrays(&s, &arrays, &alloc).unwrap();
        assert!(summary.total_energy_j.is_infinite());
        assert!(summary.round_time_s.is_infinite());
        assert_eq!(summary, s.cost_summary(&alloc).unwrap());
    }
}
