//! Per-device profiles.

use crate::error::FlError;
use serde::{Deserialize, Serialize};
use wireless::channel::ChannelGain;
use wireless::units::{Hertz, Watts};

/// Everything the optimizer needs to know about one participating device `n`.
///
/// The fields mirror Table I of the paper: dataset size `D_n`, CPU cycles per sample `c_n`,
/// upload payload `d_n`, channel gain `g_n`, and the box constraints on transmit power and
/// CPU frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Number of local training samples `D_n`.
    pub samples: u64,
    /// CPU cycles needed to process one sample, `c_n`.
    pub cycles_per_sample: f64,
    /// Size of the model update uploaded each global round, `d_n`, in bits.
    pub upload_bits: f64,
    /// Linear channel power gain `g_n` to the base station.
    pub gain: ChannelGain,
    /// Minimum transmit power `p_n^min`.
    pub p_min: Watts,
    /// Maximum transmit power `p_n^max`.
    pub p_max: Watts,
    /// Minimum CPU frequency `f_n^min`.
    pub f_min: Hertz,
    /// Maximum CPU frequency `f_n^max`.
    pub f_max: Hertz,
}

impl DeviceProfile {
    /// Validates the physical ranges of the profile.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidParameter`] when a quantity is non-positive where it must be
    /// positive, or a box constraint is inverted (`min > max`).
    pub fn validate(&self) -> Result<(), FlError> {
        if self.samples == 0 {
            return Err(FlError::InvalidParameter { name: "samples", value: 0.0 });
        }
        if self.cycles_per_sample <= 0.0 || !self.cycles_per_sample.is_finite() {
            return Err(FlError::InvalidParameter {
                name: "cycles_per_sample",
                value: self.cycles_per_sample,
            });
        }
        if self.upload_bits <= 0.0 || !self.upload_bits.is_finite() {
            return Err(FlError::InvalidParameter { name: "upload_bits", value: self.upload_bits });
        }
        if self.p_min.value() < 0.0 || self.p_max.value() <= 0.0 || self.p_min > self.p_max {
            return Err(FlError::InvalidParameter {
                name: "p_min..p_max",
                value: self.p_min.value(),
            });
        }
        if self.f_min.value() < 0.0 || self.f_max.value() <= 0.0 || self.f_min > self.f_max {
            return Err(FlError::InvalidParameter {
                name: "f_min..f_max",
                value: self.f_min.value(),
            });
        }
        Ok(())
    }

    /// Total CPU cycles for one **local iteration** over the device's dataset: `c_n · D_n`.
    pub fn cycles_per_local_iteration(&self) -> f64 {
        self.cycles_per_sample * self.samples as f64
    }

    /// Clamps a power value into the device's `[p_min, p_max]` box.
    pub fn clamp_power(&self, p: f64) -> f64 {
        numopt::scalar::clamp(p, self.p_min.value(), self.p_max.value())
    }

    /// Clamps a frequency value into the device's `[f_min, f_max]` box.
    pub fn clamp_frequency(&self, f: f64) -> f64 {
        numopt::scalar::clamp(f, self.f_min.value(), self.f_max.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_device() -> DeviceProfile {
        DeviceProfile {
            samples: 500,
            cycles_per_sample: 2.0e4,
            upload_bits: 28_100.0,
            gain: ChannelGain::from_db(-105.0),
            p_min: Watts::new(1.0e-3),
            p_max: Watts::new(1.585e-2),
            f_min: Hertz::new(1.0e6),
            f_max: Hertz::from_ghz(2.0),
        }
    }

    #[test]
    fn valid_device_passes() {
        assert!(sample_device().validate().is_ok());
    }

    #[test]
    fn cycles_per_local_iteration_formula() {
        let d = sample_device();
        assert_eq!(d.cycles_per_local_iteration(), 1.0e7);
    }

    #[test]
    fn validation_catches_inverted_boxes() {
        let mut d = sample_device();
        d.p_min = Watts::new(1.0);
        assert!(d.validate().is_err());
        let mut d = sample_device();
        d.f_min = Hertz::from_ghz(3.0);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_catches_degenerate_values() {
        let mut d = sample_device();
        d.samples = 0;
        assert!(d.validate().is_err());
        let mut d = sample_device();
        d.cycles_per_sample = -1.0;
        assert!(d.validate().is_err());
        let mut d = sample_device();
        d.upload_bits = 0.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn clamping_respects_boxes() {
        let d = sample_device();
        assert_eq!(d.clamp_power(1.0), d.p_max.value());
        assert_eq!(d.clamp_power(0.0), d.p_min.value());
        assert_eq!(d.clamp_frequency(5.0e9), d.f_max.value());
        assert_eq!(d.clamp_frequency(0.0), d.f_min.value());
    }
}
