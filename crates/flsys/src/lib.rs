//! # flsys
//!
//! The federated-learning *system model* of the ICDCS 2022 paper: devices, their computation
//! and communication parameters, the energy and latency formulas (equations (1)–(7)), the
//! weighted objective (8)/(9), and generators for the simulation scenarios of Section VII-A.
//!
//! This crate contains no optimization — it is the substrate that both the paper's algorithm
//! (`fedopt-core`) and every baseline (`baselines`) evaluate against, which guarantees that
//! all schemes are scored by exactly the same formulas.
//!
//! ## Example
//!
//! ```rust
//! use flsys::{Allocation, ScenarioBuilder, Weights};
//!
//! # fn main() -> Result<(), flsys::FlError> {
//! let scenario = ScenarioBuilder::paper_default().with_devices(8).build(7)?;
//! // A trivially feasible allocation: max power, equal bandwidth, max frequency.
//! let alloc = Allocation::equal_split_max(&scenario);
//! let weights = Weights::new(0.5, 0.5)?;
//! let cost = scenario.evaluate(&alloc, weights)?;
//! assert!(cost.total_energy_j > 0.0);
//! assert!(cost.total_time_s > 0.0);
//! assert!(alloc.is_feasible(&scenario, 1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod arrays;
pub mod device;
pub mod energy;
pub mod error;
pub mod latency;
pub mod params;
pub mod scenario;
pub mod weights;

pub use allocation::{Allocation, CostBreakdown, CostSummary, DeviceCost};
pub use arrays::ScenarioArrays;
pub use device::DeviceProfile;
pub use error::FlError;
pub use params::SystemParams;
pub use scenario::{Scenario, ScenarioBuilder};
pub use weights::Weights;
