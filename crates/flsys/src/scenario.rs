//! Scenario generation — the simulation setup of Section VII-A.
//!
//! A [`Scenario`] bundles the global [`SystemParams`] with one [`DeviceProfile`] per device.
//! [`ScenarioBuilder`] reproduces the paper's parameter table and exposes every knob the
//! evaluation sweeps (number of devices, disc radius, power/frequency caps, sample counts,
//! round counts), so each figure's experiment is a couple of builder calls.

use crate::allocation::{
    evaluate_allocation, evaluate_allocation_summary, Allocation, CostBreakdown, CostSummary,
};
use crate::device::DeviceProfile;
use crate::error::FlError;
use crate::params::SystemParams;
use crate::weights::Weights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wireless::channel::ChannelGain;
use wireless::pathloss::PathLossModel;
use wireless::placement::DiscPlacement;
use wireless::shadowing::LogNormalShadowing;
use wireless::units::{Dbm, Hertz, Kilometres};

/// A fully instantiated FL deployment: global parameters plus one profile per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Global system parameters.
    pub params: SystemParams,
    /// Per-device profiles (dataset, CPU, channel, boxes).
    pub devices: Vec<DeviceProfile>,
}

impl Scenario {
    /// Creates a scenario after validating every component.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoDevices`] for an empty device list, or the underlying
    /// [`FlError::InvalidParameter`] if any profile or the global parameters are malformed.
    pub fn new(params: SystemParams, devices: Vec<DeviceProfile>) -> Result<Self, FlError> {
        params.validate()?;
        if devices.is_empty() {
            return Err(FlError::NoDevices);
        }
        for d in &devices {
            d.validate()?;
        }
        Ok(Self { params, devices })
    }

    /// Number of devices `N`.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Evaluates an allocation: energy, latency, and per-device breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::AllocationSizeMismatch`] if the allocation does not match the
    /// scenario's device count. (`weights` only affects the scalar objective, which the
    /// returned [`CostBreakdown::objective`] computes on demand — it is accepted here so call
    /// sites read naturally and future cost terms can depend on it.)
    pub fn evaluate(
        &self,
        allocation: &Allocation,
        _weights: Weights,
    ) -> Result<CostBreakdown, FlError> {
        evaluate_allocation(self, allocation)
    }

    /// Evaluates an allocation without specifying weights (identical cost breakdown).
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::evaluate`].
    pub fn cost(&self, allocation: &Allocation) -> Result<CostBreakdown, FlError> {
        evaluate_allocation(self, allocation)
    }

    /// Evaluates an allocation's scalar totals only — bit-identical to the corresponding
    /// [`CostBreakdown`] fields, computed in one fused pass with **zero heap allocations**
    /// (the solver and sweep hot-path form; see [`CostSummary`]).
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::evaluate`].
    pub fn cost_summary(&self, allocation: &Allocation) -> Result<CostSummary, FlError> {
        evaluate_allocation_summary(self, allocation)
    }

    /// [`Scenario::cost_summary`] reading the [`crate::ScenarioArrays`] lanes instead of
    /// the device profiles — bit-identical output, contiguous memory traffic. The solver
    /// hot path uses this form with the lanes it already caches in its workspace.
    ///
    /// # Errors
    ///
    /// Same as [`Scenario::cost_summary`], plus a size mismatch if `arrays` was built from
    /// a different device count.
    pub fn cost_summary_arrays(
        &self,
        arrays: &crate::ScenarioArrays,
        allocation: &Allocation,
    ) -> Result<CostSummary, FlError> {
        crate::arrays::evaluate_allocation_summary_arrays(self, arrays, allocation)
    }
}

/// Builder for [`Scenario`] reproducing the parameter table of Section VII-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioBuilder {
    params: SystemParams,
    num_devices: usize,
    radius: Kilometres,
    /// Samples per device; ignored when `total_samples` is set.
    samples_per_device: u64,
    /// When set, samples are split equally across devices (Fig. 4's setting).
    total_samples: Option<u64>,
    cycles_per_sample_range: (f64, f64),
    upload_bits: f64,
    p_min: Dbm,
    p_max: Dbm,
    f_min: Hertz,
    f_max: Hertz,
    path_loss: PathLossModel,
    shadowing: LogNormalShadowing,
}

impl ScenarioBuilder {
    /// The defaults of Section VII-A: 50 devices, 250 m radius disc, 500 samples/device,
    /// `c_n ∈ [1,3]·10⁴`, `d_n = 28.1 kbit`, `p ∈ [0, 12] dBm`, `f ∈ [1 MHz, 2 GHz]`,
    /// `B = 20 MHz`, `κ = 10⁻²⁸`, `R_g = 400`, `R_l = 10`, 8 dB shadowing.
    pub fn paper_default() -> Self {
        Self {
            params: SystemParams::paper_default(),
            num_devices: 50,
            radius: Kilometres::new(0.25),
            samples_per_device: 500,
            total_samples: None,
            cycles_per_sample_range: (1.0e4, 3.0e4),
            upload_bits: 28_100.0,
            p_min: Dbm::new(0.0),
            p_max: Dbm::new(12.0),
            f_min: Hertz::new(1.0e6),
            f_max: Hertz::from_ghz(2.0),
            path_loss: PathLossModel::paper_default(),
            shadowing: LogNormalShadowing::paper_default(),
        }
    }

    /// Sets the number of devices `N`.
    pub fn with_devices(mut self, n: usize) -> Self {
        self.num_devices = n;
        self
    }

    /// Sets the radius of the placement disc.
    pub fn with_radius_km(mut self, radius_km: f64) -> Self {
        self.radius = Kilometres::new(radius_km);
        self
    }

    /// Sets the number of samples per device (each device gets exactly this many).
    pub fn with_samples_per_device(mut self, samples: u64) -> Self {
        self.samples_per_device = samples;
        self.total_samples = None;
        self
    }

    /// Distributes a fixed total number of samples equally across devices (Fig. 4's setup).
    pub fn with_total_samples(mut self, total: u64) -> Self {
        self.total_samples = Some(total);
        self
    }

    /// Sets the per-sample CPU-cycle range `[lo, hi]` from which `c_n` is drawn uniformly.
    pub fn with_cycles_per_sample_range(mut self, lo: f64, hi: f64) -> Self {
        self.cycles_per_sample_range = (lo, hi);
        self
    }

    /// Sets the upload payload `d_n` in bits (same for every device, as in the paper).
    pub fn with_upload_bits(mut self, bits: f64) -> Self {
        self.upload_bits = bits;
        self
    }

    /// Sets the transmit-power box in dBm.
    pub fn with_power_range_dbm(mut self, p_min: f64, p_max: f64) -> Self {
        self.p_min = Dbm::new(p_min);
        self.p_max = Dbm::new(p_max);
        self
    }

    /// Sets the maximum transmit power in dBm (keeps the current minimum).
    pub fn with_p_max_dbm(mut self, p_max: f64) -> Self {
        self.p_max = Dbm::new(p_max);
        self
    }

    /// Sets the minimum transmit power in dBm (keeps the current maximum).
    pub fn with_p_min_dbm(mut self, p_min: f64) -> Self {
        self.p_min = Dbm::new(p_min);
        self
    }

    /// Sets the CPU-frequency box in Hz.
    pub fn with_frequency_range(mut self, f_min: Hertz, f_max: Hertz) -> Self {
        self.f_min = f_min;
        self.f_max = f_max;
        self
    }

    /// Sets the maximum CPU frequency in GHz (keeps the current minimum).
    pub fn with_f_max_ghz(mut self, f_max_ghz: f64) -> Self {
        self.f_max = Hertz::from_ghz(f_max_ghz);
        self
    }

    /// Sets the minimum CPU frequency in Hz (keeps the current maximum).
    pub fn with_f_min_hz(mut self, f_min_hz: f64) -> Self {
        self.f_min = Hertz::new(f_min_hz);
        self
    }

    /// Sets the number of global aggregation rounds `R_g`.
    pub fn with_global_rounds(mut self, rounds: u32) -> Self {
        self.params.global_rounds = rounds;
        self
    }

    /// Sets the number of local iterations per global round `R_l`.
    pub fn with_local_iterations(mut self, iterations: u32) -> Self {
        self.params.local_iterations = iterations;
        self
    }

    /// Sets the total uplink bandwidth `B`.
    pub fn with_total_bandwidth(mut self, bandwidth: Hertz) -> Self {
        self.params.total_bandwidth = bandwidth;
        self
    }

    /// Replaces the whole [`SystemParams`] block.
    pub fn with_params(mut self, params: SystemParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the log-normal shadowing standard deviation in dB (`0.0` disables fading).
    pub fn with_shadowing_db(mut self, sigma_db: f64) -> Self {
        self.shadowing = LogNormalShadowing::new(sigma_db);
        self
    }

    /// Disables shadow fading (useful for deterministic tests).
    pub fn without_shadowing(self) -> Self {
        self.with_shadowing_db(0.0)
    }

    /// Builds the scenario, drawing device positions, channel gains and CPU parameters from a
    /// deterministic RNG seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::NoDevices`] when the device count is zero, or
    /// [`FlError::InvalidParameter`] if any derived profile fails validation (for example an
    /// inverted power box).
    pub fn build(&self, seed: u64) -> Result<Scenario, FlError> {
        if self.num_devices == 0 {
            return Err(FlError::NoDevices);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let placement = DiscPlacement::new(self.radius);
        let positions = placement.sample_n(self.num_devices, &mut rng);

        let samples_each: Vec<u64> = match self.total_samples {
            Some(total) => {
                let base = total / self.num_devices as u64;
                let remainder = (total % self.num_devices as u64) as usize;
                (0..self.num_devices).map(|i| if i < remainder { base + 1 } else { base }).collect()
            }
            None => vec![self.samples_per_device; self.num_devices],
        };

        let (c_lo, c_hi) = self.cycles_per_sample_range;
        let devices: Vec<DeviceProfile> = positions
            .iter()
            .zip(samples_each)
            .map(|(pos, samples)| {
                let distance = pos.distance_to_origin();
                let gain = ChannelGain::from_distance(
                    distance,
                    &self.path_loss,
                    &self.shadowing,
                    &mut rng,
                );
                DeviceProfile {
                    samples: samples.max(1),
                    cycles_per_sample: rng.gen_range(c_lo..=c_hi),
                    upload_bits: self.upload_bits,
                    gain,
                    p_min: self.p_min.to_watts(),
                    p_max: self.p_max.to_watts(),
                    f_min: self.f_min,
                    f_max: self.f_max,
                }
            })
            .collect();

        Scenario::new(self.params, devices)
    }
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_builds_fifty_devices() {
        let s = ScenarioBuilder::paper_default().build(0).unwrap();
        assert_eq!(s.num_devices(), 50);
        for d in &s.devices {
            assert_eq!(d.samples, 500);
            assert!((1.0e4..=3.0e4).contains(&d.cycles_per_sample));
            assert_eq!(d.upload_bits, 28_100.0);
            assert!((d.p_max.value() - Dbm::new(12.0).to_watts().value()).abs() < 1e-12);
            assert_eq!(d.f_max.value(), 2.0e9);
            assert!(d.gain.value() > 0.0);
        }
    }

    #[test]
    fn builder_is_reproducible_per_seed() {
        let b = ScenarioBuilder::paper_default().with_devices(10);
        assert_eq!(b.build(42).unwrap(), b.build(42).unwrap());
        assert_ne!(b.build(42).unwrap(), b.build(43).unwrap());
    }

    #[test]
    fn total_samples_split_equally() {
        let s = ScenarioBuilder::paper_default()
            .with_devices(40)
            .with_total_samples(25_000)
            .build(3)
            .unwrap();
        let total: u64 = s.devices.iter().map(|d| d.samples).sum();
        assert_eq!(total, 25_000);
        let min = s.devices.iter().map(|d| d.samples).min().unwrap();
        let max = s.devices.iter().map(|d| d.samples).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn total_samples_with_remainder() {
        let s = ScenarioBuilder::paper_default()
            .with_devices(7)
            .with_total_samples(100)
            .build(3)
            .unwrap();
        let total: u64 = s.devices.iter().map(|d| d.samples).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn zero_devices_is_an_error() {
        assert!(matches!(
            ScenarioBuilder::paper_default().with_devices(0).build(0),
            Err(FlError::NoDevices)
        ));
    }

    #[test]
    fn radius_controls_average_gain() {
        let near = ScenarioBuilder::paper_default()
            .with_devices(60)
            .with_radius_km(0.1)
            .without_shadowing()
            .build(5)
            .unwrap();
        let far = ScenarioBuilder::paper_default()
            .with_devices(60)
            .with_radius_km(1.5)
            .without_shadowing()
            .build(5)
            .unwrap();
        let avg = |s: &Scenario| {
            s.devices.iter().map(|d| d.gain.value()).sum::<f64>() / s.num_devices() as f64
        };
        assert!(avg(&near) > avg(&far) * 10.0);
    }

    #[test]
    fn builder_knobs_propagate() {
        let s = ScenarioBuilder::paper_default()
            .with_devices(4)
            .with_p_max_dbm(8.0)
            .with_f_max_ghz(1.0)
            .with_global_rounds(100)
            .with_local_iterations(30)
            .with_total_bandwidth(Hertz::from_mhz(10.0))
            .with_upload_bits(50_000.0)
            .with_samples_per_device(200)
            .with_cycles_per_sample_range(2.0e4, 2.0e4)
            .build(9)
            .unwrap();
        assert_eq!(s.params.global_rounds, 100);
        assert_eq!(s.params.local_iterations, 30);
        assert_eq!(s.params.total_bandwidth.value(), 1.0e7);
        for d in &s.devices {
            assert!((d.p_max.value() - Dbm::new(8.0).to_watts().value()).abs() < 1e-12);
            assert_eq!(d.f_max.value(), 1.0e9);
            assert_eq!(d.upload_bits, 50_000.0);
            assert_eq!(d.samples, 200);
            assert_eq!(d.cycles_per_sample, 2.0e4);
        }
    }

    #[test]
    fn lower_bound_and_shadowing_knobs_propagate() {
        let s = ScenarioBuilder::paper_default()
            .with_devices(3)
            .with_p_min_dbm(3.0)
            .with_f_min_hz(2.0e6)
            .build(1)
            .unwrap();
        for d in &s.devices {
            assert!((d.p_min.value() - Dbm::new(3.0).to_watts().value()).abs() < 1e-15);
            assert_eq!(d.f_min.value(), 2.0e6);
        }
        // `with_shadowing_db(0.0)` is exactly `without_shadowing`.
        let a = ScenarioBuilder::paper_default().with_shadowing_db(0.0);
        let b = ScenarioBuilder::paper_default().without_shadowing();
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_and_cost_agree() {
        let s = ScenarioBuilder::paper_default().with_devices(6).build(11).unwrap();
        let a = Allocation::equal_split_max(&s);
        let c1 = s.evaluate(&a, Weights::balanced()).unwrap();
        let c2 = s.cost(&a).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn scenario_rejects_invalid_device() {
        let params = SystemParams::paper_default();
        let mut devices =
            ScenarioBuilder::paper_default().with_devices(2).build(0).unwrap().devices;
        devices[1].cycles_per_sample = -5.0;
        assert!(Scenario::new(params, devices).is_err());
    }
}
