//! The weight pair `(w1, w2)` of the joint objective.

use crate::error::FlError;
use serde::{Deserialize, Serialize};

/// Weights of the joint objective `w1·E + w2·R_g·T` (equation (9) of the paper).
///
/// Invariants enforced at construction: `w1, w2 ∈ [0, 1]` and `w1 + w2 = 1`. The paper's
/// evaluation uses the five pairs (0.9, 0.1) … (0.1, 0.9), plus (1, 0) for the
/// deadline-constrained comparisons of Figures 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    w1: f64,
    w2: f64,
}

impl Weights {
    /// Creates a validated weight pair.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidWeights`] unless `w1, w2 ∈ [0,1]` and `w1 + w2 = 1`
    /// (within `1e-9`).
    pub fn new(w1: f64, w2: f64) -> Result<Self, FlError> {
        let valid =
            (0.0..=1.0).contains(&w1) && (0.0..=1.0).contains(&w2) && (w1 + w2 - 1.0).abs() <= 1e-9;
        if valid {
            Ok(Self { w1, w2 })
        } else {
            Err(FlError::InvalidWeights { w1, w2 })
        }
    }

    /// Weight on energy only (`w1 = 1`), used with an explicit deadline in Figs. 7–8.
    pub fn energy_only() -> Self {
        Self { w1: 1.0, w2: 0.0 }
    }

    /// Weight on completion time only (`w2 = 1`).
    pub fn time_only() -> Self {
        Self { w1: 0.0, w2: 1.0 }
    }

    /// Equal weights (the paper's "normal scenario").
    pub fn balanced() -> Self {
        Self { w1: 0.5, w2: 0.5 }
    }

    /// The five weight pairs swept in Figures 2–4 of the paper.
    pub fn paper_sweep() -> [Self; 5] {
        [
            Self { w1: 0.9, w2: 0.1 },
            Self { w1: 0.7, w2: 0.3 },
            Self { w1: 0.5, w2: 0.5 },
            Self { w1: 0.3, w2: 0.7 },
            Self { w1: 0.1, w2: 0.9 },
        ]
    }

    /// The energy weight `w1`.
    pub fn energy(&self) -> f64 {
        self.w1
    }

    /// The completion-time weight `w2`.
    pub fn time(&self) -> f64 {
        self.w2
    }
}

impl Default for Weights {
    fn default() -> Self {
        Self::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_pairs_accepted() {
        assert!(Weights::new(0.3, 0.7).is_ok());
        assert!(Weights::new(1.0, 0.0).is_ok());
        assert!(Weights::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn invalid_pairs_rejected() {
        assert!(Weights::new(0.5, 0.6).is_err());
        assert!(Weights::new(-0.1, 1.1).is_err());
        assert!(Weights::new(1.2, -0.2).is_err());
        assert!(Weights::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn named_constructors() {
        assert_eq!(Weights::energy_only().energy(), 1.0);
        assert_eq!(Weights::time_only().time(), 1.0);
        assert_eq!(Weights::balanced(), Weights::default());
    }

    #[test]
    fn paper_sweep_is_valid_and_ordered() {
        let sweep = Weights::paper_sweep();
        assert_eq!(sweep.len(), 5);
        for w in sweep {
            assert!((w.energy() + w.time() - 1.0).abs() < 1e-12);
        }
        // Decreasing in w1.
        for pair in sweep.windows(2) {
            assert!(pair[0].energy() > pair[1].energy());
        }
    }
}
