//! Latency formulas — equations (2) and (7) of the paper.

use crate::device::DeviceProfile;
use crate::params::SystemParams;

/// Uplink transmission time of device `n` in one global round: `T_n^up = d_n / r_n`
/// (equation (2)). Returns `f64::INFINITY` for a non-positive rate.
pub fn upload_time(device: &DeviceProfile, rate_bps: f64) -> f64 {
    if rate_bps <= 0.0 {
        return f64::INFINITY;
    }
    device.upload_bits / rate_bps
}

/// Local computation time of device `n` in one global round:
/// `T_n^cmp = R_l · c_n · D_n / f_n` (equation (7)). Returns `f64::INFINITY` for a
/// non-positive frequency.
pub fn computation_time(params: &SystemParams, device: &DeviceProfile, frequency_hz: f64) -> f64 {
    if frequency_hz <= 0.0 {
        return f64::INFINITY;
    }
    params.rl() * device.cycles_per_local_iteration() / frequency_hz
}

/// Per-round completion time of device `n`: `T_n^cmp + T_n^up`.
pub fn device_round_time(
    params: &SystemParams,
    device: &DeviceProfile,
    frequency_hz: f64,
    rate_bps: f64,
) -> f64 {
    computation_time(params, device, frequency_hz) + upload_time(device, rate_bps)
}

/// Per-round completion time of the whole system: `max_n (T_n^cmp + T_n^up)`.
///
/// Returns `0.0` for an empty device list (callers validate non-emptiness separately).
pub fn round_completion_time(
    params: &SystemParams,
    devices: &[DeviceProfile],
    frequencies_hz: &[f64],
    rates_bps: &[f64],
) -> f64 {
    devices
        .iter()
        .enumerate()
        .map(|(i, dev)| device_round_time(params, dev, frequencies_hz[i], rates_bps[i]))
        .fold(0.0, f64::max)
}

/// Total completion time of the training process: `R_g · max_n (T_n^cmp + T_n^up)`.
pub fn total_completion_time(
    params: &SystemParams,
    devices: &[DeviceProfile],
    frequencies_hz: &[f64],
    rates_bps: &[f64],
) -> f64 {
    params.rg() * round_completion_time(params, devices, frequencies_hz, rates_bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireless::channel::ChannelGain;
    use wireless::units::{Hertz, Watts};

    fn device() -> DeviceProfile {
        DeviceProfile {
            samples: 500,
            cycles_per_sample: 2.0e4,
            upload_bits: 28_100.0,
            gain: ChannelGain::from_db(-100.0),
            p_min: Watts::new(1.0e-3),
            p_max: Watts::new(1.585e-2),
            f_min: Hertz::new(1.0e6),
            f_max: Hertz::from_ghz(2.0),
        }
    }

    #[test]
    fn upload_time_hand_check() {
        assert!((upload_time(&device(), 2.81e6) - 0.01).abs() < 1e-12);
        assert!(upload_time(&device(), 0.0).is_infinite());
    }

    #[test]
    fn computation_time_hand_check() {
        let params = SystemParams::paper_default();
        // 10 * 1e7 cycles at 1 GHz = 0.1 s.
        assert!((computation_time(&params, &device(), 1.0e9) - 0.1).abs() < 1e-12);
        assert!(computation_time(&params, &device(), 0.0).is_infinite());
    }

    #[test]
    fn round_time_is_max_over_devices() {
        let params = SystemParams::paper_default();
        let devices = vec![device(), device(), device()];
        let freqs = [1.0e9, 0.5e9, 2.0e9];
        let rates = [2.81e6, 2.81e6, 2.81e6];
        let per_device: Vec<f64> =
            (0..3).map(|i| device_round_time(&params, &devices[i], freqs[i], rates[i])).collect();
        let round = round_completion_time(&params, &devices, &freqs, &rates);
        assert_eq!(round, per_device.iter().cloned().fold(0.0, f64::max));
        // The straggler is the 0.5 GHz device.
        assert!((round - (0.2 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn total_time_scales_with_global_rounds() {
        let params = SystemParams::paper_default();
        let devices = vec![device()];
        let total = total_completion_time(&params, &devices, &[1.0e9], &[2.81e6]);
        assert!((total - 400.0 * 0.11).abs() < 1e-9);
    }

    #[test]
    fn empty_system_has_zero_round_time() {
        let params = SystemParams::paper_default();
        assert_eq!(round_completion_time(&params, &[], &[], &[]), 0.0);
    }
}
