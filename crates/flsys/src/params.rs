//! Global system parameters shared by every device.

use crate::error::FlError;
use serde::{Deserialize, Serialize};
use wireless::noise::NoiseDensity;
use wireless::units::Hertz;

/// System-wide constants of the FL deployment (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemParams {
    /// Total uplink bandwidth `B` shared by all devices (Hz).
    pub total_bandwidth: Hertz,
    /// Noise power spectral density `N₀`.
    pub noise: NoiseDensity,
    /// Effective switched capacitance `κ` of the device CPUs.
    pub kappa: f64,
    /// Number of global aggregation rounds `R_g`.
    pub global_rounds: u32,
    /// Number of local iterations per global round `R_l`.
    pub local_iterations: u32,
}

impl SystemParams {
    /// The defaults of Section VII-A: `B = 20 MHz`, `N₀ = −174 dBm/Hz`, `κ = 10⁻²⁸`,
    /// `R_g = 400`, `R_l = 10`.
    pub fn paper_default() -> Self {
        Self {
            total_bandwidth: Hertz::from_mhz(20.0),
            noise: NoiseDensity::from_dbm_per_hz(-174.0),
            kappa: 1.0e-28,
            global_rounds: 400,
            local_iterations: 10,
        }
    }

    /// Validates physical ranges.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::InvalidParameter`] if the bandwidth, noise density, or `κ` are not
    /// strictly positive, or a round count is zero.
    pub fn validate(&self) -> Result<(), FlError> {
        if self.total_bandwidth.value() <= 0.0 {
            return Err(FlError::InvalidParameter {
                name: "total_bandwidth",
                value: self.total_bandwidth.value(),
            });
        }
        if self.noise.watts_per_hz() <= 0.0 {
            return Err(FlError::InvalidParameter {
                name: "noise",
                value: self.noise.watts_per_hz(),
            });
        }
        if self.kappa <= 0.0 || !self.kappa.is_finite() {
            return Err(FlError::InvalidParameter { name: "kappa", value: self.kappa });
        }
        if self.global_rounds == 0 {
            return Err(FlError::InvalidParameter { name: "global_rounds", value: 0.0 });
        }
        if self.local_iterations == 0 {
            return Err(FlError::InvalidParameter { name: "local_iterations", value: 0.0 });
        }
        Ok(())
    }

    /// `R_g` as an `f64` (used in every cost formula).
    pub fn rg(&self) -> f64 {
        f64::from(self.global_rounds)
    }

    /// `R_l` as an `f64`.
    pub fn rl(&self) -> f64 {
        f64::from(self.local_iterations)
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table() {
        let p = SystemParams::paper_default();
        assert_eq!(p.total_bandwidth.value(), 2.0e7);
        assert_eq!(p.kappa, 1.0e-28);
        assert_eq!(p.global_rounds, 400);
        assert_eq!(p.local_iterations, 10);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut p = SystemParams::paper_default();
        p.kappa = 0.0;
        assert!(p.validate().is_err());
        let mut p = SystemParams::paper_default();
        p.global_rounds = 0;
        assert!(p.validate().is_err());
        let mut p = SystemParams::paper_default();
        p.total_bandwidth = Hertz::new(-1.0);
        assert!(p.validate().is_err());
        let mut p = SystemParams::paper_default();
        p.local_iterations = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn round_counts_as_floats() {
        let p = SystemParams::paper_default();
        assert_eq!(p.rg(), 400.0);
        assert_eq!(p.rl(), 10.0);
    }
}
