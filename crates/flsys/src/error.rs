//! Error type for the system-model crate.

use std::fmt;

/// Errors raised while building scenarios or evaluating allocations.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// A weight pair did not satisfy `w1, w2 ∈ [0,1]` and `w1 + w2 = 1`.
    InvalidWeights {
        /// The offending energy weight.
        w1: f64,
        /// The offending time weight.
        w2: f64,
    },
    /// A scenario parameter was outside its physical range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A scenario must contain at least one device.
    NoDevices,
    /// An allocation's vectors did not match the scenario's device count.
    AllocationSizeMismatch {
        /// Number of devices in the scenario.
        devices: usize,
        /// Length of the offending allocation vector.
        got: usize,
    },
    /// An allocation produced a non-finite or non-positive rate for a device that must upload.
    UnusableRate {
        /// Index of the device.
        device: usize,
    },
    /// Numerical failure bubbled up from the `numopt` substrate.
    Numerical(String),
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::InvalidWeights { w1, w2 } => {
                write!(f, "invalid weights (w1={w1}, w2={w2}); need w1,w2 in [0,1] with w1+w2=1")
            }
            FlError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter `{name}` = {value}")
            }
            FlError::NoDevices => write!(f, "scenario has no devices"),
            FlError::AllocationSizeMismatch { devices, got } => {
                write!(f, "allocation length {got} does not match {devices} devices")
            }
            FlError::UnusableRate { device } => {
                write!(f, "device {device} has a non-positive or non-finite uplink rate")
            }
            FlError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for FlError {}

impl From<numopt::NumError> for FlError {
    fn from(e: numopt::NumError) -> Self {
        FlError::Numerical(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FlError::InvalidWeights { w1: 0.4, w2: 0.4 };
        assert!(e.to_string().contains("w1+w2=1"));
        let e = FlError::AllocationSizeMismatch { devices: 50, got: 49 };
        assert!(e.to_string().contains("50"));
        assert!(e.to_string().contains("49"));
    }

    #[test]
    fn numerical_errors_convert() {
        let n = numopt::NumError::NonFiniteValue { at: 1.0 };
        let e: FlError = n.into();
        assert!(matches!(e, FlError::Numerical(_)));
    }

    #[test]
    fn send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<FlError>();
    }
}
