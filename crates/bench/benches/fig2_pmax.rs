//! Regenerates a reduced-resolution version of the paper's Figure 2 (energy/delay vs maximum transmit power) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_pmax");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig2::Fig2Config {
                devices: 8,
                seeds: vec![1],
                p_max_dbm: vec![6.0, 12.0],
                weights: vec![flsys::Weights::new(0.5, 0.5).unwrap()],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let (energy, _) = experiments::fig2::run(&cfg).unwrap();
            energy.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
