//! Regenerates a reduced-resolution version of the paper's Figure 7 (joint vs communication-only vs computation-only) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_tradeoff");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig7::Fig7Config {
                devices: 8,
                p_max_dbm: 10.0,
                deadlines_s: vec![110.0, 150.0],
                seeds: vec![6],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let report = experiments::fig7::run(&cfg).unwrap();
            report.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
