//! Benchmarks the cell-group engine's scenario-build sharing: the same grid evaluated with
//! sharing on (builds = points × seeds per distinct prepared builder) and off (the
//! historical builds = points × arms × seeds), plus the raw cost of one scenario build.
//!
//! Three angles on the same win:
//!
//! * `build_scenario/*` — what one `ScenarioBuilder::build` costs (the thing being cached).
//! * `bench_arms_6x/*` — a build-bound grid (six copies of the cheap random-benchmark arm):
//!   sharing removes ~5/6 of the builds, so the wall-clock gap IS the cache win.
//! * `fig2_quick/*` — a solver-bound end-to-end figure grid, showing what survives of the
//!   win once real solves dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::arms::BenchmarkArm;
use experiments::fig2::{run_with_engine, Fig2Config};
use experiments::{SweepEngine, SweepGrid};
use flsys::ScenarioBuilder;
use std::time::Duration;

fn build_bound_grid() -> SweepGrid {
    let mut grid = SweepGrid::new((0..25).collect::<Vec<u64>>());
    for &p_max in &[5.0, 8.0, 10.0, 12.0] {
        grid = grid
            .point(p_max, ScenarioBuilder::paper_default().with_devices(50).with_p_max_dbm(p_max));
    }
    // Six copies of the (cheap) benchmark arm: with sharing on, one 50-device build serves
    // all six; with sharing off, each rebuilds it.
    for _ in 0..6 {
        grid = grid.arm(BenchmarkArm::random_frequency());
    }
    grid
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));

    group.bench_function("build_scenario/50dev", |b| {
        let builder = ScenarioBuilder::paper_default().with_devices(50);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            builder.build(seed).unwrap().devices.len()
        })
    });

    for &(label, share) in &[("shared", true), ("rebuilt", false)] {
        let engine = SweepEngine::with_threads(4).with_scenario_sharing(share);
        group.bench_with_input(BenchmarkId::new("bench_arms_6x", label), &share, |b, _| {
            b.iter(|| {
                let result = engine.run(&build_bound_grid()).unwrap();
                result.counters.scenarios_built
            })
        });
    }

    let cfg = Fig2Config::quick();
    for &(label, share) in &[("shared", true), ("rebuilt", false)] {
        let engine = SweepEngine::with_threads(4).with_scenario_sharing(share);
        group.bench_with_input(BenchmarkId::new("fig2_quick", label), &share, |b, _| {
            b.iter(|| {
                let (energy, _) = run_with_engine(&cfg, &engine).unwrap();
                energy.rows.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
