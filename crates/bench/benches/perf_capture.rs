//! Machine-readable perf capture for the solver/engine performance work: measures
//! cells/sec on the solver-bound fig2 quick grid (legacy pure-bisection, cold, and warm
//! paths), steady-state allocations per cell, the sp2 hot-path latency, the solver
//! iteration counters on each path, fleet-scale single-scenario solves at 10³/10⁴/10⁵
//! devices, and the streaming reducer's accumulator footprint, then writes the per-run
//! `BENCH_PR6.capture.json` at the workspace root (gitignored; CI uploads it as an
//! artifact so the perf trajectory is recorded per commit). The curated, committed
//! before/after snapshots live separately in `BENCH_PR3.json` / `BENCH_PR4.json` /
//! `BENCH_PR6.json` — this bench never touches them.
//!
//! Run with `cargo bench -p fedopt-bench --bench perf_capture`.

use experiments::fig2::{run_with_engine, Fig2Config};
use experiments::SweepEngine;
use fedopt_bench::thread_allocation_count;
use fedopt_core::{sp2, JointOptimizer, SolveCounters, SolverConfig, SolverWorkspace};
use flsys::{ScenarioBuilder, Weights};
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: fedopt_bench::CountingAllocator = fedopt_bench::CountingAllocator;

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let cfg = Fig2Config::quick();
    let grid = cfg.grid();
    let cells = grid.num_cells();
    let (points, arms) = (grid.points.len(), grid.arms.len());

    // --- Solver-bound grid throughput on three paths (sequential engine: measures the
    // solve path, not thread scaling): the legacy pure-bisection μ-root (the PR 4 state,
    // still selectable via with_superlinear_mu(false)), the cold superlinear path, and the
    // warm default.
    let legacy_engine =
        SweepEngine::single_thread().with_warm_start(false).with_superlinear_mu(false);
    let cold_engine = SweepEngine::single_thread().with_warm_start(false);
    let warm_engine = SweepEngine::single_thread().with_warm_start(true);
    run_with_engine(&cfg, &cold_engine).unwrap(); // warm-up (page cache, lazy allocs)
    let legacy_secs = best_of(3, || run_with_engine(&cfg, &legacy_engine).unwrap());
    let cold_secs = best_of(3, || run_with_engine(&cfg, &cold_engine).unwrap());
    let warm_secs = best_of(3, || run_with_engine(&cfg, &warm_engine).unwrap());
    let cold_cells_per_sec = cells as f64 / cold_secs;
    let warm_cells_per_sec = cells as f64 / warm_secs;

    // --- Solver iteration counters on the same grid for each path (the non-wall-clock
    // evidence that the continuation and the superlinear μ-step save work).
    let legacy_counters = legacy_engine.run(&grid).unwrap().counters.solver;
    let cold_counters = cold_engine.run(&grid).unwrap().counters.solver;
    let warm_counters = warm_engine.run(&grid).unwrap().counters.solver;

    // --- Steady-state allocations per cell (same contract as tests/alloc_free.rs),
    // measured on the warm path — the stricter case, since it carries state.
    let scenario = ScenarioBuilder::paper_default().with_devices(cfg.devices).build(11).unwrap();
    let optimizer = JointOptimizer::new(cfg.solver.with_warm_start(true));
    let mut ws = SolverWorkspace::new();
    optimizer.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap(); // warm-up
    let before = thread_allocation_count();
    let reps = 20u64;
    for _ in 0..reps {
        ws.reset_warm_start();
        optimizer.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap();
    }
    let allocs_per_cell = (thread_allocation_count() - before) as f64 / reps as f64;

    // --- sp2 hot-path latency (the Theorem-2 + Algorithm-1 stack, allocation-free form).
    let r_min: Vec<f64> = scenario.devices.iter().map(|d| d.upload_bits / 0.05).collect();
    let start_alloc = flsys::Allocation::equal_split_max(&scenario);
    let mut scratch = sp2::Sp2Scratch::new();
    let solver_cfg = cfg.solver;
    let sp2_secs = {
        let mut once = || {
            scratch.stage_start(&start_alloc.powers_w, &start_alloc.bandwidths_hz);
            sp2::solve_in(&scenario, Weights::balanced(), &r_min, &solver_cfg, &mut scratch)
                .unwrap()
                .comm_energy_per_round_j
        };
        once(); // warm-up
        best_of(10, &mut once)
    };

    // --- Streaming reducer footprint: accumulators are O(points × arms) by construction.
    let peak_accumulators = points * arms;

    // --- Fleet-scale single-scenario solves (PR 6): one cold solve per device count on
    // the struct-of-arrays hot path (fast config, reference polish off — the large_n
    // preset's setup), wall clock plus the counters that prove the scalar searches stay
    // flat in n.
    let mut fleet_cfg = SolverConfig::fast();
    fleet_cfg.polish_with_reference = false;
    let fleet = JointOptimizer::new(fleet_cfg);
    let fleet_rows: Vec<(usize, f64, SolveCounters)> = [1_000usize, 10_000, 100_000]
        .iter()
        .map(|&n| {
            let scenario = ScenarioBuilder::paper_default().with_devices(n).build(11).unwrap();
            let mut ws = SolverWorkspace::with_capacity(n);
            fleet.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap(); // warm-up
            let runs = if n >= 100_000 { 2 } else { 3 };
            let secs = best_of(runs, || {
                ws.reset_warm_start();
                fleet.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap()
            });
            ws.counters.reset();
            ws.reset_warm_start();
            fleet.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap();
            (n, secs, ws.counters)
        })
        .collect();
    let fleet_json: String = fleet_rows
        .iter()
        .map(|(n, secs, k)| {
            format!(
                "    {{ \"devices\": {n}, \"solve_ms\": {:.1}, \"mu_evals\": {}, \
                 \"sp1_probe_evals\": {}, \"kkt_solves\": {}, \"lp_sorts\": {} }}",
                secs * 1e3,
                k.mu_bisect_evals,
                k.sp1_probe_evals,
                k.kkt_solves,
                k.lp_sorts
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"perf_capture\",\n  \"grid\": \"fig2_quick\",\n  \
         \"cells\": {cells},\n  \"legacy_bisect_cells_per_sec\": {:.1},\n  \
         \"cold_cells_per_sec\": {cold_cells_per_sec:.1},\n  \
         \"warm_cells_per_sec\": {warm_cells_per_sec:.1},\n  \
         \"superlinear_mu_speedup\": {:.3},\n  \"warm_speedup\": {:.3},\n  \
         \"legacy_mu_bisect_evals\": {},\n  \
         \"cold_jong_iterations\": {},\n  \"warm_jong_iterations\": {},\n  \
         \"cold_mu_bisect_evals\": {},\n  \"warm_mu_bisect_evals\": {},\n  \
         \"cold_sp1_probe_evals\": {},\n  \"warm_sp1_probe_evals\": {},\n  \
         \"cold_lp_sorts\": {},\n  \"cold_kkt_solves\": {},\n  \
         \"warm_fast_path_hits\": {},\n  \
         \"allocs_per_cell_steady_state\": {allocs_per_cell},\n  \
         \"sp2_solve_in_us\": {:.1},\n  \"peak_accumulators\": {peak_accumulators},\n  \
         \"large_n\": [\n{fleet_json}\n  ],\n  \
         \"seed_chunk\": {},\n  \"threads\": 1\n}}\n",
        cells as f64 / legacy_secs,
        legacy_secs / cold_secs,
        cold_secs / warm_secs,
        legacy_counters.mu_bisect_evals,
        cold_counters.jong_iterations,
        warm_counters.jong_iterations,
        cold_counters.mu_bisect_evals,
        warm_counters.mu_bisect_evals,
        cold_counters.sp1_probe_evals,
        warm_counters.sp1_probe_evals,
        cold_counters.lp_sorts,
        cold_counters.kkt_solves,
        warm_counters.sp2_fast_path_hits,
        sp2_secs * 1e6,
        cold_engine.seed_chunk(),
    );
    print!("{json}");

    // Workspace root (bench crate lives at crates/bench).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR6.capture.json");
    std::fs::write(out, &json).expect("write BENCH_PR6.capture.json");
    eprintln!("wrote {out}");

    assert_eq!(allocs_per_cell, 0.0, "steady-state cells must not allocate");
    assert!(
        warm_counters.jong_iterations < cold_counters.jong_iterations,
        "warm start must save Jong iterations"
    );
    assert!(
        cold_counters.mu_bisect_evals < legacy_counters.mu_bisect_evals,
        "the superlinear μ-step must save g'(μ) evaluations over pure bisection"
    );
    // The step-4b sort happens once per parametric KKT solve, never per μ-evaluation.
    assert!(cold_counters.lp_sorts <= cold_counters.kkt_solves, "lp re-sorted per μ-eval");
}
