//! Machine-readable perf capture for the solver/engine performance work: measures
//! cells/sec on the solver-bound fig2 quick grid with the warm-start continuation off and
//! on, steady-state allocations per cell, the sp2 hot-path latency, the warm-vs-cold
//! solver iteration counters, and the streaming reducer's accumulator footprint, then
//! writes the per-run `BENCH_PR4.capture.json` at the workspace root (gitignored; CI
//! uploads it as an artifact so the perf trajectory is recorded per commit). The curated,
//! committed before/after snapshots live separately in `BENCH_PR3.json` / `BENCH_PR4.json`
//! — this bench never touches them.
//!
//! Run with `cargo bench -p fedopt-bench --bench perf_capture`.

use experiments::fig2::{run_with_engine, Fig2Config};
use experiments::SweepEngine;
use fedopt_bench::thread_allocation_count;
use fedopt_core::{sp2, JointOptimizer, SolverWorkspace};
use flsys::{ScenarioBuilder, Weights};
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: fedopt_bench::CountingAllocator = fedopt_bench::CountingAllocator;

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let cfg = Fig2Config::quick();
    let grid = cfg.grid();
    let cells = grid.num_cells();
    let (points, arms) = (grid.points.len(), grid.arms.len());

    // --- Solver-bound grid throughput, warm start off and on (sequential engine: measures
    // the solve path, not thread scaling).
    let cold_engine = SweepEngine::single_thread().with_warm_start(false);
    let warm_engine = SweepEngine::single_thread().with_warm_start(true);
    run_with_engine(&cfg, &cold_engine).unwrap(); // warm-up (page cache, lazy allocs)
    let cold_secs = best_of(3, || run_with_engine(&cfg, &cold_engine).unwrap());
    let warm_secs = best_of(3, || run_with_engine(&cfg, &warm_engine).unwrap());
    let cold_cells_per_sec = cells as f64 / cold_secs;
    let warm_cells_per_sec = cells as f64 / warm_secs;

    // --- Warm-vs-cold solver iteration counters on the same grid (the non-wall-clock
    // evidence that the continuation saves work).
    let cold_counters = cold_engine.run(&grid).unwrap().counters.solver;
    let warm_counters = warm_engine.run(&grid).unwrap().counters.solver;

    // --- Steady-state allocations per cell (same contract as tests/alloc_free.rs),
    // measured on the warm path — the stricter case, since it carries state.
    let scenario = ScenarioBuilder::paper_default().with_devices(cfg.devices).build(11).unwrap();
    let optimizer = JointOptimizer::new(cfg.solver.with_warm_start(true));
    let mut ws = SolverWorkspace::new();
    optimizer.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap(); // warm-up
    let before = thread_allocation_count();
    let reps = 20u64;
    for _ in 0..reps {
        ws.reset_warm_start();
        optimizer.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap();
    }
    let allocs_per_cell = (thread_allocation_count() - before) as f64 / reps as f64;

    // --- sp2 hot-path latency (the Theorem-2 + Algorithm-1 stack, allocation-free form).
    let r_min: Vec<f64> = scenario.devices.iter().map(|d| d.upload_bits / 0.05).collect();
    let start_alloc = flsys::Allocation::equal_split_max(&scenario);
    let mut scratch = sp2::Sp2Scratch::new();
    let solver_cfg = cfg.solver;
    let sp2_secs = {
        let mut once = || {
            scratch.stage_start(&start_alloc.powers_w, &start_alloc.bandwidths_hz);
            sp2::solve_in(&scenario, Weights::balanced(), &r_min, &solver_cfg, &mut scratch)
                .unwrap()
                .comm_energy_per_round_j
        };
        once(); // warm-up
        best_of(10, &mut once)
    };

    // --- Streaming reducer footprint: accumulators are O(points × arms) by construction.
    let peak_accumulators = points * arms;

    let json = format!(
        "{{\n  \"bench\": \"perf_capture\",\n  \"grid\": \"fig2_quick\",\n  \
         \"cells\": {cells},\n  \"cold_cells_per_sec\": {cold_cells_per_sec:.1},\n  \
         \"warm_cells_per_sec\": {warm_cells_per_sec:.1},\n  \
         \"warm_speedup\": {:.3},\n  \
         \"cold_jong_iterations\": {},\n  \"warm_jong_iterations\": {},\n  \
         \"cold_mu_bisect_evals\": {},\n  \"warm_mu_bisect_evals\": {},\n  \
         \"warm_fast_path_hits\": {},\n  \
         \"allocs_per_cell_steady_state\": {allocs_per_cell},\n  \
         \"sp2_solve_in_us\": {:.1},\n  \"peak_accumulators\": {peak_accumulators},\n  \
         \"seed_chunk\": {},\n  \"threads\": 1\n}}\n",
        cold_secs / warm_secs,
        cold_counters.jong_iterations,
        warm_counters.jong_iterations,
        cold_counters.mu_bisect_evals,
        warm_counters.mu_bisect_evals,
        warm_counters.sp2_fast_path_hits,
        sp2_secs * 1e6,
        cold_engine.seed_chunk(),
    );
    print!("{json}");

    // Workspace root (bench crate lives at crates/bench).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR4.capture.json");
    std::fs::write(out, &json).expect("write BENCH_PR4.capture.json");
    eprintln!("wrote {out}");

    assert_eq!(allocs_per_cell, 0.0, "steady-state cells must not allocate");
    assert!(
        warm_counters.jong_iterations < cold_counters.jong_iterations,
        "warm start must save Jong iterations"
    );
}
