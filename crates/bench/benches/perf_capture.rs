//! Machine-readable perf capture for the solver/engine performance work: measures
//! cells/sec on the solver-bound fig2 quick grid (legacy pure-bisection, cold, and warm
//! paths), steady-state allocations per cell, the sp2 hot-path latency, the solver
//! iteration counters on each path, fleet-scale single-scenario solves at 10³/10⁴/10⁵
//! devices, sharded-fleet sweep rows (1/2/4 worker subprocesses on the fig2 100-draw
//! grid, plus a cold-vs-cached re-run over the content-addressed shard cache), the
//! adaptive-vs-fixed warm μ-bracket eval counts, and the streaming reducer's
//! accumulator footprint, then writes the per-run `BENCH_PR7.capture.json` at the
//! workspace root (gitignored; CI uploads it as an artifact so the perf trajectory is
//! recorded per commit). The curated, committed before/after snapshots live separately
//! in `BENCH_PR3.json` / `BENCH_PR4.json` / `BENCH_PR6.json` / `BENCH_PR7.json` — this
//! bench never touches them.
//!
//! Run with `cargo bench -p fedopt-bench --bench perf_capture` (build the release
//! `fedopt` binary first so the fleet rows can spawn real worker subprocesses; without
//! it they fall back to in-process workers and say so in the capture).
//!
//! The fleet rows honor `FEDOPT_BIN` as an explicit path to the coordinator binary.

use experiments::fig2::{run_with_engine, Fig2Config};
use experiments::presets::{self, Variant};
use experiments::shard::{
    run_fleet, FleetOptions, InProcessRunner, ShardCache, ShardRunner, SubprocessRunner,
};
use experiments::SweepEngine;
use fedopt_bench::thread_allocation_count;
use fedopt_core::{sp2, JointOptimizer, SolveCounters, SolverConfig, SolverWorkspace};
use flsys::{ScenarioBuilder, Weights};
use std::path::PathBuf;
use std::time::Instant;

#[global_allocator]
static ALLOCATOR: fedopt_bench::CountingAllocator = fedopt_bench::CountingAllocator;

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let cfg = Fig2Config::quick();
    let grid = cfg.grid();
    let cells = grid.num_cells();
    let (points, arms) = (grid.points.len(), grid.arms.len());

    // --- Solver-bound grid throughput on three paths (sequential engine: measures the
    // solve path, not thread scaling): the legacy pure-bisection μ-root (the PR 4 state,
    // still selectable via with_superlinear_mu(false)), the cold superlinear path, and the
    // warm default.
    let legacy_engine =
        SweepEngine::single_thread().with_warm_start(false).with_superlinear_mu(false);
    let cold_engine = SweepEngine::single_thread().with_warm_start(false);
    let warm_engine = SweepEngine::single_thread().with_warm_start(true);
    run_with_engine(&cfg, &cold_engine).unwrap(); // warm-up (page cache, lazy allocs)
    let legacy_secs = best_of(3, || run_with_engine(&cfg, &legacy_engine).unwrap());
    let cold_secs = best_of(3, || run_with_engine(&cfg, &cold_engine).unwrap());
    let warm_secs = best_of(3, || run_with_engine(&cfg, &warm_engine).unwrap());
    let cold_cells_per_sec = cells as f64 / cold_secs;
    let warm_cells_per_sec = cells as f64 / warm_secs;

    // --- Solver iteration counters on the same grid for each path (the non-wall-clock
    // evidence that the continuation and the superlinear μ-step save work).
    let legacy_counters = legacy_engine.run(&grid).unwrap().counters.solver;
    let cold_counters = cold_engine.run(&grid).unwrap().counters.solver;
    let warm_counters = warm_engine.run(&grid).unwrap().counters.solver;

    // --- Steady-state allocations per cell (same contract as tests/alloc_free.rs),
    // measured on the warm path — the stricter case, since it carries state.
    let scenario = ScenarioBuilder::paper_default().with_devices(cfg.devices).build(11).unwrap();
    let optimizer = JointOptimizer::new(cfg.solver.with_warm_start(true));
    let mut ws = SolverWorkspace::new();
    optimizer.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap(); // warm-up
    let before = thread_allocation_count();
    let reps = 20u64;
    for _ in 0..reps {
        ws.reset_warm_start();
        optimizer.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap();
    }
    let allocs_per_cell = (thread_allocation_count() - before) as f64 / reps as f64;

    // --- sp2 hot-path latency (the Theorem-2 + Algorithm-1 stack, allocation-free form).
    let r_min: Vec<f64> = scenario.devices.iter().map(|d| d.upload_bits / 0.05).collect();
    let start_alloc = flsys::Allocation::equal_split_max(&scenario);
    let mut scratch = sp2::Sp2Scratch::new();
    let solver_cfg = cfg.solver;
    let sp2_secs = {
        let mut once = || {
            scratch.stage_start(&start_alloc.powers_w, &start_alloc.bandwidths_hz);
            sp2::solve_in(&scenario, Weights::balanced(), &r_min, &solver_cfg, &mut scratch)
                .unwrap()
                .comm_energy_per_round_j
        };
        once(); // warm-up
        best_of(10, &mut once)
    };

    // --- Streaming reducer footprint: accumulators are O(points × arms) by construction.
    let peak_accumulators = points * arms;

    // --- Fleet-scale single-scenario solves (PR 6): one cold solve per device count on
    // the struct-of-arrays hot path (fast config, reference polish off — the large_n
    // preset's setup), wall clock plus the counters that prove the scalar searches stay
    // flat in n.
    let mut fleet_cfg = SolverConfig::fast();
    fleet_cfg.polish_with_reference = false;
    let fleet = JointOptimizer::new(fleet_cfg);
    let fleet_rows: Vec<(usize, f64, SolveCounters)> = [1_000usize, 10_000, 100_000]
        .iter()
        .map(|&n| {
            let scenario = ScenarioBuilder::paper_default().with_devices(n).build(11).unwrap();
            let mut ws = SolverWorkspace::with_capacity(n);
            fleet.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap(); // warm-up
            let runs = if n >= 100_000 { 2 } else { 3 };
            let secs = best_of(runs, || {
                ws.reset_warm_start();
                fleet.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap()
            });
            ws.counters.reset();
            ws.reset_warm_start();
            fleet.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap();
            (n, secs, ws.counters)
        })
        .collect();
    let fleet_json: String = fleet_rows
        .iter()
        .map(|(n, secs, k)| {
            format!(
                "    {{ \"devices\": {n}, \"solve_ms\": {:.1}, \"mu_evals\": {}, \
                 \"sp1_probe_evals\": {}, \"kkt_solves\": {}, \"lp_sorts\": {} }}",
                secs * 1e3,
                k.mu_bisect_evals,
                k.sp1_probe_evals,
                k.kkt_solves,
                k.lp_sorts
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // --- Adaptive warm μ-bracket (PR 7): the warm path with and without the adaptive
    // bracket width + endpoint-value reuse, counters only (same grid as above).
    let fixed_mu = SweepEngine::single_thread()
        .with_warm_start(true)
        .with_adaptive_mu_bracket(false)
        .run(&grid)
        .unwrap()
        .counters
        .solver
        .mu_bisect_evals;
    let adaptive_mu = warm_counters.mu_bisect_evals;

    // --- Sharded fleet sweeps (PR 7): the fig2 quick protocol at the paper's 100
    // draws/point, direct vs 1/2/4 worker subprocesses (workers pinned to 1 engine
    // thread each so the rows measure fleet fan-out, not intra-worker threading), plus
    // a cold-vs-cached re-run over the content-addressed shard cache.
    let mut fleet_spec = presets::spec(2, Variant::Quick).unwrap();
    fleet_spec.override_seed_count(100);
    fleet_spec.engine.threads = Some(1);
    let runner = locate_fedopt();
    let runner_kind = match &runner {
        FleetRunner::Subprocess(_) => "subprocess",
        FleetRunner::InProcess => "in_process",
    };
    let runner: Box<dyn ShardRunner> = match runner {
        FleetRunner::Subprocess(bin) => Box::new(SubprocessRunner::new(bin)),
        FleetRunner::InProcess => Box::new(InProcessRunner),
    };
    let direct_secs = best_of(2, || fleet_spec.run().unwrap());
    let shard_rows: Vec<(usize, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&n| {
            let opts = FleetOptions { shards: n, ..FleetOptions::default() };
            let secs = best_of(2, || run_fleet(&fleet_spec, &opts, runner.as_ref()).unwrap());
            (n, secs)
        })
        .collect();
    let shard_json: String = shard_rows
        .iter()
        .map(|(n, secs)| {
            format!(
                "    {{ \"shards\": {n}, \"sweep_ms\": {:.1}, \"speedup_vs_direct\": {:.3} }}",
                secs * 1e3,
                direct_secs / secs
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let cache_dir: PathBuf =
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/shard-cache-bench"));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let fleet_opts = || FleetOptions {
        shards: 4,
        cache: Some(ShardCache::open(&cache_dir).expect("cache dir")),
        ..FleetOptions::default()
    };
    let cold_start = Instant::now();
    let (_, cold_stats) = run_fleet(&fleet_spec, &fleet_opts(), runner.as_ref()).unwrap();
    let cache_cold_secs = cold_start.elapsed().as_secs_f64();
    let warm_start_t = Instant::now();
    let (_, warm_stats) = run_fleet(&fleet_spec, &fleet_opts(), runner.as_ref()).unwrap();
    let cache_warm_secs = warm_start_t.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let json = format!(
        "{{\n  \"bench\": \"perf_capture\",\n  \"grid\": \"fig2_quick\",\n  \
         \"cells\": {cells},\n  \"legacy_bisect_cells_per_sec\": {:.1},\n  \
         \"cold_cells_per_sec\": {cold_cells_per_sec:.1},\n  \
         \"warm_cells_per_sec\": {warm_cells_per_sec:.1},\n  \
         \"superlinear_mu_speedup\": {:.3},\n  \"warm_speedup\": {:.3},\n  \
         \"legacy_mu_bisect_evals\": {},\n  \
         \"cold_jong_iterations\": {},\n  \"warm_jong_iterations\": {},\n  \
         \"cold_mu_bisect_evals\": {},\n  \"warm_mu_bisect_evals\": {},\n  \
         \"cold_sp1_probe_evals\": {},\n  \"warm_sp1_probe_evals\": {},\n  \
         \"cold_lp_sorts\": {},\n  \"cold_kkt_solves\": {},\n  \
         \"warm_fast_path_hits\": {},\n  \
         \"allocs_per_cell_steady_state\": {allocs_per_cell},\n  \
         \"sp2_solve_in_us\": {:.1},\n  \"peak_accumulators\": {peak_accumulators},\n  \
         \"large_n\": [\n{fleet_json}\n  ],\n  \
         \"adaptive_mu_bracket_warm_mu_evals\": {adaptive_mu},\n  \
         \"fixed_mu_bracket_warm_mu_evals\": {fixed_mu},\n  \
         \"fleet\": {{\n    \"grid\": \"fig2_quick_seeds100\",\n    \
         \"runner\": \"{runner_kind}\",\n    \
         \"direct_sweep_ms\": {:.1},\n    \"shards\": [\n{shard_json}\n    ],\n    \
         \"cache_cold_ms\": {:.1},\n    \"cache_warm_ms\": {:.1},\n    \
         \"cache_speedup\": {:.1},\n    \
         \"cold_hits_misses\": [{}, {}],\n    \"warm_hits_misses\": [{}, {}]\n  }},\n  \
         \"seed_chunk\": {},\n  \"threads\": 1\n}}\n",
        cells as f64 / legacy_secs,
        legacy_secs / cold_secs,
        cold_secs / warm_secs,
        legacy_counters.mu_bisect_evals,
        cold_counters.jong_iterations,
        warm_counters.jong_iterations,
        cold_counters.mu_bisect_evals,
        warm_counters.mu_bisect_evals,
        cold_counters.sp1_probe_evals,
        warm_counters.sp1_probe_evals,
        cold_counters.lp_sorts,
        cold_counters.kkt_solves,
        warm_counters.sp2_fast_path_hits,
        sp2_secs * 1e6,
        direct_secs * 1e3,
        cache_cold_secs * 1e3,
        cache_warm_secs * 1e3,
        cache_cold_secs / cache_warm_secs,
        cold_stats.shard_cache_hits,
        cold_stats.shard_cache_misses,
        warm_stats.shard_cache_hits,
        warm_stats.shard_cache_misses,
        cold_engine.seed_chunk(),
    );
    print!("{json}");

    // Workspace root (bench crate lives at crates/bench).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.capture.json");
    std::fs::write(out, &json).expect("write BENCH_PR7.capture.json");
    eprintln!("wrote {out}");

    assert_eq!(allocs_per_cell, 0.0, "steady-state cells must not allocate");
    assert!(
        warm_counters.jong_iterations < cold_counters.jong_iterations,
        "warm start must save Jong iterations"
    );
    assert!(
        cold_counters.mu_bisect_evals < legacy_counters.mu_bisect_evals,
        "the superlinear μ-step must save g'(μ) evaluations over pure bisection"
    );
    // The step-4b sort happens once per parametric KKT solve, never per μ-evaluation.
    assert!(cold_counters.lp_sorts <= cold_counters.kkt_solves, "lp re-sorted per μ-eval");
    assert!(
        adaptive_mu < fixed_mu,
        "the adaptive warm μ-bracket must spend fewer evals than the fixed width"
    );
    assert_eq!(warm_stats.shard_cache_misses, 0, "a warm re-run must be pure cache reads");
}

enum FleetRunner {
    Subprocess(PathBuf),
    InProcess,
}

/// The release `fedopt` binary next to this bench's own executable (`FEDOPT_BIN`
/// overrides). Bench executables live in `target/<profile>/deps/`, the binary one level
/// up in `target/<profile>/`.
fn locate_fedopt() -> FleetRunner {
    if let Ok(path) = std::env::var("FEDOPT_BIN") {
        return FleetRunner::Subprocess(PathBuf::from(path));
    }
    let candidate = std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.parent()?.join("fedopt")))
        .filter(|p| p.is_file());
    match candidate {
        Some(bin) => FleetRunner::Subprocess(bin),
        None => {
            eprintln!(
                "note: no fedopt binary found next to the bench executable \
                 (build with `cargo build --release -p fedopt --bin fedopt` or set \
                 FEDOPT_BIN); fleet rows fall back to in-process workers"
            );
            FleetRunner::InProcess
        }
    }
}
