//! Round-simulation throughput benchmarks (PR 10).
//!
//! Two levels:
//!
//! * `round_sim/<policy>` — the `rounds-quick` preset narrowed to one policy arm, on the
//!   sequential engine: the per-policy cost of a (round × seed) cell. The `re_solve`
//!   policy runs on both the warm and cold solver paths (warm is the production default
//!   — the PR 4 continuation carries across a seed's rounds); the selection policies
//!   (`static`, `fedaecs`, `elastic`) never touch Algorithm 2 after round 0, so each
//!   gets one row.
//! * `round_sim/full_quick` — the whole four-policy preset end to end, the `fedopt sim
//!   --preset rounds-quick` workload.
//!
//! After the criterion groups run, the per-policy cells/sec rows (a cell = one policy ×
//! round × seed evaluation) are written to `BENCH_PR10.capture.json` at the workspace
//! root (gitignored; CI uploads it as an artifact so the perf trajectory is recorded per
//! commit).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::presets;
use experiments::rounds::simulate_with_engine;
use experiments::spec::ExperimentSpec;
use experiments::SweepEngine;
use std::time::{Duration, Instant};

/// The `rounds-quick` preset narrowed to a single policy arm.
fn single_policy_spec(kind: &str) -> ExperimentSpec {
    let mut spec = presets::sim("rounds-quick").expect("rounds-quick preset exists");
    let rounds = spec.rounds.as_mut().expect("sim preset carries a rounds section");
    rounds.policies.retain(|p| p.policy.name() == kind);
    assert_eq!(rounds.policies.len(), 1, "rounds-quick must have exactly one {kind} arm");
    spec
}

/// Rounds × seeds of a spec: the cell count of one policy arm.
fn cells(spec: &ExperimentSpec) -> usize {
    spec.rounds.as_ref().expect("rounds section").rounds as usize * spec.seeds.len() as usize
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_sim");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    for (label, kind, warm) in [
        ("resolve_warm", "re_solve", true),
        ("resolve_cold", "re_solve", false),
        ("static", "static", false),
        ("fedaecs", "fedaecs", false),
        ("elastic", "elastic", false),
    ] {
        let spec = single_policy_spec(kind);
        let engine = SweepEngine::single_thread().with_warm_start(warm);
        group.bench_function(label, |b| b.iter(|| simulate_with_engine(&spec, &engine).unwrap()));
    }
    let full = presets::sim("rounds-quick").unwrap();
    let engine = SweepEngine::single_thread();
    group
        .bench_function("full_quick", |b| b.iter(|| simulate_with_engine(&full, &engine).unwrap()));
    group.finish();
}

fn capture(_c: &mut Criterion) {
    let row = |kind: &str, warm: bool| {
        let spec = single_policy_spec(kind);
        let engine = SweepEngine::single_thread().with_warm_start(warm);
        simulate_with_engine(&spec, &engine).unwrap(); // warm-up
        let secs = best_of(3, || simulate_with_engine(&spec, &engine).unwrap());
        cells(&spec) as f64 / secs
    };
    let resolve_warm = row("re_solve", true);
    let resolve_cold = row("re_solve", false);
    let static_ = row("static", false);
    let fedaecs = row("fedaecs", false);
    let elastic = row("elastic", false);
    let spec = presets::sim("rounds-quick").unwrap();
    let json = format!(
        "{{\n  \"bench\": \"round_sim\",\n  \"preset\": \"rounds-quick\",\n  \
         \"devices\": {},\n  \"rounds\": {},\n  \"seeds\": {},\n  \
         \"cells_per_policy\": {},\n  \"cells_per_sec\": {{\n    \
         \"resolve_warm\": {resolve_warm:.1},\n    \
         \"resolve_cold\": {resolve_cold:.1},\n    \"static\": {static_:.1},\n    \
         \"fedaecs\": {fedaecs:.1},\n    \"elastic\": {elastic:.1}\n  }}\n}}\n",
        spec.axis.values[0] as u64,
        spec.rounds.as_ref().unwrap().rounds,
        spec.seeds.len(),
        cells(&spec),
    );
    print!("{json}");
    // Workspace root (the bench crate lives at crates/bench).
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.capture.json");
    std::fs::write(out, &json).expect("write BENCH_PR10.capture.json");
    eprintln!("wrote {out}");

    // The non-wall-clock shape checks: re-solving every round costs solver work the
    // selection policies never spend, so their cells must be strictly cheaper.
    assert!(static_ > resolve_cold, "static replay must out-run per-round re-solving");
    assert!(fedaecs > resolve_cold, "FedAECS selection must out-run per-round re-solving");
}

criterion_group!(benches, bench_policies, capture);
criterion_main!(benches);
