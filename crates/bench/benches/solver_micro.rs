//! Micro-benchmarks of the solver building blocks: the numerical substrate, Subproblem 1,
//! Subproblem 2, and the full Algorithm 2 at several system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedopt_core::sp2::{self, PowerBandwidth};
use fedopt_core::{sp1, JointOptimizer, KktScratch, SolverConfig, SolverWorkspace};
use flsys::{Allocation, ScenarioBuilder, Weights};
use std::time::Duration;

fn bench_numerics(c: &mut Criterion) {
    let mut group = c.benchmark_group("numopt");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("lambert_w0", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100 {
                acc += numopt::lambert_w0(std::hint::black_box(i as f64 * 0.37)).unwrap();
            }
            acc
        })
    });
    group.bench_function("simplex_projection_50", |b| {
        let v: Vec<f64> = (0..50).map(|i| (i as f64 * 0.77).sin()).collect();
        b.iter(|| {
            let mut x = v.clone();
            numopt::project_simplex(&mut x, 1.0).unwrap();
            x[0]
        })
    });
    group.finish();
}

fn bench_subproblems(c: &mut Criterion) {
    let mut group = c.benchmark_group("subproblems");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(4));
    let cfg = SolverConfig::fast();
    for &n in &[10usize, 25] {
        let scenario = ScenarioBuilder::paper_default().with_devices(n).build(7).unwrap();
        let uploads = vec![0.01; n];
        group.bench_with_input(BenchmarkId::new("sp1_direct", n), &n, |b, _| {
            b.iter(|| {
                sp1::solve_direct(&scenario, Weights::balanced(), &uploads, &cfg).unwrap().objective
            })
        });
        let alloc = Allocation::equal_split_max(&scenario);
        let r_min: Vec<f64> = scenario.devices.iter().map(|d| d.upload_bits / 0.05).collect();
        group.bench_with_input(BenchmarkId::new("sp2_solve", n), &n, |b, _| {
            let mut scratch = KktScratch::default();
            b.iter(|| {
                let start =
                    PowerBandwidth::new(alloc.powers_w.clone(), alloc.bandwidths_hz.clone());
                sp2::solve_scratch(
                    &scenario,
                    Weights::balanced(),
                    &r_min,
                    start,
                    &cfg,
                    &mut scratch,
                )
                .unwrap()
                .comm_energy_per_round_j
            })
        });
        // The all-scratch form the sweep engine drives: bit-identical solution, zero heap
        // allocations in steady state.
        group.bench_with_input(BenchmarkId::new("sp2_solve_in", n), &n, |b, _| {
            let mut scratch = sp2::Sp2Scratch::new();
            b.iter(|| {
                scratch.stage_start(&alloc.powers_w, &alloc.bandwidths_hz);
                sp2::solve_in(&scenario, Weights::balanced(), &r_min, &cfg, &mut scratch)
                    .unwrap()
                    .comm_energy_per_round_j
            })
        });
    }
    group.finish();
}

fn bench_full_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(6));
    let cfg = SolverConfig::fast();
    let optimizer = JointOptimizer::new(cfg);
    for &n in &[10usize, 25] {
        let scenario = ScenarioBuilder::paper_default().with_devices(n).build(9).unwrap();
        group.bench_with_input(BenchmarkId::new("solve_balanced", n), &n, |b, _| {
            b.iter(|| optimizer.solve(&scenario, Weights::balanced()).unwrap().objective)
        });
        // The workspace-reusing hot path the sweep engine drives (bit-identical output).
        group.bench_with_input(BenchmarkId::new("solve_balanced_with_workspace", n), &n, |b, _| {
            let mut ws = SolverWorkspace::with_capacity(n);
            b.iter(|| {
                optimizer.solve_with(&scenario, Weights::balanced(), &mut ws).unwrap().objective
            })
        });
        // The summary form: identical numbers, no Outcome materialisation — the actual
        // per-cell path of every figure sweep (zero allocations in steady state).
        group.bench_with_input(BenchmarkId::new("solve_balanced_summary", n), &n, |b, _| {
            let mut ws = SolverWorkspace::with_capacity(n);
            b.iter(|| {
                optimizer
                    .solve_summary_with(&scenario, Weights::balanced(), &mut ws)
                    .unwrap()
                    .objective
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_numerics, bench_subproblems, bench_full_solve);
criterion_main!(benches);
