//! Per-request latency of the `fedopt serve` session loop (PR 9).
//!
//! Drives [`experiments::serve::serve_session`] in process — real worker threads, real
//! response serialization, output to a sink — with a replayed JSON-lines request
//! stream, so the measured cost is the full admission → dispatch → solve → respond
//! path and not just the solver. Two stream shapes:
//!
//! * `serve_latency/cold_32req` — 32 distinct scenarios (every request a warm miss);
//! * `serve_latency/warm_32req` — one scenario replayed 32 times (31 warm-cache hits,
//!   the PR 4 continuation resolving each repeat with 0 Jong iterations).
//!
//! Besides throughput, each shape reports its per-request p50/p99 (microseconds, from
//! the session's own `--timing` instrumentation) on stderr once before the criterion
//! samples — the latency numbers the ISSUE's serving contract asks for.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::serve::{serve_session, ServeOptions, ServeStats};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

const REQUESTS: usize = 32;

fn request(id: usize, seed: u64) -> String {
    format!(
        "{{\"schema_version\":1,\"id\":\"r{id}\",\"scenario\":{{\"devices\":5}},\
         \"seed\":{seed},\"solver\":{{\"preset\":\"fast\"}}}}\n"
    )
}

/// A 32-request stream: distinct seeds (cold) or one seed replayed (warm).
fn stream(warm: bool) -> String {
    (0..REQUESTS).map(|i| request(i, if warm { 7 } else { i as u64 })).collect()
}

fn options() -> ServeOptions {
    ServeOptions {
        workers: 1,            // one worker: every request lands on the same warm state
        queue_depth: REQUESTS, // a replayed burst must queue, not shed
        timing: true,
        warm_start: Some(true),
        ..ServeOptions::default()
    }
}

fn run_session(input: &str, opts: &ServeOptions) -> ServeStats {
    let drain = AtomicBool::new(false);
    serve_session(input.as_bytes(), std::io::sink(), opts, &drain)
        .expect("an in-process session must not fail")
}

fn bench_serve_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    let opts = options();
    for (label, warm) in [("cold", false), ("warm", true)] {
        let input = stream(warm);
        // One instrumented pass up front: the per-request latency percentiles.
        let stats = run_session(&input, &opts);
        assert_eq!(stats.ok, REQUESTS as u64, "every benched request must resolve ok");
        eprintln!(
            "serve_latency/{label}_{REQUESTS}req: p50={} us p99={} us \
             (warm_hits={} warm_misses={})",
            stats.percentile_us(50),
            stats.percentile_us(99),
            stats.warm_hits,
            stats.warm_misses,
        );
        group.bench_function(format!("{label}_{REQUESTS}req"), |b| {
            b.iter(|| run_session(&input, &opts).requests)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_latency);
criterion_main!(benches);
