//! Regenerates a reduced-resolution version of the paper's Figure 8 (proposed vs Scheme 1) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_sota");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig8::Fig8Config {
                devices: 8,
                p_max_dbm: vec![8.0, 12.0],
                deadlines_s: vec![100.0],
                seeds: vec![7],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let report = experiments::fig8::run(&cfg).unwrap();
            report.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
