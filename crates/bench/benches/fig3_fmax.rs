//! Regenerates a reduced-resolution version of the paper's Figure 3 (energy/delay vs maximum CPU frequency) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fmax");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig3::Fig3Config {
                devices: 8,
                seeds: vec![2],
                f_max_ghz: vec![0.5, 2.0],
                weights: vec![flsys::Weights::new(0.5, 0.5).unwrap()],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let (energy, _) = experiments::fig3::run(&cfg).unwrap();
            energy.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
