//! Regenerates a reduced-resolution version of the paper's Figure 6 (energy/delay vs computation rounds) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_rounds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig6::Fig6Config {
                local_iterations: vec![10, 110],
                global_rounds: vec![50, 400],
                devices: 8,
                seeds: vec![5],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let (energy, _) = experiments::fig6::run(&cfg).unwrap();
            energy.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
