//! Regenerates a reduced-resolution version of the paper's Figure 5 (energy/delay vs cell radius) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_radius");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig5::Fig5Config {
                radii_km: vec![0.25, 1.0],
                device_counts: vec![8],
                samples_per_device: 500,
                seeds: vec![4],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let (energy, _) = experiments::fig5::run(&cfg).unwrap();
            energy.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
