//! Cold vs warm benchmarks of the warm-start continuation (PR 4).
//!
//! Two levels:
//!
//! * `warm_start/alg2_{cold,warm}_{10,25}dev` — `Algorithm 2` micro: repeated
//!   `solve_summary_with` on one scenario with a persistent workspace. The warm variant
//!   resets the carried state before every solve, so it measures the *within-solve*
//!   continuation only (multiplier carry, fast path, μ/ω bracket reuse) — the same
//!   apples-to-apples comparison `BENCH_PR4.json` records.
//! * `warm_start/fig2_quick_{cold,warm}` — the end-to-end fig2 quick grid through the
//!   sweep engine, where the continuation additionally carries across the arms of each
//!   cell-group.
//! * `warm_start/fig2_100draw_{cold,warm}` — the paper-scale draw count (100 seeds/point,
//!   trimmed to 8 devices / 2 points like `engine_scaling_100draws`), sequential engine:
//!   the end-to-end wall-clock evidence `BENCH_PR4.json` records for the 100-draw grid.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig2::{run_with_engine, Fig2Config};
use experiments::SweepEngine;
use fedopt_core::{JointOptimizer, SolverConfig, SolverWorkspace, Weights};
use flsys::ScenarioBuilder;
use std::time::Duration;

fn bench_alg2_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_start");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5));
    for &n in &[10usize, 25] {
        let scenario = ScenarioBuilder::paper_default().with_devices(n).build(9).unwrap();
        for (label, warm) in [("cold", false), ("warm", true)] {
            let optimizer = JointOptimizer::new(SolverConfig::fast().with_warm_start(warm));
            group.bench_function(format!("alg2_{label}_{n}dev"), |b| {
                let mut ws = SolverWorkspace::with_capacity(n);
                b.iter(|| {
                    ws.reset_warm_start();
                    optimizer
                        .solve_summary_with(&scenario, Weights::balanced(), &mut ws)
                        .unwrap()
                        .objective
                })
            });
        }
    }
    group.finish();
}

fn bench_fig2_quick(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_start");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(10));
    let cfg = Fig2Config::quick();
    for (label, warm) in [("cold", false), ("warm", true)] {
        let engine = SweepEngine::single_thread().with_warm_start(warm);
        group.bench_function(format!("fig2_quick_{label}"), |b| {
            b.iter(|| run_with_engine(&cfg, &engine).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("warm_start");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(2))
        .measurement_time(Duration::from_secs(20));
    let mut cfg100 = Fig2Config::quick();
    cfg100.devices = 8;
    cfg100.p_max_dbm = vec![5.0, 12.0];
    cfg100.seeds = (0..100).collect();
    for (label, warm) in [("cold", false), ("warm", true)] {
        let engine = SweepEngine::single_thread().with_warm_start(warm);
        group.bench_function(format!("fig2_100draw_{label}"), |b| {
            b.iter(|| run_with_engine(&cfg100, &engine).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alg2_micro, bench_fig2_quick);
criterion_main!(benches);
