//! Fleet-scale single-scenario solves (PR 6): Algorithm 2 at 10³–10⁵ devices through the
//! struct-of-arrays hot path.
//!
//! The interesting regime here is one *large* scenario, not many small ones: per-device
//! work must stay `O(n)`–`O(n log n)` per outer iteration and the iteration counts of the
//! scalar searches (the golden section over `T`, the Brent `μ`-root) must stay flat in
//! `n`. Two knobs make the fleet scale tractable and match `presets::large_n`:
//!
//! * `polish_with_reference` is off — the reference cross-check re-solves a sum-of-ratios
//!   program with an `O(n)` inner pass per price evaluation and hundreds of evaluations,
//!   which is noise at 10 devices and dominant past ~10³;
//! * `SolverConfig::fast()` tolerances, the same configuration every figure sweep uses.
//!
//! `large_n/solve_1000` … `solve_100000` time the default path (warm start + Brent, reset
//! per iteration so every solve is cold); `large_n/solve_bisect_mu_10000` times the legacy
//! pure-bisection `μ`-root at 10⁴ devices for the superlinear-step comparison that
//! `BENCH_PR6.json` records.
//!
//! Run with `cargo bench -p fedopt-bench --bench large_n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedopt_core::{JointOptimizer, SolverConfig, SolverWorkspace};
use flsys::{ScenarioBuilder, Weights};
use std::time::Duration;

/// The fleet-scale configuration (`presets::large_n` uses the same one).
fn fleet_config() -> SolverConfig {
    let mut cfg = SolverConfig::fast();
    cfg.polish_with_reference = false;
    cfg
}

fn bench_large_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_n");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    let optimizer = JointOptimizer::new(fleet_config());
    for &n in &[1_000usize, 10_000, 100_000] {
        let scenario = ScenarioBuilder::paper_default().with_devices(n).build(11).unwrap();
        group.bench_with_input(BenchmarkId::new("solve", n), &n, |b, _| {
            let mut ws = SolverWorkspace::with_capacity(n);
            b.iter(|| {
                ws.reset_warm_start();
                optimizer
                    .solve_summary_with(&scenario, Weights::balanced(), &mut ws)
                    .unwrap()
                    .objective
            })
        });
    }
    // The legacy pure-bisection μ-root at 10⁴ devices: every extra g'(μ) evaluation is an
    // O(n) pass, so the superlinear step's eval savings translate directly to wall clock.
    let bisect = JointOptimizer::new(fleet_config().with_superlinear_mu(false));
    let scenario = ScenarioBuilder::paper_default().with_devices(10_000).build(11).unwrap();
    group.bench_with_input(BenchmarkId::new("solve_bisect_mu", 10_000), &10_000, |b, _| {
        let mut ws = SolverWorkspace::with_capacity(10_000);
        b.iter(|| {
            ws.reset_warm_start();
            bisect.solve_summary_with(&scenario, Weights::balanced(), &mut ws).unwrap().objective
        })
    });
    group.finish();
}

criterion_group!(benches, bench_large_n);
criterion_main!(benches);
