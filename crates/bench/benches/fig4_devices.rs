//! Regenerates a reduced-resolution version of the paper's Figure 4 (energy/delay vs number of devices) as a benchmark, so
//! `cargo bench` exercises the same code path the experiment harness uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_devices");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    group.bench_function("reduced_sweep", |b| {
        b.iter(|| {
            let cfg = experiments::fig4::Fig4Config {
                device_counts: vec![8, 16],
                total_samples: 8_000,
                seeds: vec![3],
                weights: vec![flsys::Weights::new(0.5, 0.5).unwrap()],
                solver: fedopt_core::SolverConfig::fast(),
            };
            let (energy, _) = experiments::fig4::run(&cfg).unwrap();
            energy.rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
