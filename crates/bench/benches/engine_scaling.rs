//! Benchmarks the SweepEngine's thread scaling: the quick Figure-2 grid evaluated
//! sequentially and with 2/4 workers, and the same grid scaled to the paper's 100 scenario
//! draws per point (trimmed to 8 devices / 2 points so a sequential pass stays benchable).
//! On a multi-core host the 4-worker run demonstrates the >= 2x speedup the engine was
//! introduced for (the grid is embarrassingly parallel); output is bit-identical across
//! all of them (see the `engine_integration` tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::fig2::{run_with_engine, Fig2Config};
use experiments::SweepEngine;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8));
    let cfg = Fig2Config::quick();
    for &threads in &[1usize, 2, 4] {
        let engine = SweepEngine::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("fig2_quick", threads), &threads, |b, _| {
            b.iter(|| {
                let (energy, _) = run_with_engine(&cfg, &engine).unwrap();
                energy.rows.len()
            })
        });
    }
    group.finish();

    // The figure defaults' draw count: 100 seeds per point, where per-worker workspace
    // reuse and the per-(point, seed) scenario cache pay off across a long seed grid.
    let mut group = c.benchmark_group("engine_scaling_100draws");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(10));
    let mut cfg = Fig2Config::quick();
    cfg.devices = 8;
    cfg.p_max_dbm = vec![5.0, 12.0];
    cfg.seeds = (0..100).collect();
    for &threads in &[1usize, 4] {
        let engine = SweepEngine::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("fig2_8dev", threads), &threads, |b, _| {
            b.iter(|| {
                let (energy, _) = run_with_engine(&cfg, &engine).unwrap();
                energy.rows.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
