//! # fedopt-bench
//!
//! Criterion bench targets live under `benches/`; run them with
//! `cargo bench -p fedopt-bench` (or a single harness, e.g.
//! `cargo bench -p fedopt-bench --bench engine_scaling`).
//!
//! The library itself hosts one thing: [`CountingAllocator`], the instrumented global
//! allocator behind the zero-allocation proof (`tests/alloc_free.rs`) and the
//! `perf_capture` bench that records `BENCH_PR3.json`.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

std::thread_local! {
    /// Per-thread allocation count. Thread-local (const-initialized, so reading it never
    /// allocates) because the test harness runs other tests — and the sweep engine other
    /// workers — concurrently; a process-global counter would attribute their allocations
    /// to the measuring thread.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// A [`System`]-backed global allocator that counts every allocation — and every
/// reallocation, growing *or* shrinking (deliberately conservative: any `realloc` may move
/// the block, so the zero-allocation proof treats it as heap traffic) — made by the
/// *current thread*.
///
/// Install it in a test or bench binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;` and read the
/// counter with [`thread_allocation_count`]; the difference across a code region is the
/// number of heap allocations that region performed on this thread. Deallocations are not
/// counted — the zero-allocation contract is about not *requesting* memory in steady
/// state.
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn record() {
        // `try_with`: during thread teardown the TLS slot may already be destroyed; those
        // few allocations are simply not counted rather than panicking inside the
        // allocator.
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
    }
}

// SAFETY: every method forwards verbatim to `System`; the only addition is a thread-local
// counter bump, which performs no allocation (const-initialized `Cell<u64>`).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Number of heap allocations the current thread has performed so far (see
/// [`CountingAllocator`]). Monotone; measure a region by differencing.
pub fn thread_allocation_count() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}
