//! # fedopt-bench
//!
//! This crate exists only to host the Criterion bench targets under `benches/`; it has no
//! library code of its own. Run them with `cargo bench -p fedopt-bench` (or a single
//! harness, e.g. `cargo bench -p fedopt-bench --bench engine_scaling`).

#![forbid(unsafe_code)]
