//! The zero-allocation proof of the solver hot path.
//!
//! With the instrumented global allocator installed, a warmed-up [`SolverWorkspace`] must
//! evaluate every cell of the `Fig2Config::quick()` grid — every proposed-arm weight pair
//! and the random benchmark, across all points and seeds — with **zero heap allocations**
//! on the measuring thread. Allocation counts are per-thread, so concurrently running
//! sibling tests cannot pollute the measurement.

use experiments::fig2::Fig2Config;
use fedopt_bench::thread_allocation_count;
use fedopt_core::{sp2, JointOptimizer, SolverWorkspace};
use flsys::{Scenario, Weights};

#[global_allocator]
static ALLOCATOR: fedopt_bench::CountingAllocator = fedopt_bench::CountingAllocator;

/// All scenarios of the fig2 quick grid (points × seeds), prebuilt: scenario construction
/// is not part of the per-cell contract (the engine builds once per cell-group and shares).
fn quick_grid_scenarios(cfg: &Fig2Config) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for &p_max in &cfg.p_max_dbm {
        let builder =
            flsys::ScenarioBuilder::paper_default().with_devices(cfg.devices).with_p_max_dbm(p_max);
        for &seed in &cfg.seeds {
            scenarios.push(builder.build(seed).unwrap());
        }
    }
    scenarios
}

#[test]
fn fig2_quick_cells_are_allocation_free_after_warmup() {
    let cfg = Fig2Config::quick();
    let scenarios = quick_grid_scenarios(&cfg);
    // Pin the cold path: this test never resets warm state between scenarios, so the
    // (now-default) continuation would make the two passes' trajectories — and checksums —
    // differ. The warm variant below owns the warm-path contract.
    let optimizer = JointOptimizer::new(cfg.solver.with_warm_start(false));
    let mut ws = SolverWorkspace::new();

    let run_all_cells = |ws: &mut SolverWorkspace| {
        let mut checksum = 0.0;
        for scenario in &scenarios {
            // Proposed arms: one cell per weight pair.
            for &w in &cfg.weights {
                let out = optimizer.solve_summary_with(scenario, w, ws).unwrap();
                checksum += out.total_energy_j;
            }
            // The random-benchmark arm.
            let bench = baselines::BenchmarkAllocator::new();
            let summary = bench
                .random_frequency_summary_with(scenario, baselines::derive_stream_seed(7), ws)
                .unwrap();
            checksum += summary.total_energy_j;
        }
        checksum
    };

    // Warm-up pass: buffers grow to the grid's device count and iteration depth once.
    let warm = run_all_cells(&mut ws);

    // Steady state: a full second pass over every cell of the grid must not allocate.
    let before = thread_allocation_count();
    let measured = run_all_cells(&mut ws);
    let allocations = thread_allocation_count() - before;
    assert_eq!(
        allocations,
        0,
        "expected 0 heap allocations across {} warmed-up cells, counted {allocations}",
        scenarios.len() * (cfg.weights.len() + 1),
    );
    // The measured pass did real work (identical to the warm-up pass — pure scratch).
    assert_eq!(measured, warm);
    assert!(measured.is_finite() && measured > 0.0);
}

/// The warm-start continuation must stay inside the pooled buffers too: a warmed-up
/// workspace evaluating the same cells with `warm_start` enabled (carried multipliers,
/// μ/ω brackets, rate-floor snapshots, fast-path probes) performs zero heap allocations.
#[test]
fn warm_started_cells_are_allocation_free_after_warmup() {
    let mut cfg = Fig2Config::quick();
    cfg.solver = cfg.solver.with_warm_start(true);
    let scenarios = quick_grid_scenarios(&cfg);
    let optimizer = JointOptimizer::new(cfg.solver);
    let mut ws = SolverWorkspace::new();

    let run_all_cells = |ws: &mut SolverWorkspace| {
        let mut checksum = 0.0;
        for scenario in &scenarios {
            // The engine resets warm state at every cell-group boundary; mirror that here
            // so the measured pass exercises both the reset and the in-group carry.
            ws.reset_warm_start();
            for &w in &cfg.weights {
                let out = optimizer.solve_summary_with(scenario, w, ws).unwrap();
                checksum += out.total_energy_j;
            }
        }
        checksum
    };

    let warm = run_all_cells(&mut ws);
    let before = thread_allocation_count();
    let measured = run_all_cells(&mut ws);
    assert_eq!(
        thread_allocation_count() - before,
        0,
        "warm-started cells must not touch the heap after warm-up"
    );
    assert_eq!(measured, warm, "warm state is reset per scenario, so passes must agree");
}

#[test]
fn sp2_solve_in_is_allocation_free_after_warmup() {
    let scenario = flsys::ScenarioBuilder::paper_default().with_devices(10).build(11).unwrap();
    let cfg = fedopt_core::SolverConfig::default();
    let r_min: Vec<f64> = scenario.devices.iter().map(|d| d.upload_bits / 0.05).collect();
    let start = flsys::Allocation::equal_split_max(&scenario);
    let mut scratch = sp2::Sp2Scratch::new();

    let solve_once = |scratch: &mut sp2::Sp2Scratch| {
        scratch.stage_start(&start.powers_w, &start.bandwidths_hz);
        sp2::solve_in(&scenario, Weights::balanced(), &r_min, &cfg, scratch)
            .unwrap()
            .comm_energy_per_round_j
    };

    let warm = solve_once(&mut scratch);
    let before = thread_allocation_count();
    let energy = solve_once(&mut scratch);
    assert_eq!(
        thread_allocation_count() - before,
        0,
        "a warmed-up sp2::solve_in must not touch the heap"
    );
    assert_eq!(energy, warm);
}
