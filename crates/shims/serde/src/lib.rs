//! # serde (offline shim)
//!
//! The build environment has no access to a crates.io registry, so the real `serde`
//! cannot be fetched. This workspace only *decorates* types with
//! `#[derive(Serialize, Deserialize)]` — nothing actually serializes yet — so this shim
//! keeps those call sites source-compatible with marker traits and no-op derives.
//!
//! When real serialization lands (e.g. JSON export of [`FigureReport`]s), replace this
//! path dependency with the registry `serde` and everything downstream keeps compiling:
//! the trait names, derive names, and the `#[serde(...)]` attribute namespace all match.
//!
//! [`FigureReport`]: ../experiments/struct.FigureReport.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the `::serde::…` paths emitted by the derive macros resolve inside this crate too
// (dependents see the crate under the name `serde` already).
extern crate self as serde;

/// Marker stand-in for `serde::Serialize`.
///
/// Carries no methods; it only records the author's intent that the type is
/// serialization-ready so the real `serde` can be dropped in later.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive_shim::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    // The derives are exercised by every downstream crate; here we only check that a
    // marker impl written by the derive satisfies a generic bound.
    #[derive(crate::Serialize, crate::Deserialize)]
    struct Probe {
        _x: u8,
    }

    fn requires_serialize<T: crate::Serialize>() {}

    #[test]
    fn derive_implements_marker_traits() {
        requires_serialize::<Probe>();
    }
}
