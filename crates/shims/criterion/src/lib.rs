//! # criterion (offline shim)
//!
//! A small wall-clock benchmarking harness that is source-compatible with the subset of
//! the `criterion` 0.5 API used by `crates/bench`. The build environment cannot fetch the
//! real criterion from a registry; this shim keeps the bench files unchanged and prints
//! `min / mean / max` per-iteration timings instead of criterion's full statistics
//! (no outlier analysis, no HTML reports, no comparison against saved baselines).
//!
//! Supported surface: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::warm_up_time`], [`BenchmarkGroup::measurement_time`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::new`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark context (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named benchmark identifier with a parameter, e.g. `sp1_direct/25`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Upper bound on total measuring time (samples stop early when exceeded).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        match summarize(&bencher.samples) {
            Some((min, mean, max)) => println!(
                "{label:<40} time: [{} {} {}]  ({} samples)",
                fmt_duration(min),
                fmt_duration(mean),
                fmt_duration(max),
                bencher.samples.len()
            ),
            None => println!("{label:<40} time: [no samples collected]"),
        }
    }

    /// Ends the group (printing happens per-benchmark; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects timed samples of a routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting up to `sample_size` samples
    /// within the measurement-time budget. Each sample is one call's wall-clock seconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let measure_until = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
            if Instant::now() > measure_until {
                break;
            }
        }
    }
}

fn summarize(samples: &[f64]) -> Option<(f64, f64, f64)> {
    if samples.is_empty() {
        return None;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Some((min, mean, max))
}

fn fmt_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Groups benchmark functions into a single callable (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Benchmark group `", stringify!($group), "`.")]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `fn main` running the given groups (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_samples_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(2.0).ends_with(" s"));
        assert!(fmt_duration(2.0e-3).ends_with(" ms"));
        assert!(fmt_duration(2.0e-6).ends_with(" µs"));
        assert!(fmt_duration(2.0e-9).ends_with(" ns"));
    }
}
