//! # proptest (offline shim)
//!
//! A minimal property-testing harness that is source-compatible with the subset of the
//! `proptest` API this workspace uses. The build environment cannot fetch the real
//! `proptest` from a registry, so this shim provides:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]` header),
//! * range strategies for the numeric primitives (uniform sampling),
//! * [`collection::vec`] for vectors with a length range,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], and [`TestCaseError`].
//!
//! Differences from the real proptest, by design:
//!
//! * sampling is plain uniform — no edge-case biasing and **no shrinking**; a failing case
//!   reports the concrete arguments instead of a minimized counterexample;
//! * the default case count is 64 (`ProptestConfig::default`), and cases are deterministic
//!   per test (the RNG is seeded from the test's module path and name), so failures
//!   reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated; the harness panics with this message.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the harness draws a fresh case.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message (mirrors `proptest::test_runner::TestCaseError::fail`).
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from raw seed material.
    pub fn from_seed(seed: u64) -> Self {
        Self(seed)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Seeds the per-test RNG from the test's fully qualified name (FNV-1a).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::from_seed(h)
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u64, usize, u32, u8, u16);

    impl Strategy for Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty integer strategy range");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(span) as i64)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty integer strategy range");
            let span = (i64::from(self.end) - i64::from(self.start)) as u64;
            (i64::from(self.start) + rng.below(span) as i64) as i32
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a uniformly drawn length.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}

/// Defines property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    assert!(
                        rejected <= config.cases.saturating_mul(16).max(256),
                        "proptest shim: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    let described = [ $( format!("{} = {:?}", stringify!($arg), &$arg) ),* ].join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => rejected += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed on case {}: {}\n  inputs: {}",
                                stringify!($name), accepted, msg, described
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case (returns `TestCaseError::Fail`) when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case (draws a fresh one) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Uniform draws land inside their range.
        #[test]
        fn ranges_are_respected(x in -3.0f64..7.0, n in 1usize..20) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..20).contains(&n));
        }

        /// Vec strategies honour length and element bounds.
        #[test]
        fn vec_strategy_bounds(v in crate::collection::vec(0.0f64..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        /// `prop_assume` rejects without failing.
        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::rng_for("some::test");
        let mut b = crate::rng_for("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for("some::other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
