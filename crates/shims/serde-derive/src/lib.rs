//! # serde-derive (offline shim)
//!
//! Proc-macro half of the serde shim: `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! that implement the shim's *marker* traits instead of generating real
//! serialization code. `#[serde(...)]` field/container attributes are accepted and
//! ignored. See `crates/shims/serde` for the rationale.
//!
//! The parser is intentionally tiny (no `syn`/`quote`, which are also unavailable
//! offline): it scans the top-level token stream for `struct`/`enum`/`union`, takes the
//! following identifier as the type name, and bails out (emitting no impl at all) when the
//! type has generic parameters. Every type derived in this workspace is non-generic.

use proc_macro::{TokenStream, TokenTree};

/// Returns `(type_name, has_generics)` for a derive input, or `None` if the shape is not
/// recognised.
fn type_name(input: TokenStream) -> Option<(String, bool)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let has_generics = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), has_generics));
                }
                return None;
            }
        }
    }
    None
}

/// No-op `Serialize` derive: implements the marker trait `::serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        // Generic or unrecognised shapes get no impl; the traits are markers, so nothing
        // downstream can miss it.
        _ => TokenStream::new(),
    }
}

/// No-op `Deserialize` derive: implements the marker trait `::serde::Deserialize<'de>`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        _ => TokenStream::new(),
    }
}
