//! # rand (offline shim)
//!
//! A minimal, dependency-free drop-in for the subset of the `rand` 0.8 API that this
//! workspace uses. The build environment has no access to a crates.io registry, so the
//! real `rand` crate cannot be fetched; this shim keeps the call sites source-compatible
//! (`StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`) while staying tiny and auditable.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! well-studied, high-quality non-cryptographic PRNG. Streams are **not** bit-compatible
//! with upstream `rand`'s `StdRng` (ChaCha12); nothing in this workspace depends on the
//! exact stream, only on determinism per seed, which this shim guarantees.
//!
//! Supported surface:
//!
//! * [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`] for `f64` (uniform in `[0, 1)`) and the unsigned integer types
//! * [`Rng::gen_range`] for inclusive `f64` ranges (`lo..=hi`)
//! * [`rngs::StdRng`]
//!
//! Anything outside that subset is deliberately absent; add it here (with tests) before
//! using it downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::RangeInclusive;

/// A random number generator seeded from integer material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full state
    /// deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types that can be drawn uniformly from an inclusive range via [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, range: RangeInclusive<Self>) -> Self;
}

impl UniformSample for f64 {
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, range: RangeInclusive<Self>) -> Self {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range called with an empty range: {lo}..={hi}");
        let u = f64::sample(rng);
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// The user-facing RNG trait: a source of `u64`s plus typed convenience draws.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard (uniform) distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from an inclusive range.
    fn gen_range<T: UniformSample>(&mut self, range: RangeInclusive<T>) -> T {
        T::sample_inclusive(self, range)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not a reimplementation of upstream `rand`'s ChaCha12-based `StdRng`; see the crate
    /// docs for why that is acceptable here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_inclusive_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.5..=7.5);
            assert!((-2.5..=7.5).contains(&x));
        }
        // Degenerate range returns the single point.
        assert_eq!(rng.gen_range(4.0..=4.0), 4.0);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_ref: &mut StdRng = &mut rng;
        assert!(draw(dyn_ref) < 1.0);
    }
}
