//! Fuzzing the shard wire format and the on-disk cache against damage. The contract:
//! truncation, bit flips, and appended junk always yield a typed codec error (or a
//! cache miss) — never a panic, and never an *accepted but different* payload. A
//! mutation may only be accepted when it is semantically inert, i.e. the decoded result
//! equals the original exactly.

use experiments::presets::{self, Variant};
use experiments::shard::{self, split, ShardCache, ShardError, ShardResult};
use proptest::prelude::*;
use proptest::TestRng;
use std::sync::OnceLock;

/// One real shard result document, computed once (the mutations are cheap; the solve
/// is not).
fn base() -> &'static (ShardResult, String) {
    static BASE: OnceLock<(ShardResult, String)> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut spec = presets::spec(2, Variant::Quick).unwrap();
        spec.override_seed_count(2);
        let shard_spec = split(&spec, 2).unwrap().remove(0);
        let result = shard::run_shard_in_process(&shard_spec).unwrap();
        let line = result.to_json_string();
        (result, line)
    })
}

/// Asserts the damage contract on one mutated document.
fn assert_rejected_or_inert(mutated: &str, what: &str) -> Result<(), TestCaseError> {
    match ShardResult::from_json_str(mutated) {
        Err(ShardError::Codec(_)) => Ok(()),
        Err(other) => Err(TestCaseError::fail(format!(
            "{what}: wire damage must be a codec error, got {other:?}"
        ))),
        Ok(decoded) => {
            if decoded == base().0 {
                Ok(()) // semantically inert mutation (e.g. flip inside ignored whitespace)
            } else {
                Err(TestCaseError::fail(format!(
                    "{what}: a mutated document was ACCEPTED with a different payload"
                )))
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any strict prefix of a wire document is rejected: the trailing checksum member
    /// means a truncated document can never re-hash consistently.
    #[test]
    fn truncated_documents_never_decode(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let line = &base().1;
        let mut cut = 1 + rng.below(line.len() as u64 - 1) as usize;
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(
            ShardResult::from_json_str(&line[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte document must not decode",
            line.len()
        );
    }

    /// A single flipped byte is caught — by the parser if it breaks the syntax, by the
    /// whole-document checksum if it does not.
    #[test]
    fn single_byte_flips_are_rejected_or_inert(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let line = &base().1;
        let mut bytes = line.clone().into_bytes();
        let pos = rng.below(bytes.len() as u64) as usize;
        let mask = 1 + rng.below(255) as u8;
        bytes[pos] ^= mask;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        prop_assume!(mutated != *line); // lossy re-encoding can undo some flips
        assert_rejected_or_inert(&mutated, &format!("flip {mask:#04x} at byte {pos}"))?;
    }

    /// Trailing junk after the document is rejected: the codec consumes the whole
    /// input, so concatenated or torn writes cannot smuggle in a payload.
    #[test]
    fn appended_junk_is_rejected(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let line = &base().1;
        let junk: String = (0..1 + rng.below(12))
            .map(|_| char::from(b'!' + rng.below(90) as u8))
            .collect();
        let mutated = format!("{line}{junk}");
        assert_rejected_or_inert(&mutated, &format!("appended junk {junk:?}"))?;
    }

    /// The same damage on a *cache entry* is a miss and nothing else: `load` returns
    /// `None` (recompute) rather than a corrupt payload, and never panics.
    #[test]
    fn damaged_cache_entries_read_as_misses(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let (result, line) = base();
        let dir = std::env::temp_dir()
            .join(format!("fedopt-wire-fuzz-{}-{seed:016x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ShardCache::open(&dir).unwrap();
        cache.store(result).unwrap();

        let mut bytes = line.clone().into_bytes();
        match rng.below(3) {
            0 => {
                let cut = 1 + rng.below(bytes.len() as u64 - 1) as usize;
                bytes.truncate(cut);
            }
            1 => {
                let pos = rng.below(bytes.len() as u64) as usize;
                bytes[pos] ^= 1 + rng.below(255) as u8;
            }
            _ => bytes.extend_from_slice(b"{trailing junk"),
        }
        std::fs::write(cache.entry_path(&result.key), &bytes).unwrap();

        match cache.load(&result.key) {
            None => {}
            Some(loaded) => prop_assert!(
                loaded == *result,
                "a damaged cache entry may only load when the damage was inert"
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
