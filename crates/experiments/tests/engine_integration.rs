//! Integration tests of the parallel sweep engine: determinism across thread counts,
//! bit-exact agreement with the historical sequential averaging helpers, and the parallel
//! speedup the engine exists for.

use baselines::BenchmarkAllocator;
use experiments::engine::{Arm, CellContext, CellOutput, SweepGrid};
use experiments::fig2::{self, Fig2Config};
use experiments::fig7::{self, Fig7Config};
use experiments::{FigureReport, SweepEngine};
use fedopt_core::{CoreError, JointOptimizer};
use flsys::{Scenario, ScenarioBuilder, Weights};
use std::time::Instant;

/// The parallel engine must produce bit-identical reports to a forced single-thread run:
/// per-cell seeding depends only on cell coordinates and reduction order is fixed, so
/// thread count and scheduling must not leak into the output.
#[test]
fn parallel_reports_are_bit_identical_to_single_threaded() {
    let cfg = Fig2Config::quick();
    let (energy_seq, delay_seq) =
        fig2::run_with_engine(&cfg, &SweepEngine::single_thread()).unwrap();
    for threads in [2, 4, 7] {
        let (energy_par, delay_par) =
            fig2::run_with_engine(&cfg, &SweepEngine::with_threads(threads)).unwrap();
        assert_eq!(energy_seq, energy_par, "energy report diverged at {threads} threads");
        assert_eq!(delay_seq, delay_par, "delay report diverged at {threads} threads");
    }

    // Also across a figure with infeasible cells (deadline misses), where the per-cell
    // sample counts must agree too.
    let mut cfg7 = Fig7Config::quick();
    cfg7.devices = 8;
    cfg7.deadlines_s = vec![30.0, 110.0, 150.0];
    let seq = fig7::run_with_engine(&cfg7, &SweepEngine::single_thread()).unwrap();
    let par = fig7::run_with_engine(&cfg7, &SweepEngine::with_threads(4)).unwrap();
    assert_eq!(seq, par);
}

/// Sharing one scenario build across all arms of a (point, seed) cell-group must be
/// invisible in the output: the shared path and the historical one-build-per-cell path are
/// bit-identical on `Fig2Config::quick()` (and on a figure with per-arm builders, where
/// grouping has to keep distinct scenarios distinct).
#[test]
fn arm_shared_scenarios_are_bit_identical_to_per_arm_rebuilding() {
    let cfg = Fig2Config::quick();
    // Pinned to the cold solver path: with warm start on, the arms of a shared cell-group
    // deliberately seed each other, so per-arm rebuilding (its own group per arm) is a
    // different — equally deterministic — warm trajectory, not a bit-identical one.
    let engine = SweepEngine::with_threads(2).with_warm_start(false);
    assert!(engine.shares_scenarios());
    let (energy_shared, delay_shared) = fig2::run_with_engine(&cfg, &engine).unwrap();
    let (energy_rebuilt, delay_rebuilt) =
        fig2::run_with_engine(&cfg, &engine.with_scenario_sharing(false)).unwrap();
    assert_eq!(energy_shared, energy_rebuilt);
    assert_eq!(delay_shared, delay_rebuilt);

    // Figure 5 gives every arm its own device count via `Arm::prepare`: sharing must group
    // by prepared builder, never blur the per-arm scenarios together.
    let cfg5 = experiments::fig5::Fig5Config::quick();
    let shared = experiments::fig5::run_with_engine(&cfg5, &engine).unwrap();
    let rebuilt =
        experiments::fig5::run_with_engine(&cfg5, &engine.with_scenario_sharing(false)).unwrap();
    assert_eq!(shared, rebuilt);
}

/// Warm-started sweeps must be exactly as deterministic as cold ones: the warm state is
/// reset at every cell-group boundary and carried only inside a group (fixed arm order),
/// so thread count and scheduling cannot leak into the output — including the solver
/// iteration totals.
#[test]
fn warm_started_sweeps_are_bit_identical_across_thread_counts() {
    let cfg = Fig2Config::quick();
    let warm_seq = SweepEngine::single_thread().with_warm_start(true);
    let (energy_seq, delay_seq) = fig2::run_with_engine(&cfg, &warm_seq).unwrap();
    let counters_seq = warm_seq.run(&cfg.grid()).unwrap().counters;
    for threads in [2, 4] {
        let warm_par = SweepEngine::with_threads(threads).with_warm_start(true);
        let (energy_par, delay_par) = fig2::run_with_engine(&cfg, &warm_par).unwrap();
        assert_eq!(energy_seq, energy_par, "warm energy report diverged at {threads} threads");
        assert_eq!(delay_seq, delay_par, "warm delay report diverged at {threads} threads");
        let counters_par = warm_par.run(&cfg.grid()).unwrap().counters;
        assert_eq!(counters_seq, counters_par, "warm counters diverged at {threads} threads");
    }

    // And with infeasible cells in the mix (deadline misses, dual-seed deadline solver).
    let mut cfg7 = Fig7Config::quick();
    cfg7.devices = 6;
    cfg7.deadlines_s = vec![30.0, 110.0, 150.0];
    let seq = fig7::run_with_engine(&cfg7, &SweepEngine::single_thread().with_warm_start(true));
    let par = fig7::run_with_engine(&cfg7, &SweepEngine::with_threads(4).with_warm_start(true));
    assert_eq!(seq.unwrap(), par.unwrap());
}

/// The warm-start acceptance evidence in counter form, not wall clock: on the fig2 quick
/// grid a warm sweep must spend strictly fewer Jong iterations and μ-bisection
/// evaluations than the cold sweep, hit the fast path at least once, and never take more
/// outer iterations — while agreeing with the cold means to solver tolerance.
#[test]
fn warm_sweep_spends_strictly_fewer_iterations_than_cold_on_fig2_quick() {
    let cfg = Fig2Config::quick();
    let cold = SweepEngine::with_threads(2).with_warm_start(false).run(&cfg.grid()).unwrap();
    let warm = SweepEngine::with_threads(2).with_warm_start(true).run(&cfg.grid()).unwrap();

    let (c, w) = (cold.counters.solver, warm.counters.solver);
    assert!(c.jong_iterations > 0, "cold sweep must do real work");
    assert!(
        w.jong_iterations < c.jong_iterations,
        "warm Jong iterations {} not strictly below cold {}",
        w.jong_iterations,
        c.jong_iterations
    );
    assert!(
        w.mu_bisect_evals < c.mu_bisect_evals,
        "warm μ evals {} not strictly below cold {}",
        w.mu_bisect_evals,
        c.mu_bisect_evals
    );
    assert!(
        w.sp1_probe_evals < c.sp1_probe_evals,
        "warm SP1 golden-section probes {} not strictly below cold {} — the carried \
         bracket must narrow the search",
        w.sp1_probe_evals,
        c.sp1_probe_evals
    );
    assert!(w.outer_iterations <= c.outer_iterations);
    assert!(w.sp2_fast_path_hits > 0, "the fast path never fired on the quick grid");
    assert_eq!(c.sp2_fast_path_hits, 0, "cold sweeps must never take the warm fast path");

    // Same physics: every (point, arm) mean agrees with the cold reference to well within
    // the solver's own outer tolerance.
    for (cold_row, warm_row) in cold.aggregates.iter().zip(&warm.aggregates) {
        for (a, b) in cold_row.iter().zip(warm_row) {
            let rel = (a.mean_energy_j - b.mean_energy_j).abs() / a.mean_energy_j;
            assert!(rel <= cfg.solver.outer_tol, "warm mean drifted by {rel}");
        }
    }
}

/// The PR 7 solver-speed satellite in counter form: carrying the warm `μ`-bracket *width*
/// across the solves of a cell-group (the adaptive default) must spend strictly fewer
/// `g'(μ)` evaluations on the warm fig2 quick grid than the fixed-width bracket
/// (`with_adaptive_mu_bracket(false)`, the pre-PR-7 warm path) — while agreeing with the
/// fixed-width means to well within the solver's own outer tolerance. The cold path never
/// reads the carried width, so the gate must be invisible there.
#[test]
fn adaptive_mu_bracket_spends_strictly_fewer_mu_evals_on_warm_fig2_quick() {
    assert!(SweepEngine::new().adaptive_mu_bracket(), "adaptive width is the default");
    let cfg = Fig2Config::quick();
    let warm = SweepEngine::with_threads(2).with_warm_start(true);
    let fixed = warm.with_adaptive_mu_bracket(false).run(&cfg.grid()).unwrap();
    let adaptive = warm.run(&cfg.grid()).unwrap();

    let (f, a) = (fixed.counters.solver, adaptive.counters.solver);
    assert!(f.mu_bisect_evals > 0, "the fixed-width warm sweep must do real work");
    assert!(
        a.mu_bisect_evals < f.mu_bisect_evals,
        "adaptive warm μ evals {} not strictly below fixed-width {}",
        a.mu_bisect_evals,
        f.mu_bisect_evals
    );

    // Same physics: the adaptive bracket only changes where the root search *starts*, so
    // every (point, arm) mean agrees with the fixed-width warm reference to well within
    // the solver's outer tolerance.
    for (fixed_row, adaptive_row) in fixed.aggregates.iter().zip(&adaptive.aggregates) {
        for (x, y) in fixed_row.iter().zip(adaptive_row) {
            let rel = (x.mean_energy_j - y.mean_energy_j).abs() / x.mean_energy_j;
            assert!(rel <= cfg.solver.outer_tol, "adaptive mean drifted by {rel}");
        }
    }

    // Cold sweeps never read warm state, so the gate must be bit-invisible there.
    let cold = SweepEngine::with_threads(2).with_warm_start(false);
    let cold_fixed = cold.with_adaptive_mu_bracket(false).run(&cfg.grid()).unwrap();
    let cold_adaptive = cold.run(&cfg.grid()).unwrap();
    assert_eq!(cold_fixed, cold_adaptive, "cold path must not depend on the bracket gate");
}

/// The whole point of the cell-group refactor: a sweep builds `points × seeds` scenarios
/// (per distinct prepared builder), not `points × arms × seeds`, while still evaluating
/// every cell.
#[test]
fn scenario_builds_scale_with_points_times_seeds_not_arms() {
    let cfg = Fig2Config::quick();
    let grid = cfg.grid();
    let (points, arms, seeds) = (grid.points.len(), grid.arms.len(), grid.seeds.len());
    assert!(arms > 1, "needs multiple arms for the assertion to mean anything");

    let result = SweepEngine::with_threads(2).run(&grid).unwrap();
    assert_eq!(
        result.counters.scenarios_built,
        points * seeds,
        "all {arms} fig2 arms share the point's builder, so builds must not scale with arms"
    );
    assert_eq!(result.counters.cells_evaluated, points * arms * seeds);

    // The counters are part of the deterministic output: a sequential run agrees.
    let sequential = SweepEngine::single_thread().run(&cfg.grid()).unwrap();
    assert_eq!(sequential.counters, result.counters);
}

/// A solver-free arm whose output is a cheap deterministic function of the cell
/// coordinates, with a sprinkling of infeasible cells — lets the 10⁴-draw reduction tests
/// run in seconds while still exercising sums, spreads and feasible-sample counts.
struct SyntheticArm {
    tag: f64,
}

impl Arm for SyntheticArm {
    fn name(&self) -> String {
        format!("synthetic {}", self.tag)
    }

    fn evaluate(
        &self,
        _scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        if ctx.seed % 97 == 13 {
            return Ok(None); // labelled infeasible draw
        }
        let v = (ctx.seed as f64).sin() * self.tag + ctx.x;
        Ok(Some(CellOutput::new(v * v + 1.0, v.abs() + 0.5)))
    }
}

/// The headline property of the streaming reduction: on a 10⁴-draw grid it must reproduce
/// the materializing path bit for bit — means, standard deviations, feasible counts and
/// attempt counts — while holding only O(points × arms) accumulators plus a bounded window
/// of in-flight chunks (the materializing path holds all 60 000 cell outputs).
#[test]
fn ten_thousand_draw_grid_streams_bit_identically_to_materializing() {
    let grid = || {
        let builder = ScenarioBuilder::paper_default().with_devices(2);
        SweepGrid::new((0..10_000).collect::<Vec<u64>>())
            .point(5.0, builder.clone())
            .point(9.0, builder.clone())
            .point(12.0, builder)
            .arm(SyntheticArm { tag: 1.0 })
            .arm(SyntheticArm { tag: 2.5 })
    };

    let materialized =
        SweepEngine::with_threads(2).with_streaming_reduction(false).run(&grid()).unwrap();
    // 13 of every 97 seeds... exactly the draws with seed % 97 == 13 are infeasible.
    let expected_infeasible = (0..10_000u64).filter(|s| s % 97 == 13).count();
    for row in &materialized.aggregates {
        for agg in row {
            assert_eq!(agg.attempts, 10_000);
            assert_eq!(agg.count, 10_000 - expected_infeasible);
        }
    }

    for threads in [1usize, 4] {
        let streamed =
            SweepEngine::with_threads(threads).with_streaming_reduction(true).run(&grid()).unwrap();
        assert_eq!(streamed, materialized, "streaming diverged at {threads} thread(s)");
    }
}

/// Every figure's quick preset must produce bit-identical reports through the streaming
/// and the materializing reductions — the acceptance bar of the streaming refactor. The
/// seed chunk is forced to 1 so even the 2-seed quick grids exercise multi-chunk folding.
#[test]
fn all_figure_quick_presets_stream_bit_identically() {
    let streamed = SweepEngine::with_threads(2).with_streaming_reduction(true).with_seed_chunk(1);
    let materialized = streamed.with_streaming_reduction(false);

    macro_rules! check {
        ($fig:ident, $cfg:expr) => {{
            let cfg = $cfg;
            let s = experiments::$fig::run_with_engine(&cfg, &streamed).unwrap();
            let m = experiments::$fig::run_with_engine(&cfg, &materialized).unwrap();
            assert_eq!(s, m, concat!(stringify!($fig), " quick preset diverged"));
        }};
    }
    check!(fig2, Fig2Config::quick());
    check!(fig3, experiments::fig3::Fig3Config::quick());
    check!(fig4, experiments::fig4::Fig4Config::quick());
    check!(fig5, experiments::fig5::Fig5Config::quick());
    check!(fig6, experiments::fig6::Fig6Config::quick());
    check!(fig7, Fig7Config::quick());
    check!(fig8, experiments::fig8::Fig8Config::quick());
}

/// Reimplementation of the pre-refactor sequential helpers (`average_proposed` /
/// `average_benchmark` from the old `experiments::sweep`), kept here as the regression
/// reference for `Fig2Config::quick()`.
fn fig2_reference(cfg: &Fig2Config) -> Result<(FigureReport, FigureReport), CoreError> {
    let average_proposed =
        |builder: &ScenarioBuilder, weights: Weights| -> Result<(f64, f64), CoreError> {
            // The reference predates the warm-start continuation, which has since become
            // the library default — pin it off to keep reproducing the historical numbers.
            let optimizer = JointOptimizer::new(cfg.solver.with_warm_start(false));
            let (mut energy, mut time) = (0.0, 0.0);
            for &seed in &cfg.seeds {
                let scenario = builder.build(seed)?;
                let out = optimizer.solve(&scenario, weights)?;
                energy += out.total_energy_j;
                time += out.total_time_s;
            }
            let n = cfg.seeds.len().max(1) as f64;
            Ok((energy / n, time / n))
        };
    let average_benchmark = |builder: &ScenarioBuilder| -> Result<(f64, f64), CoreError> {
        let bench = BenchmarkAllocator::new();
        let (mut energy, mut time) = (0.0, 0.0);
        for &seed in &cfg.seeds {
            let scenario = builder.build(seed)?;
            // The historical inline stream-seed derivation, spelled out on purpose so this
            // reference stays independent of `baselines::derive_stream_seed`.
            let result = bench.random_frequency(&scenario, seed ^ 0x9e37_79b9)?;
            energy += result.total_energy_j();
            time += result.total_time_s();
        }
        let n = cfg.seeds.len().max(1) as f64;
        Ok((energy / n, time / n))
    };

    let mut columns: Vec<String> = cfg
        .weights
        .iter()
        .map(|w| format!("proposed w1={:.1},w2={:.1}", w.energy(), w.time()))
        .collect();
    columns.push("benchmark".to_string());
    let mut energy = FigureReport::new(
        "fig2a",
        "Total energy consumption vs maximum transmit power",
        "p_max (dBm)",
        "total energy (J)",
        columns.clone(),
    );
    let mut delay = FigureReport::new(
        "fig2b",
        "Total completion time vs maximum transmit power",
        "p_max (dBm)",
        "total time (s)",
        columns,
    );
    for &p_max in &cfg.p_max_dbm {
        let builder =
            ScenarioBuilder::paper_default().with_devices(cfg.devices).with_p_max_dbm(p_max);
        let mut e_row = Vec::new();
        let mut t_row = Vec::new();
        for &w in &cfg.weights {
            let (e, t) = average_proposed(&builder, w)?;
            e_row.push(e);
            t_row.push(t);
        }
        let (e_bench, t_bench) = average_benchmark(&builder)?;
        e_row.push(e_bench);
        t_row.push(t_bench);
        energy.push_row(p_max, e_row);
        delay.push_row(p_max, t_row);
    }
    Ok((energy, delay))
}

/// `Fig2Config::quick()` through the engine must reproduce the pre-refactor helpers'
/// output bit for bit (values, column names, row order). The reference helpers predate the
/// warm-start continuation, so the engine is pinned to the cold solver path — exactly the
/// `with_warm_start(false)` bit-identity guarantee.
#[test]
fn fig2_quick_output_is_unchanged_from_pre_refactor_helpers() {
    let cfg = Fig2Config::quick();
    let (energy_new, delay_new) =
        fig2::run_with_engine(&cfg, &SweepEngine::new().with_warm_start(false)).unwrap();
    let (energy_ref, delay_ref) = fig2_reference(&cfg).unwrap();

    assert_eq!(energy_new.columns, energy_ref.columns);
    assert_eq!(delay_new.columns, delay_ref.columns);
    // The reference used `push_row` (unknown counts) while the engine records counts, so
    // compare the numerical payload exactly rather than the whole struct.
    assert_eq!(energy_new.rows, energy_ref.rows, "energy rows must be bit-identical");
    assert_eq!(delay_new.rows, delay_ref.rows, "delay rows must be bit-identical");
    // And the engine's counts must reflect the full seed set everywhere.
    for (row_idx, _) in energy_new.rows.iter().enumerate() {
        for col in 0..energy_new.columns.len() {
            assert_eq!(energy_new.sample_count(row_idx, col), Some(cfg.seeds.len()));
        }
    }
}

/// On a machine with ≥ 4 cores, 4 engine workers must finish `Fig2Config::quick()` at
/// least 2× faster than the sequential engine (the grid is embarrassingly parallel).
/// Skipped (with a message) on smaller machines, where the speedup physically cannot
/// materialise; the determinism test above still covers correctness there.
///
/// Ignored in the default suite because it is timing-sensitive: libtest would run it
/// concurrently with the other tests in this binary (which spawn their own engine
/// workers), skewing the baseline. CI runs it serialized via
/// `cargo test -p experiments --test engine_integration -- --ignored --test-threads=1`.
#[test]
#[ignore = "timing-sensitive; run serialized with -- --ignored --test-threads=1"]
fn four_threads_give_at_least_2x_on_quick_fig2() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available, need >= 4");
        return;
    }
    let cfg = Fig2Config::quick();
    let time_with = |engine: &SweepEngine| {
        // Warm once (page cache, lazy allocations), then take the best of two runs.
        fig2::run_with_engine(&cfg, engine).unwrap();
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = Instant::now();
            fig2::run_with_engine(&cfg, engine).unwrap();
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let sequential = time_with(&SweepEngine::single_thread());
    let parallel = time_with(&SweepEngine::with_threads(4));
    let speedup = sequential / parallel;
    assert!(
        speedup >= 2.0,
        "expected >= 2x speedup with 4 threads, got {speedup:.2}x ({sequential:.3}s -> {parallel:.3}s)"
    );
}
