//! The acceptance pin of the spec API: for every figure, the spec-compiled path
//! (`SweepEngine::run_spec(presets::…)`) is **bit-identical** to the historical
//! imperative figure-config path — every arm aggregate (means, standard deviations,
//! sample counts), every x value, every column name, and the work counters.
//!
//! Pinned on the cold solver path and a fixed thread count: the quick presets leave the
//! warm-start default to the environment, while this test must compare the two build
//! paths, not two warm trajectories.

use experiments::engine::{SweepEngine, SweepGrid, SweepResult};
use experiments::presets::{self, Variant};
use experiments::{fig2, fig3, fig4, fig5, fig6, fig7, fig8};

fn run(engine: &SweepEngine, grid: &SweepGrid) -> SweepResult {
    engine.run(grid).expect("legacy grid must evaluate")
}

#[test]
fn spec_compiled_sweeps_are_bit_identical_to_the_legacy_figure_modules() {
    // (figure number, legacy quick grid) — the pre-spec imperative reference.
    let legacy: Vec<(u8, SweepGrid)> = vec![
        (2, fig2::Fig2Config::quick().grid()),
        (3, fig3::Fig3Config::quick().grid()),
        (4, fig4::Fig4Config::quick().grid()),
        (5, fig5::Fig5Config::quick().grid()),
        (6, fig6::Fig6Config::quick().grid()),
        (7, fig7::Fig7Config::quick().grid()),
        (8, fig8::Fig8Config::quick().grid()),
    ];
    for engine in [SweepEngine::single_thread(), SweepEngine::with_threads(3)] {
        let engine = engine.with_warm_start(false);
        for (fig, grid) in &legacy {
            let spec = presets::spec(*fig, Variant::Quick).expect("preset exists");
            let from_spec = engine.run_spec(&spec).expect("spec must evaluate");
            let reference = run(&engine, grid);
            assert_eq!(
                from_spec.xs, reference.xs,
                "fig{fig}: spec x values diverged from the legacy config"
            );
            assert_eq!(
                from_spec.arm_names, reference.arm_names,
                "fig{fig}: spec arm names diverged from the legacy config"
            );
            assert_eq!(
                from_spec.aggregates,
                reference.aggregates,
                "fig{fig}: spec aggregates are not bit-identical to the legacy path \
                 ({} threads)",
                engine.threads()
            );
            assert_eq!(
                from_spec.counters, reference.counters,
                "fig{fig}: spec work counters diverged — the compiled grid is not \
                 grouping/building like the legacy one"
            );
        }
    }
}

/// The spec constructors exposed on the figure modules are the presets, verbatim.
#[test]
fn figure_module_spec_constructors_delegate_to_the_presets() {
    assert_eq!(fig2::quick_spec(), presets::spec(2, Variant::Quick).unwrap());
    assert_eq!(fig3::quick_spec(), presets::spec(3, Variant::Quick).unwrap());
    assert_eq!(fig4::paper_spec(), presets::spec(4, Variant::Paper).unwrap());
    assert_eq!(fig5::paper_spec(), presets::spec(5, Variant::Paper).unwrap());
    assert_eq!(fig6::quick_spec(), presets::spec(6, Variant::Quick).unwrap());
    assert_eq!(fig7::paper_spec(), presets::spec(7, Variant::Paper).unwrap());
    assert_eq!(fig8::quick_spec(), presets::spec(8, Variant::Quick).unwrap());
}

/// Spec-compiled figure reports (titles, labels, ids, per-cell counts) equal the legacy
/// `run_with_engine` output for a figure of each report shape: an energy/time pair
/// (Figure 2) and a single energy report with infeasible cells (Figure 7 tightened).
#[test]
fn spec_reports_match_the_legacy_report_metadata() {
    let engine = SweepEngine::single_thread().with_warm_start(false);

    let (legacy_energy, legacy_time) =
        fig2::run_with_engine(&fig2::Fig2Config::quick(), &engine).unwrap();
    let spec = presets::spec(2, Variant::Quick).unwrap();
    let run = spec.run_with_engine(&engine).unwrap();
    assert_eq!(run.reports.len(), 2);
    assert_eq!(run.reports[0], legacy_energy);
    assert_eq!(run.reports[1], legacy_time);

    let mut legacy7 = fig7::Fig7Config::quick();
    legacy7.devices = 8;
    legacy7.deadlines_s = vec![30.0, 110.0, 150.0];
    let legacy_report = fig7::run_with_engine(&legacy7, &engine).unwrap();
    let mut spec7 = presets::spec(7, Variant::Quick).unwrap();
    spec7.scenario.devices = Some(8);
    spec7.axis.values = vec![30.0, 110.0, 150.0];
    let run7 = spec7.run_with_engine(&engine).unwrap();
    assert_eq!(run7.reports.len(), 1);
    assert_eq!(run7.reports[0], legacy_report);
}
