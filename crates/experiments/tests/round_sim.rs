//! Integration pins of the round-structured FL simulator (`experiments::rounds`):
//!
//! * the PR's headline claim — on the `rounds-quick` preset, per-round re-solving
//!   (`re_solve`) spends **less cumulative energy** than replaying the round-0 allocation
//!   (`static`) under per-round fading — asserted, not just benchmarked;
//! * bit-identical output across thread counts, for both warm and cold solver paths,
//!   property-tested over seeds and refade depths;
//! * a golden byte-pin of the `rounds-quick` JSON document on the cold single-thread
//!   path (regenerate with `FEDOPT_BLESS=1 cargo test -p experiments --test round_sim`).

use experiments::engine::SweepEngine;
use experiments::presets;
use experiments::rounds::simulate_with_engine;
use experiments::spec::SeedPolicy;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(actual: &str, path: &Path, regenerate_hint: &str) {
    if std::env::var("FEDOPT_BLESS").is_ok() {
        std::fs::write(path, actual).unwrap_or_else(|e| panic!("blessing {path:?}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); {regenerate_hint}"));
    assert_eq!(actual, golden, "{path:?} is stale; {regenerate_hint}");
}

/// The acceptance claim of the round simulator: re-solving Algorithm 2 on each round's
/// redrawn channel beats the static round-0 allocation on cumulative energy. Both
/// policies see identical channel/straggler draws and identical (full) participation, so
/// the entire gap is re-optimization.
#[test]
fn re_solve_beats_static_on_cumulative_energy() {
    let spec = presets::sim("rounds-quick").expect("preset exists");
    let run = simulate_with_engine(&spec, &SweepEngine::single_thread())
        .expect("rounds-quick must simulate");
    let energy = |kind: &str| {
        run.policies
            .iter()
            .find(|p| p.kind == kind)
            .unwrap_or_else(|| panic!("missing policy {kind}"))
            .totals
            .total_energy_j
    };
    let (re_solve, static_) = (energy("re_solve"), energy("static"));
    assert!(
        re_solve < static_,
        "per-round re-solving must beat the static allocation on cumulative energy \
         (re_solve {re_solve} J vs static {static_} J)"
    );
    // Cumulative columns must be monotone for every policy.
    for p in &run.policies {
        for pair in p.trajectory.windows(2) {
            assert!(
                pair[1].cumulative_energy_j >= pair[0].cumulative_energy_j,
                "{}: cumulative energy regressed at round {}",
                p.label,
                pair[1].round
            );
            assert!(
                pair[1].cumulative_time_s >= pair[0].cumulative_time_s,
                "{}: cumulative time regressed at round {}",
                p.label,
                pair[1].round
            );
        }
    }
}

/// Selection policies must actually shed participants under the preset's straggler and
/// selection settings — otherwise the scheme arms degenerate into full participation and
/// compare nothing.
#[test]
fn selection_policies_shed_participants() {
    let spec = presets::sim("rounds-quick").expect("preset exists");
    let run = simulate_with_engine(&spec, &SweepEngine::single_thread())
        .expect("rounds-quick must simulate");
    let rate = |kind: &str| {
        run.policies.iter().find(|p| p.kind == kind).unwrap().totals.participation_rate
    };
    // Dropout alone keeps full-participation policies just under 1.
    assert!(rate("re_solve") > 0.8 && rate("re_solve") < 1.0);
    // FedAECS stops at the accuracy target; ELASTIC admits only cheap-energy devices.
    assert!(rate("fedaecs") < rate("re_solve"), "FedAECS must select a strict subset");
    assert!(rate("elastic") < rate("re_solve"), "ELASTIC must select a strict subset");
    assert!(rate("elastic") > 0.0, "ELASTIC's fallback keeps at least one uploader alive");
    // Training still converges to something useful for every policy.
    for p in &run.policies {
        assert!(
            p.totals.final_accuracy > 0.6,
            "{}: final accuracy {} too low",
            p.label,
            p.totals.final_accuracy
        );
    }
}

/// The golden byte-pin the CI `sim-smoke` job diffs: `fedopt sim --preset rounds-quick
/// --json` on the cold single-thread path. The engine is pinned explicitly so the pin
/// holds under every CI matrix entry; output is thread-count independent, so the CLI
/// reproduces it at any `--threads`.
#[test]
fn rounds_quick_json_document_matches_golden() {
    let spec = presets::sim("rounds-quick").expect("preset exists");
    let engine = SweepEngine::single_thread().with_warm_start(false);
    let run = simulate_with_engine(&spec, &engine).expect("rounds-quick must simulate");
    check_golden(
        &run.to_json_string(),
        &manifest_dir().join("tests/golden/rounds_quick.json"),
        "regenerate with FEDOPT_BLESS=1 cargo test -p experiments --test round_sim",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Bit-identical trajectories across 1 vs 4 threads, on both the warm and cold solver
    /// paths, over random seed ranges and refade depths. (Warm and cold legitimately
    /// differ from each other within solver tolerances; each must be thread-count
    /// independent on its own.)
    #[test]
    fn simulation_is_bit_identical_across_thread_counts(
        start in 0u64..1000,
        refade_db in 0.0f64..10.0,
        warm_bit in 0u8..2,
    ) {
        let warm = warm_bit == 1;
        let mut spec = presets::sim("rounds-quick").expect("preset exists");
        spec.seeds.policy = SeedPolicy::Range { start, count: 3 };
        let rounds = spec.rounds.as_mut().expect("sim preset");
        rounds.refade_db = refade_db;
        rounds.rounds = 4;
        let one = simulate_with_engine(
            &spec,
            &SweepEngine::single_thread().with_warm_start(warm),
        ).expect("1-thread simulation");
        let four = simulate_with_engine(
            &spec,
            &SweepEngine::with_threads(4).with_warm_start(warm),
        ).expect("4-thread simulation");
        prop_assert_eq!(&one.to_json_string(), &four.to_json_string());
        prop_assert_eq!(one, four);
    }
}
