//! The solver watchdog's degradation contract at the sweep level (satellite of the
//! chaos-hardening work): a scenario whose objective can never be finite — device CPU
//! frequencies pinned around `1e160` Hz, so every candidate's energy overflows `f64` —
//! must degrade each cell into a typed infeasible result (`Aggregate { count: 0, .. }`)
//! with the `degraded_solves` counter incremented. It must never abort the sweep, never
//! panic a worker thread, and never leak a non-finite mean into a report. Exercised at
//! one and several threads, warm and cold, because the watchdog lives on the per-thread
//! hot path in both solver modes.

use experiments::presets::{self, Variant};
use experiments::spec::{ArmKind, ExperimentSpec};

/// Figure 2's quick preset, proposed arm only, with the scenario overridden so every
/// solve's objective overflows to infinity.
fn non_finite_spec() -> ExperimentSpec {
    let mut spec = presets::spec(2, Variant::Quick).unwrap();
    spec.arms.retain(|arm| matches!(arm.kind, ArmKind::Proposed { .. }));
    spec.arms.truncate(1);
    assert_eq!(spec.arms.len(), 1, "fig2 must carry at least one proposed arm");
    spec.axis.values.truncate(2);
    spec.override_seed_count(2);
    // f_min 1e160 Hz with f_max 1e160 GHz: a valid (min < max) but astronomically fast
    // CPU band — every f^2-proportional energy term is +inf from the first iterate.
    spec.scenario.f_min_hz = Some(1e160);
    spec.scenario.f_max_ghz = Some(1e160);
    spec
}

#[test]
fn non_finite_objectives_degrade_to_empty_aggregates_with_a_counter() {
    for threads in [1usize, 4] {
        for warm in [false, true] {
            let mut spec = non_finite_spec();
            spec.engine.threads = Some(threads);
            spec.engine.warm_start = Some(warm);
            let what = format!("threads={threads} warm={warm}");

            let run = spec
                .run()
                .unwrap_or_else(|e| panic!("{what}: degradation must not abort the sweep: {e}"));
            for (p, row) in run.result.aggregates.iter().enumerate() {
                for (a, agg) in row.iter().enumerate() {
                    assert_eq!(agg.count, 0, "{what}: cell ({p},{a}) must hold zero draws");
                    assert_eq!(agg.attempts, 2, "{what}: both draws were still attempted");
                    assert!(
                        agg.mean_energy_j.is_nan() && agg.mean_time_s.is_nan(),
                        "{what}: an empty cell renders as NaN, never as a fake number"
                    );
                }
            }
            let degraded = run.result.counters.solver.degraded_solves;
            assert!(
                degraded >= 4,
                "{what}: every (point, seed) solve must count its degradation, got {degraded}"
            );
        }
    }
}

#[test]
fn the_degradation_count_is_thread_count_invariant() {
    let count_at = |threads: usize| {
        let mut spec = non_finite_spec();
        spec.engine.threads = Some(threads);
        spec.run().unwrap().result.counters.solver.degraded_solves
    };
    assert_eq!(
        count_at(1),
        count_at(4),
        "degradations are per-cell facts; scheduling must not change them"
    );
}

#[test]
fn degraded_solves_surface_in_the_json_document_only_when_nonzero() {
    use experiments::cli;
    use experiments::json::Json;

    // A healthy run: no degradations, and no `degraded_solves` member — the goldens
    // from before the watchdog existed stay byte-identical.
    let mut healthy = presets::spec(2, Variant::Quick).unwrap();
    healthy.override_seed_count(2);
    let run = healthy.run().unwrap();
    let doc = cli::run_document(&healthy, &run);
    let solver = doc.get("counters").unwrap().get("solver").unwrap().clone();
    assert!(solver.get("degraded_solves").is_none(), "healthy runs must not grow members");

    // The degraded run: the member appears, with the counter's exact value.
    let spec = non_finite_spec();
    let run = spec.run().unwrap();
    let expected = run.result.counters.solver.degraded_solves;
    assert!(expected > 0);
    let doc = cli::run_document(&spec, &run);
    let reported = doc
        .get("counters")
        .and_then(|c| c.get("solver"))
        .and_then(|s| s.get("degraded_solves"))
        .and_then(Json::as_u64)
        .expect("a degraded run must report its degradations");
    assert_eq!(reported, expected);
}
