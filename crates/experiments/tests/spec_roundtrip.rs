//! Lossless-serialization guarantees of the spec wire format: every CLI preset and a
//! property-tested space of generated [`ExperimentSpec`]s survive
//! `parse(serialize(spec)) == spec` exactly, and the canonical serialized form is stable
//! under re-serialization (diff- and cache-safe).

use experiments::presets::{self, Variant};
use experiments::spec::{
    ArmKind, ArmSpec, AxisKind, AxisSpec, BenchmarkDraw, DeadlineSpec, EngineSpec, ExperimentSpec,
    Metric, ReportSpec, ScenarioSpec, SeedPolicy, SeedSpec, SolverPreset, SolverSpec,
};
use flsys::Weights;
use proptest::prelude::*;
use proptest::TestRng;

/// Every spec the CLI can emit or run from a preset round-trips losslessly, and its
/// canonical form is a fixed point of serialize ∘ parse.
#[test]
fn all_cli_presets_round_trip_losslessly() {
    for variant in [Variant::Quick, Variant::Paper] {
        for spec in presets::all(variant) {
            let text = spec.to_json_string();
            let parsed = ExperimentSpec::from_json_str(&text)
                .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}\n{text}", spec.id));
            assert_eq!(parsed, spec, "{} ({variant:?}) is not lossless", spec.id);
            assert_eq!(parsed.to_json_string(), text, "{} is not canonical", spec.id);
        }
    }
}

/// And so do seed-range overrides of the presets (the `--seeds N` path the CI smoke job
/// pipes around).
#[test]
fn seed_overridden_presets_round_trip() {
    for &fig in &presets::FIGURES {
        let mut spec = presets::spec(fig, Variant::Quick).unwrap();
        spec.override_seed_count(3);
        let text = spec.to_json_string();
        assert_eq!(ExperimentSpec::from_json_str(&text).unwrap(), spec);
    }
}

// ---------------------------------------------------------------------------
// Property test: generated specs
// ---------------------------------------------------------------------------

fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

/// A uniform f64 with a few decimals (keeps failures readable; exactness is guaranteed by
/// the format for *any* f64 and is additionally exercised by the raw `below`-derived
/// values below).
fn small_f64(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    lo + rng.unit_f64() * (hi - lo)
}

fn arbitrary_scenario(rng: &mut TestRng) -> ScenarioSpec {
    let mut scenario = ScenarioSpec::default();
    if rng.below(2) == 0 {
        scenario.devices = Some(1 + rng.below(100) as usize);
    }
    if rng.below(2) == 0 {
        scenario.radius_km = Some(small_f64(rng, 0.05, 2.0));
    }
    match rng.below(3) {
        0 => scenario.samples_per_device = Some(1 + rng.below(1000)),
        1 => scenario.total_samples = Some(1 + rng.below(100_000)),
        _ => {}
    }
    if rng.below(2) == 0 {
        let lo = small_f64(rng, 1.0e3, 1.0e5);
        scenario.cycles_per_sample = Some((lo, lo * (1.0 + rng.unit_f64())));
    }
    if rng.below(3) == 0 {
        scenario.upload_bits = Some(small_f64(rng, 1.0e3, 1.0e6));
    }
    if rng.below(3) == 0 {
        scenario.p_min_dbm = Some(small_f64(rng, -5.0, 3.0));
    }
    if rng.below(3) == 0 {
        scenario.p_max_dbm = Some(small_f64(rng, 5.0, 20.0));
    }
    if rng.below(4) == 0 {
        scenario.f_min_hz = Some(small_f64(rng, 1.0e5, 1.0e7));
    }
    if rng.below(4) == 0 {
        scenario.f_max_ghz = Some(small_f64(rng, 0.5, 3.0));
    }
    if rng.below(3) == 0 {
        scenario.global_rounds = Some(1 + rng.below(500) as u32);
    }
    if rng.below(3) == 0 {
        scenario.local_iterations = Some(1 + rng.below(200) as u32);
    }
    if rng.below(4) == 0 {
        scenario.total_bandwidth_hz = Some(small_f64(rng, 1.0e6, 1.0e8));
    }
    if rng.below(4) == 0 {
        scenario.shadowing_db = Some(small_f64(rng, 0.0, 12.0));
    }
    scenario
}

fn arbitrary_arm(rng: &mut TestRng, axis: AxisKind) -> ArmSpec {
    // Axis-deadline arms are only valid on a deadline axis.
    let kind = if axis == AxisKind::DeadlineS { rng.below(7) } else { rng.below(4) };
    let kind = match kind {
        0 => {
            let w1 = rng.below(11) as f64 / 10.0;
            ArmKind::Proposed { weights: Weights::new(w1, 1.0 - w1).expect("valid pair") }
        }
        1 => ArmKind::Benchmark {
            draw: *pick(rng, &[BenchmarkDraw::Frequency, BenchmarkDraw::Power]),
        },
        2 => ArmKind::Scheme1 { deadline_s: small_f64(rng, 40.0, 200.0) },
        3 => ArmKind::DeadlineProposed {
            deadline: DeadlineSpec::FixedS(small_f64(rng, 40.0, 200.0)),
        },
        4 => ArmKind::DeadlineProposed { deadline: DeadlineSpec::Axis },
        5 => ArmKind::CommOnly,
        _ => ArmKind::CompOnly,
    };
    let mut arm = ArmSpec::new(kind);
    if rng.below(3) == 0 {
        arm = arm.labeled(format!("series {} — \"{}\"", rng.below(100), rng.below(10)));
    }
    if rng.below(3) == 0 {
        arm = arm.with_scenario(arbitrary_scenario(rng));
    }
    arm
}

fn arbitrary_spec(rng: &mut TestRng) -> ExperimentSpec {
    let axis_kind = *pick(
        rng,
        &[
            AxisKind::PMaxDbm,
            AxisKind::FMaxGhz,
            AxisKind::Devices,
            AxisKind::RadiusKm,
            AxisKind::LocalIterations,
            AxisKind::GlobalRounds,
            AxisKind::DeadlineS,
        ],
    );
    let n_values = 1 + rng.below(5) as usize;
    let values: Vec<f64> = (0..n_values)
        .map(|_| {
            if axis_kind.is_integer() {
                (1 + rng.below(200)) as f64
            } else {
                // Raw 53-bit-derived values: exercises shortest-round-trip formatting on
                // floats with long decimal expansions, not just tidy literals.
                small_f64(rng, 0.01, 250.0)
            }
        })
        .collect();
    let mut spec = ExperimentSpec::new(
        &format!("gen-{}", rng.below(1_000_000)),
        AxisSpec { kind: axis_kind, values },
    );
    spec.description =
        "generated by the round-trip property test\n\"quotes\" and ünïcode".to_string();
    spec.scenario = arbitrary_scenario(rng);
    let n_arms = 1 + rng.below(4) as usize;
    spec.arms = (0..n_arms).map(|_| arbitrary_arm(rng, axis_kind)).collect();
    spec.seeds = if rng.below(2) == 0 {
        SeedSpec {
            policy: SeedPolicy::Range { start: rng.below(1 << 40), count: 1 + rng.below(10_000) },
            stream_derivation: Default::default(),
        }
    } else {
        let n = 1 + rng.below(8);
        SeedSpec::list((0..n).map(|_| rng.below(1 << 53)).collect::<Vec<u64>>())
    };
    spec.solver = SolverSpec {
        preset: *pick(rng, &[SolverPreset::Default, SolverPreset::Fast]),
        outer_max_iter: (rng.below(3) == 0).then(|| 1 + rng.below(50) as usize),
        outer_tol: (rng.below(3) == 0).then(|| small_f64(rng, 1.0e-8, 1.0e-2)),
        mu_tol: (rng.below(4) == 0).then(|| small_f64(rng, 1.0e-12, 1.0e-6)),
        scalar_tol: (rng.below(4) == 0).then(|| small_f64(rng, 1.0e-9, 1.0e-4)),
        feasibility_tol: (rng.below(4) == 0).then(|| small_f64(rng, 1.0e-9, 1.0e-4)),
        bandwidth_floor_hz: (rng.below(4) == 0).then(|| small_f64(rng, 0.1, 100.0)),
        polish_with_reference: (rng.below(3) == 0).then(|| rng.below(2) == 0),
        warm_rmin_tol: (rng.below(4) == 0).then(|| small_f64(rng, 1.0e-6, 1.0e-2)),
    };
    spec.engine = EngineSpec {
        threads: (rng.below(3) == 0).then(|| 1 + rng.below(16) as usize),
        warm_start: (rng.below(3) == 0).then(|| rng.below(2) == 0),
        scenario_sharing: (rng.below(4) == 0).then(|| rng.below(2) == 0),
        streaming: (rng.below(4) == 0).then(|| rng.below(2) == 0),
        seed_chunk: (rng.below(4) == 0).then(|| 1 + rng.below(256) as usize),
        shard_retries: (rng.below(4) == 0).then(|| rng.below(5)),
        shard_timeout_s: (rng.below(4) == 0).then(|| 1 + rng.below(600)),
    };
    let n_reports = rng.below(3) as usize;
    spec.reports = (0..n_reports)
        .map(|i| {
            ReportSpec::new(
                &format!("gen{i}"),
                *pick(rng, &[Metric::Energy, Metric::Time]),
                "generated title — with punctuation: [a]/{b}",
                "x label (units)",
            )
        })
        .collect();
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(serialize(spec)) == spec` over the generated spec space, and serialization
    /// is canonical (a second round trip is byte-identical).
    #[test]
    fn generated_specs_round_trip_losslessly(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let spec = arbitrary_spec(&mut rng);
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec: {spec:?}");
        let text = spec.to_json_string();
        let parsed = match ExperimentSpec::from_json_str(&text) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("re-parse failed: {e}\n{text}"))),
        };
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.to_json_string(), text);
    }
}
