//! Fuzzing the worker heartbeat protocol against stderr damage. The liveness contract:
//! malformed, interleaved, or truncated `fedopt-heartbeat t=…s cells=…` lines must
//! never panic the parser or the coordinator's [`StderrState`] clock — a worker's
//! *life* rides on the prefix alone, while the progress *reading* only moves on a
//! well-formed payload. The shape mirrors `wire_fuzz.rs`: damage is either rejected
//! (parse returns `None`) or semantically inert, never a panic and never a wrongly
//! accepted payload.

use experiments::shard::{
    parse_heartbeat, parse_heartbeat_interval, StderrState, HEARTBEAT_PREFIX,
};
use proptest::prelude::*;
use proptest::TestRng;

/// Fragments biased toward the protocol's own vocabulary — random characters rarely
/// spell `t=` or `cells=`, so plain noise would leave the field parsers untested.
const FRAGMENTS: &[&str] =
    &["t=", "cells=", "s", "t=1.5", "cells=nine", " ", "\t", "=", "-", ".", "NaN", "inf", "µs"];

/// One line of structured junk: protocol fragments interleaved with printable noise.
fn junk_line(rng: &mut TestRng) -> String {
    let pieces = rng.below(12);
    let mut line = String::new();
    for _ in 0..pieces {
        if rng.below(3) == 0 {
            line.push_str(FRAGMENTS[rng.below(FRAGMENTS.len() as u64) as usize]);
        } else {
            line.push(char::from(b' ' + rng.below(95) as u8));
        }
    }
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary lines — protocol-shaped junk, with and without the heartbeat prefix —
    /// never panic the parser or the stderr capture.
    #[test]
    fn malformed_lines_never_panic_the_parser_or_the_clock(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        for _ in 0..8 {
            let body = junk_line(&mut rng);
            let line = if rng.below(2) == 0 { format!("{HEARTBEAT_PREFIX}{body}") } else { body };
            let _ = parse_heartbeat(&line);
            let mut state = StderrState::default();
            state.observe(&line);
            let _ = state.render_tail();
            // The liveness clock answers to the prefix alone, malformed payload or not.
            prop_assert_eq!(state.last_heartbeat().is_some(), line.starts_with(HEARTBEAT_PREFIX));
        }
    }

    /// A well-formed heartbeat line round-trips exactly: the parsed payload is the
    /// printed payload, and the capture records the cell count.
    #[test]
    fn well_formed_lines_round_trip(t in 0.0f64..1.0e6, cells in 0u64..u64::MAX) {
        let line = format!("{HEARTBEAT_PREFIX} t={t:.1}s cells={cells}");
        let (parsed_t, parsed_cells) = parse_heartbeat(&line).expect("well-formed must parse");
        let printed_t: f64 = format!("{t:.1}").parse().unwrap();
        prop_assert_eq!(parsed_t, printed_t);
        prop_assert_eq!(parsed_cells, cells);
        let mut state = StderrState::default();
        state.observe(&line);
        prop_assert_eq!(state.last_cells(), Some(cells));
        prop_assert!(state.last_heartbeat().is_some());
    }

    /// Any truncation of a valid heartbeat line is handled without panicking, and a
    /// truncation that still parses must agree with the original time field —
    /// truncation can only lose fields or shorten the cells number, never invent a
    /// different reading.
    #[test]
    fn truncated_heartbeats_never_panic_and_never_invent_a_time(
        t in 0.0f64..1.0e6,
        cells in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed(seed);
        let line = format!("{HEARTBEAT_PREFIX} t={t:.1}s cells={cells}");
        let cut = 1 + rng.below(line.len() as u64 - 1) as usize;
        let prefix = &line[..cut]; // the line is pure ASCII: every cut is a char boundary
        if let Some((parsed_t, _)) = parse_heartbeat(prefix) {
            let printed_t: f64 = format!("{t:.1}").parse().unwrap();
            prop_assert_eq!(parsed_t, printed_t); // a kept-whole t= field parses exactly
        }
        // However short the cut, feeding it to the capture must not panic; and any cut
        // that still carries the prefix counts as liveness (the clock never starves on
        // payload damage alone).
        let mut state = StderrState::default();
        state.observe(prefix);
        prop_assert_eq!(state.last_heartbeat().is_some(), prefix.starts_with(HEARTBEAT_PREFIX));
    }

    /// Mangled heartbeat payloads interleaved with a real one advance the liveness
    /// clock but never move the progress reading off the last well-formed value, and
    /// never leak into the captured stderr tail.
    #[test]
    fn interleaved_garbage_never_corrupts_progress_or_the_tail(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let mut state = StderrState::default();
        state.observe(&format!("{HEARTBEAT_PREFIX} t=1.0s cells=7"));
        // Every interleaved line carries the prefix — few parse as a heartbeat.
        let garbage: Vec<String> =
            (0..rng.below(16)).map(|_| format!("{HEARTBEAT_PREFIX}{}", junk_line(&mut rng))).collect();
        for line in &garbage {
            state.observe(line);
        }
        let last = state.last_cells().expect("the well-formed beat is never forgotten");
        // The reading is the initial beat unless some junk happened to parse cleanly.
        let junk_cells: Vec<u64> =
            garbage.iter().filter_map(|l| parse_heartbeat(l)).map(|(_, cells)| cells).collect();
        match junk_cells.last() {
            Some(&cells) => prop_assert_eq!(last, cells),
            None => prop_assert_eq!(last, 7),
        }
        prop_assert!(
            !state.render_tail().contains(HEARTBEAT_PREFIX),
            "heartbeat-prefixed lines stay out of the failure tail"
        );
    }

    /// The interval parser is strict in both directions: every positive integer of
    /// milliseconds round-trips, and anything led by a non-digit is a loud error.
    #[test]
    fn interval_parsing_is_strict(ms in 1u64..1_000_000, seed in 0u64..u64::MAX) {
        prop_assert_eq!(
            parse_heartbeat_interval(&ms.to_string()),
            Ok(std::time::Duration::from_millis(ms))
        );
        let mut rng = TestRng::from_seed(seed);
        // A leading 'x' survives trimming and can never begin an integer.
        let junk = format!("x{}", junk_line(&mut rng));
        prop_assert!(parse_heartbeat_interval(&junk).is_err(), "{:?} must not parse", junk);
    }
}
