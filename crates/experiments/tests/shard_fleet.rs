//! The fleet-merge bit-identity contract: splitting any spec into shards, running them
//! independently, and merging must reproduce the single-process [`SweepResult`] — not
//! approximately, but bit-for-bit, because float addition is non-associative and the
//! merge therefore replays raw samples in seed order instead of summing partial
//! aggregates. Plus the cache's corruption guarantees: a damaged entry is a miss and a
//! recompute, never a silently trusted wrong answer.

use experiments::cli;
use experiments::presets::{self, Variant};
use experiments::shard::{
    cache_key, run_fleet, split, FleetOptions, InProcessRunner, ShardCache, ShardError,
};
use experiments::spec::{ExperimentSpec, SeedPolicy, SeedSpec, SpecRun};
use experiments::SweepResult;
use proptest::prelude::*;
use proptest::TestRng;

/// Byte-level equality of two sweep results: counters exactly, every aggregate field by
/// `f64::to_bits` (plain `==` would wrongly fail on equal NaNs — figure 7's infeasible
/// cells aggregate to NaN means — and wrongly pass on `0.0 == -0.0`).
fn assert_bit_identical(merged: &SweepResult, direct: &SweepResult, what: &str) {
    assert_eq!(merged.xs, direct.xs, "{what}: xs");
    assert_eq!(merged.arm_names, direct.arm_names, "{what}: arm names");
    assert_eq!(merged.counters, direct.counters, "{what}: counters");
    assert_eq!(merged.aggregates.len(), direct.aggregates.len(), "{what}: point count");
    for (p, (m_row, d_row)) in merged.aggregates.iter().zip(&direct.aggregates).enumerate() {
        assert_eq!(m_row.len(), d_row.len(), "{what}: arm count at point {p}");
        for (a, (m, d)) in m_row.iter().zip(d_row).enumerate() {
            let pairs = [
                ("mean_energy_j", m.mean_energy_j, d.mean_energy_j),
                ("mean_time_s", m.mean_time_s, d.mean_time_s),
                ("std_energy_j", m.std_energy_j, d.std_energy_j),
                ("std_time_s", m.std_time_s, d.std_time_s),
            ];
            for (field, merged_v, direct_v) in pairs {
                assert_eq!(
                    merged_v.to_bits(),
                    direct_v.to_bits(),
                    "{what}: {field} differs at point {p}, arm {a}: {merged_v} vs {direct_v}"
                );
            }
            assert_eq!(m.count, d.count, "{what}: count at point {p}, arm {a}");
            assert_eq!(m.attempts, d.attempts, "{what}: attempts at point {p}, arm {a}");
        }
    }
}

/// The acceptance gate: every figure preset, split three ways, merges back to the exact
/// single-process result — including the rendered `--json` document, byte for byte.
#[test]
fn every_figure_preset_merges_bit_identically_across_three_shards() {
    for &fig in &presets::FIGURES {
        let mut spec = presets::spec(fig, Variant::Quick).unwrap();
        // Keep the gate fast but non-trivial: enough seeds that every shard is non-empty
        // and unevenly sized (7 = 3 + 2 + 2).
        spec.override_seed_count(7);
        let direct = spec.run().unwrap();
        let opts = FleetOptions { shards: 3, ..FleetOptions::default() };
        let (merged, stats) = run_fleet(&spec, &opts, &InProcessRunner).unwrap();
        assert_bit_identical(&merged, &direct.result, &format!("fig{fig}"));
        assert_eq!(stats.shard_cache_hits, 0, "no cache configured");
        assert_eq!(stats.shard_cache_misses, 0, "no cache configured");

        let merged_run = SpecRun { reports: spec.render_reports(&merged), result: merged };
        assert_eq!(
            cli::run_document(&spec, &merged_run).to_pretty_string(),
            cli::run_document(&spec, &direct).to_pretty_string(),
            "fig{fig}: rendered JSON documents must be byte-identical"
        );
    }
}

#[test]
fn shard_counts_beyond_the_seed_count_still_merge_exactly() {
    let mut spec = presets::spec(3, Variant::Quick).unwrap();
    spec.override_seed_count(2);
    let direct = spec.run().unwrap();
    for shards in [1, 2, 5, 16] {
        let opts = FleetOptions { shards, concurrency: Some(2), ..FleetOptions::default() };
        let (merged, _) = run_fleet(&spec, &opts, &InProcessRunner).unwrap();
        assert_bit_identical(&merged, &direct.result, &format!("{shards} shards"));
    }
}

#[test]
fn a_warm_cache_answers_every_shard_and_stays_bit_identical() {
    let mut spec = presets::spec(2, Variant::Quick).unwrap();
    spec.override_seed_count(6);
    let direct = spec.run().unwrap();
    let dir = std::env::temp_dir().join(format!("fedopt-shard-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let opts = |dir: &std::path::Path| FleetOptions {
        shards: 3,
        cache: Some(ShardCache::open(dir).unwrap()),
        ..FleetOptions::default()
    };
    let (cold, cold_stats) = run_fleet(&spec, &opts(&dir), &InProcessRunner).unwrap();
    assert_eq!((cold_stats.shard_cache_hits, cold_stats.shard_cache_misses), (0, 3));
    let (warm, warm_stats) = run_fleet(&spec, &opts(&dir), &InProcessRunner).unwrap();
    assert_eq!((warm_stats.shard_cache_hits, warm_stats.shard_cache_misses), (3, 0));

    assert_bit_identical(&cold, &direct.result, "cold cached fleet");
    assert_bit_identical(&warm, &direct.result, "warm cached fleet");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entries_are_recomputed_never_trusted() {
    let mut spec = presets::spec(2, Variant::Quick).unwrap();
    spec.override_seed_count(3);
    let direct = spec.run().unwrap();
    let dir = std::env::temp_dir().join(format!("fedopt-shard-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Populate the cache, then damage every entry a different way.
    let cache = ShardCache::open(&dir).unwrap();
    let shard_specs = split(&spec, 3).unwrap();
    let opts = FleetOptions { shards: 3, cache: Some(cache.clone()), ..FleetOptions::default() };
    run_fleet(&spec, &opts, &InProcessRunner).unwrap();

    let keys: Vec<String> = shard_specs.iter().map(cache_key).collect();
    let paths: Vec<std::path::PathBuf> = keys.iter().map(|k| cache.entry_path(k)).collect();
    // Entry 0: truncated mid-document.
    let text = std::fs::read_to_string(&paths[0]).unwrap();
    std::fs::write(&paths[0], &text[..text.len() / 2]).unwrap();
    // Entry 1: one payload byte flipped — still valid JSON, but the hash no longer
    // matches. Flip a digit inside a sample so the document parses.
    let text = std::fs::read_to_string(&paths[1]).unwrap();
    let pos = text.find("\"samples\":").unwrap();
    let digit =
        text[pos..].char_indices().find(|(_, c)| c.is_ascii_digit()).map(|(i, _)| pos + i).unwrap();
    let mut bytes = text.into_bytes();
    bytes[digit] = if bytes[digit] == b'9' { b'8' } else { bytes[digit] + 1 };
    std::fs::write(&paths[1], bytes).unwrap();
    // Entry 2: left intact.

    for (i, key) in keys.iter().enumerate() {
        let loaded = cache.load(key);
        if i == 2 {
            assert!(loaded.is_some(), "the intact entry must still load");
        } else {
            assert!(loaded.is_none(), "damaged entry {i} must read as a miss");
        }
    }

    // The fleet recomputes the two damaged shards, trusts the intact one, and the merged
    // result is still exactly the single-process answer.
    let opts = FleetOptions { shards: 3, cache: Some(cache.clone()), ..FleetOptions::default() };
    let (merged, stats) = run_fleet(&spec, &opts, &InProcessRunner).unwrap();
    assert_eq!((stats.shard_cache_hits, stats.shard_cache_misses), (1, 2));
    assert_bit_identical(&merged, &direct.result, "fleet over a damaged cache");
    // And the damaged entries were re-written in place.
    for key in &keys {
        assert!(cache.load(key).is_some(), "recomputed entries must be restored");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_failing_runner_produces_a_loud_partial_report() {
    struct FailOdd;
    impl experiments::shard::ShardRunner for FailOdd {
        fn run_shard(
            &self,
            spec: &ExperimentSpec,
        ) -> Result<experiments::shard::ShardResult, experiments::shard::ShardRunError> {
            let first_seed = spec.seeds.values()[0];
            if first_seed % 2 == 1 {
                Err(experiments::shard::ShardRunError::from(format!(
                    "synthetic failure for seed {first_seed}"
                )))
            } else {
                experiments::shard::run_shard_in_process(spec)
                    .map_err(|e| experiments::shard::ShardRunError::from(e.to_string()))
            }
        }
    }
    let mut spec = presets::spec(2, Variant::Quick).unwrap();
    spec.override_seed_count(4); // shards start at seeds 0, 2, 3 → the last one fails
    let opts = FleetOptions { shards: 3, ..FleetOptions::default() };
    let err = run_fleet(&spec, &opts, &FailOdd).unwrap_err();
    match &err {
        ShardError::Partial { failures, completed, total } => {
            assert_eq!(*total, 3);
            assert_eq!(*completed, 2);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].attempts, 2, "one retry before giving up");
            assert!(failures[0].error.contains("synthetic failure"));
        }
        other => panic!("expected a partial failure, got {other:?}"),
    }
    let report = err.to_string();
    assert!(report.contains("1 of 3 shards failed"), "{report}");
    assert!(report.contains("seeds 3..4"), "the report names the failed range: {report}");
}

#[test]
fn configured_retries_are_exhausted_before_a_shard_fails_terminally() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingFailure(AtomicUsize);
    impl experiments::shard::ShardRunner for CountingFailure {
        fn run_shard(
            &self,
            _spec: &ExperimentSpec,
        ) -> Result<experiments::shard::ShardResult, experiments::shard::ShardRunError> {
            let n = self.0.fetch_add(1, Ordering::Relaxed) + 1;
            Err(experiments::shard::ShardRunError::from(format!("attempt {n} down")))
        }
    }

    let mut spec = presets::spec(2, Variant::Quick).unwrap();
    spec.override_seed_count(2);
    let runner = CountingFailure(AtomicUsize::new(0));
    let opts = FleetOptions {
        shards: 1,
        max_retries: 3,
        backoff: std::time::Duration::ZERO, // the schedule is covered by backoff_delay tests
        ..FleetOptions::default()
    };
    let err = run_fleet(&spec, &opts, &runner).unwrap_err();
    assert_eq!(runner.0.load(Ordering::Relaxed), 4, "1 initial try + 3 retries");
    match err {
        ShardError::Partial { failures, .. } => {
            assert_eq!(failures[0].attempts, 4);
            assert!(failures[0].error.contains("attempt 4"), "the last error wins");
        }
        other => panic!("expected a partial failure, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

fn arbitrary_seed_policy(rng: &mut TestRng, max_count: u64) -> SeedPolicy {
    if rng.below(2) == 0 {
        SeedPolicy::Range { start: rng.below(1 << 40), count: 1 + rng.below(max_count) }
    } else {
        let n = 1 + rng.below(max_count);
        SeedPolicy::List((0..n).map(|_| rng.below(1 << 50)).collect())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting any seed policy into N ∈ [1, 16] shards partitions the seed sequence
    /// exactly: concatenating the shards' seeds, in shard order, reproduces the parent's
    /// seed sequence, with no overlap, gap, or reordering — and each shard is itself a
    /// valid spec.
    #[test]
    fn splitting_partitions_the_seed_sequence_exactly(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let mut spec = presets::spec(2, Variant::Quick).unwrap();
        spec.seeds = SeedSpec {
            policy: arbitrary_seed_policy(&mut rng, 5_000),
            ..spec.seeds.clone()
        };
        let n = 1 + rng.below(16) as usize;
        let shards = split(&spec, n).unwrap();

        prop_assert!(!shards.is_empty());
        prop_assert!(shards.len() <= n);
        let parent: Vec<u64> = spec.seeds.values();
        let concatenated: Vec<u64> =
            shards.iter().flat_map(|s| s.seeds.values()).collect();
        prop_assert_eq!(&concatenated, &parent);
        // Balanced to within one seed, and every shard validates on its own.
        let sizes: Vec<u64> = shards.iter().map(|s| s.seeds.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced shard sizes {:?}", sizes);
        for shard in &shards {
            prop_assert!(shard.validate().is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End to end on small random sweeps: merged fleet output is bit-identical to the
    /// unsharded engine for arbitrary seed policies and shard counts.
    #[test]
    fn merged_fleets_match_the_unsharded_engine(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::from_seed(seed);
        let mut spec = presets::spec(2, Variant::Quick).unwrap();
        spec.seeds = SeedSpec {
            policy: arbitrary_seed_policy(&mut rng, 5),
            ..spec.seeds.clone()
        };
        let n = 1 + rng.below(6) as usize;
        let direct = spec.run().unwrap();
        let opts = FleetOptions { shards: n, ..FleetOptions::default() };
        let (merged, _) = run_fleet(&spec, &opts, &InProcessRunner).unwrap();
        assert_bit_identical(&merged, &direct.result, &format!("{n}-shard random fleet"));
    }
}
