//! Golden-file pins of the CLI's machine-readable surfaces:
//!
//! * the `fedopt run --fig 2 --seeds 3 --json` document against
//!   `tests/golden/fig2_quick_seeds3.json` (floats compared **exactly** — sweep output is
//!   deterministic and the JSON writer is shortest-round-trip, so any byte difference is
//!   a real behaviour change), mirroring the CI `cli-smoke` job's end-to-end diff;
//! * the committed example spec `examples/specs/fig2_quick.json` against what
//!   `fedopt spec --fig 2` prints today (the README documents that file — it must never
//!   drift from the preset).
//!
//! Regenerate both after an intentional change with:
//! `FEDOPT_BLESS=1 cargo test -p experiments --test cli_golden`.

use experiments::cli;
use experiments::engine::SweepEngine;
use experiments::presets::{self, Variant};
use experiments::spec::ExperimentSpec;
use std::path::{Path, PathBuf};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(actual: &str, path: &Path, regenerate_hint: &str) {
    if std::env::var("FEDOPT_BLESS").is_ok() {
        std::fs::write(path, actual).unwrap_or_else(|e| panic!("blessing {path:?}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); {regenerate_hint}"));
    assert_eq!(actual, golden, "{path:?} is stale; {regenerate_hint}");
}

/// The exact document the CI smoke job diffs: `fedopt run --fig 2 --seeds 3 --json` on the
/// cold solver path. The engine is pinned explicitly (single thread, warm start off) so
/// the pin holds under every CI matrix entry; output is thread-count independent, so the
/// CLI reproduces it at any `--threads`.
#[test]
fn fig2_quick_seeds3_json_document_matches_golden() {
    let mut spec = presets::spec(2, Variant::Quick).expect("figure 2 exists");
    spec.override_seed_count(3);
    let engine = SweepEngine::single_thread().with_warm_start(false);
    let run = spec.run_with_engine(&engine).expect("fig2 quick must evaluate");
    let document = cli::run_document(&spec, &run).to_pretty_string();
    check_golden(
        &document,
        &manifest_dir().join("tests/golden/fig2_quick_seeds3.json"),
        "regenerate with FEDOPT_BLESS=1 cargo test -p experiments --test cli_golden",
    );
    // The same document must also be exactly what the text renderer's JSON mode emits.
    assert_eq!(cli::render_run(&spec, &run, true), document);
}

/// The legacy reference pin: the same document on the cold solver path with the
/// superlinear (Brent) `μ`-root step switched off must still reproduce the historical
/// pure-bisection golden **bit for bit**. This is the gate the PR 6 hot-path work hides
/// behind: the struct-of-arrays lanes, the hoisted constants and the once-per-solve
/// `(ρ, idx)` sort are all exact rewrites, so with Brent *and* warm start off nothing may
/// drift — any diff here is a real numerical regression, not an intentional re-bless.
///
/// `fig2_quick_seeds3_bisect.json` is frozen (copied from the pre-Brent golden); it is
/// deliberately **not** re-blessed by `FEDOPT_BLESS`.
#[test]
fn fig2_quick_seeds3_legacy_bisection_path_is_bit_identical() {
    let mut spec = presets::spec(2, Variant::Quick).expect("figure 2 exists");
    spec.override_seed_count(3);
    let engine = SweepEngine::single_thread().with_warm_start(false).with_superlinear_mu(false);
    let run = spec.run_with_engine(&engine).expect("fig2 quick must evaluate");
    let document = cli::run_document(&spec, &run).to_pretty_string();
    let path = manifest_dir().join("tests/golden/fig2_quick_seeds3_bisect.json");
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing frozen legacy golden {path:?} ({e})"));
    assert_eq!(
        document, golden,
        "the legacy cold+bisection path drifted — the SoA/complexity rewrites must be exact"
    );
}

/// The committed, README-documented example spec is exactly `fedopt spec --fig 2` today.
#[test]
fn committed_example_spec_is_fresh_and_parseable() {
    let spec = presets::spec(2, Variant::Quick).expect("figure 2 exists");
    let path = manifest_dir().join("../../examples/specs/fig2_quick.json");
    check_golden(
        &spec.to_json_string(),
        &path,
        "regenerate with FEDOPT_BLESS=1 cargo test -p experiments --test cli_golden",
    );
    if std::env::var("FEDOPT_BLESS").is_err() {
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(ExperimentSpec::from_json_str(&text).unwrap(), spec);
    }
}

/// The pipe the CI smoke job runs — `fedopt spec --fig 2 | fedopt run --spec -` — hinges
/// on the printed spec re-parsing to the same experiment; pin that equivalence at the
/// library level too (the subprocess half lives in CI).
#[test]
fn printed_spec_reparses_to_the_same_experiment() {
    for &fig in &presets::FIGURES {
        let args: Vec<String> =
            ["spec", "--fig", &fig.to_string()].iter().map(|s| s.to_string()).collect();
        let printed = cli::main_with(&args).expect("spec subcommand must print");
        let parsed = ExperimentSpec::from_json_str(&printed).expect("printed spec must parse");
        assert_eq!(parsed, presets::spec(fig, Variant::Quick).unwrap());
    }
}
