//! Figure 4 — total energy (4a) and total delay (4b) vs the number of devices.
//!
//! The total number of training samples is fixed at 25 000 and split equally across devices,
//! so adding devices shrinks every device's local workload.

use crate::arms::ProposedArm;
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};

/// Configuration of the Figure-4 sweep.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Device counts to sweep (the paper uses 20–80).
    pub device_counts: Vec<usize>,
    /// Total number of samples split across the devices.
    pub total_samples: u64,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// The weight pairs to plot.
    pub weights: Vec<Weights>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig4Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            device_counts: vec![10, 20, 40],
            total_samples: 25_000,
            seeds: vec![31],
            weights: vec![
                Weights::new(0.9, 0.1).expect("valid"),
                Weights::new(0.5, 0.5).expect("valid"),
                Weights::new(0.1, 0.9).expect("valid"),
            ],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: 20–80 devices, all five weight pairs, 100 scenario draws
    /// per point.
    pub fn paper() -> Self {
        Self {
            device_counts: vec![20, 30, 40, 50, 60, 70, 80],
            total_samples: 25_000,
            seeds: (0..100).collect(),
            weights: Weights::paper_sweep().to_vec(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid this configuration describes.
    pub fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &n in &self.device_counts {
            grid = grid.point(
                n as f64,
                ScenarioBuilder::paper_default()
                    .with_devices(n)
                    .with_total_samples(self.total_samples),
            );
        }
        for &w in &self.weights {
            grid = grid.arm(ProposedArm::new(w, self.solver));
        }
        grid
    }
}

/// The spec twin of [`Fig4Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig4(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig4Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig4(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default engine and returns `(energy report, delay report)` —
/// Fig. 4a and Fig. 4b.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run(cfg: &Fig4Config) -> Result<(FigureReport, FigureReport), CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(
    cfg: &Fig4Config,
    engine: &SweepEngine,
) -> Result<(FigureReport, FigureReport), CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok((
        result.energy_report(
            "fig4a",
            "Total energy consumption vs number of devices",
            "number of devices",
        ),
        result.time_report(
            "fig4b",
            "Total completion time vs number of devices",
            "number of devices",
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_devices_with_fixed_total_samples_reduces_delay() {
        let cfg = Fig4Config {
            device_counts: vec![5, 20],
            total_samples: 10_000,
            seeds: vec![3],
            weights: vec![Weights::new(0.1, 0.9).unwrap()],
            solver: SolverConfig::fast(),
        };
        let (energy, delay) = run(&cfg).unwrap();
        assert_eq!(energy.rows.len(), 2);
        // With 4x fewer samples per device, the time-weighted run finishes faster.
        let few = delay.rows[0].1[0];
        let many = delay.rows[1].1[0];
        assert!(many < few, "delay should drop with more devices: {few} -> {many}");
    }
}
