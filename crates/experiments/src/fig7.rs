//! Figure 7 — total energy vs the maximum completion time `T`, comparing joint optimization
//! against communication-only and computation-only optimization (`w1 = 1, w2 = 0`,
//! `p_max = 10 dBm`).

use crate::arms::{CommOnlyArm, CompOnlyArm, DeadlineProposedArm, DeadlineSource};
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::ScenarioBuilder;

/// Configuration of the Figure-7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Number of devices.
    pub devices: usize,
    /// Maximum transmit power in dBm (the paper fixes 10 dBm here).
    pub p_max_dbm: f64,
    /// Completion-time deadlines to sweep, in seconds.
    pub deadlines_s: Vec<f64>,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig7Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            devices: 12,
            p_max_dbm: 10.0,
            deadlines_s: vec![100.0, 120.0, 150.0],
            seeds: vec![61],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: 50 devices, deadlines 100–150 s, 100 scenario draws per
    /// point.
    pub fn paper() -> Self {
        Self {
            devices: 50,
            p_max_dbm: 10.0,
            deadlines_s: vec![100.0, 110.0, 120.0, 130.0, 140.0, 150.0],
            seeds: (0..100).collect(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid: deadlines as points (the arms read the deadline from the x value).
    pub fn grid(&self) -> SweepGrid {
        let builder = ScenarioBuilder::paper_default()
            .with_devices(self.devices)
            .with_p_max_dbm(self.p_max_dbm);
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &deadline in &self.deadlines_s {
            grid = grid.point(deadline, builder.clone());
        }
        grid.arm(DeadlineProposedArm::new(DeadlineSource::FromX, self.solver))
            .arm(CommOnlyArm::new(self.solver))
            .arm(CompOnlyArm::new(self.solver))
    }
}

/// The spec twin of [`Fig7Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig7(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig7Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig7(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default engine and returns the Figure-7 report (three series:
/// proposed, communication only, computation only).
///
/// # Errors
///
/// Propagates solver errors (an infeasible deadline for some seed is skipped, not an error).
pub fn run(cfg: &Fig7Config) -> Result<FigureReport, CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(cfg: &Fig7Config, engine: &SweepEngine) -> Result<FigureReport, CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok(result.energy_report(
        "fig7",
        "Total energy consumption vs maximum completion time",
        "maximum completion time T (s)",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_beats_comm_only_beats_comp_only() {
        let cfg = Fig7Config {
            devices: 8,
            p_max_dbm: 10.0,
            deadlines_s: vec![110.0, 150.0],
            seeds: vec![7],
            solver: SolverConfig::fast(),
        };
        let report = run(&cfg).unwrap();
        for (deadline, row) in &report.rows {
            let (proposed, comm, comp) = (row[0], row[1], row[2]);
            assert!(
                proposed <= comm * 1.02,
                "T={deadline}: proposed {proposed} should beat comm-only {comm}"
            );
            assert!(
                comm <= comp * 1.05,
                "T={deadline}: comm-only {comm} should beat comp-only {comp}"
            );
        }
        // Looser deadline never costs the proposed scheme more energy.
        assert!(report.rows[1].1[0] <= report.rows[0].1[0] * 1.02);
    }
}
