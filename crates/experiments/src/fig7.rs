//! Figure 7 — total energy vs the maximum completion time `T`, comparing joint optimization
//! against communication-only and computation-only optimization (`w1 = 1, w2 = 0`,
//! `p_max = 10 dBm`).

use crate::report::FigureReport;
use crate::sweep::average_metric;
use baselines::{CommOnlyAllocator, CompOnlyAllocator};
use fedopt_core::{CoreError, JointOptimizer, SolverConfig};
use flsys::ScenarioBuilder;

/// Configuration of the Figure-7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Number of devices.
    pub devices: usize,
    /// Maximum transmit power in dBm (the paper fixes 10 dBm here).
    pub p_max_dbm: f64,
    /// Completion-time deadlines to sweep, in seconds.
    pub deadlines_s: Vec<f64>,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig7Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            devices: 12,
            p_max_dbm: 10.0,
            deadlines_s: vec![100.0, 120.0, 150.0],
            seeds: vec![61],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: 50 devices, deadlines 100–150 s.
    pub fn paper() -> Self {
        Self {
            devices: 50,
            p_max_dbm: 10.0,
            deadlines_s: vec![100.0, 110.0, 120.0, 130.0, 140.0, 150.0],
            seeds: (0..5).collect(),
            solver: SolverConfig::default(),
        }
    }
}

/// Runs the sweep and returns the Figure-7 report (three series: proposed, communication
/// only, computation only).
///
/// # Errors
///
/// Propagates solver errors (an infeasible deadline for some seed is skipped, not an error).
pub fn run(cfg: &Fig7Config) -> Result<FigureReport, CoreError> {
    let mut report = FigureReport::new(
        "fig7",
        "Total energy consumption vs maximum completion time",
        "maximum completion time T (s)",
        "total energy (J)",
        vec!["proposed".to_string(), "communication only".to_string(), "computation only".to_string()],
    );

    let builder = ScenarioBuilder::paper_default()
        .with_devices(cfg.devices)
        .with_p_max_dbm(cfg.p_max_dbm);
    let optimizer = JointOptimizer::new(cfg.solver);
    let comm = CommOnlyAllocator::new(cfg.solver);
    let comp = CompOnlyAllocator::new(cfg.solver);

    for &deadline in &cfg.deadlines_s {
        let proposed = average_metric(&builder, &cfg.seeds, |s| match optimizer.solve_with_deadline(s, deadline) {
            Ok(out) => Ok(Some(out.total_energy_j)),
            Err(CoreError::InfeasibleDeadline { .. }) => Ok(None),
            Err(e) => Err(e),
        })?;
        let comm_only = average_metric(&builder, &cfg.seeds, |s| {
            comm.allocate(s, deadline).map(|r| Some(r.total_energy_j()))
        })?;
        let comp_only = average_metric(&builder, &cfg.seeds, |s| {
            comp.allocate(s, deadline).map(|r| Some(r.total_energy_j()))
        })?;
        report.push_row(deadline, vec![proposed, comm_only, comp_only]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_beats_comm_only_beats_comp_only() {
        let cfg = Fig7Config {
            devices: 8,
            p_max_dbm: 10.0,
            deadlines_s: vec![110.0, 150.0],
            seeds: vec![7],
            solver: SolverConfig::fast(),
        };
        let report = run(&cfg).unwrap();
        for (deadline, row) in &report.rows {
            let (proposed, comm, comp) = (row[0], row[1], row[2]);
            assert!(
                proposed <= comm * 1.02,
                "T={deadline}: proposed {proposed} should beat comm-only {comm}"
            );
            assert!(
                comm <= comp * 1.05,
                "T={deadline}: comm-only {comm} should beat comp-only {comp}"
            );
        }
        // Looser deadline never costs the proposed scheme more energy.
        assert!(report.rows[1].1[0] <= report.rows[0].1[0] * 1.02);
    }
}
