//! Figure 2 — total energy (2a) and total delay (2b) vs the maximum transmit power limit.
//!
//! Five weight pairs of the proposed algorithm are compared against the random benchmark
//! (random CPU frequency, maximum power, equal bandwidth split) while `p_max` sweeps from
//! 5 dBm to 12 dBm.

use crate::arms::{BenchmarkArm, ProposedArm};
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};

/// Configuration of the Figure-2 sweep.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Number of devices (the paper uses 50).
    pub devices: usize,
    /// Scenario seeds to average over (the paper averages 100 random user draws).
    pub seeds: Vec<u64>,
    /// The `p_max` values to sweep, in dBm.
    pub p_max_dbm: Vec<f64>,
    /// The weight pairs to plot.
    pub weights: Vec<Weights>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig2Config {
    /// Small preset for CI / benches: 15 devices, 2 seeds, 4 sweep points.
    pub fn quick() -> Self {
        Self {
            devices: 15,
            seeds: vec![11, 12],
            p_max_dbm: vec![5.0, 8.0, 10.0, 12.0],
            weights: Weights::paper_sweep().to_vec(),
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: 50 devices, 5 dBm to 12 dBm in 1 dB steps, 100 scenario
    /// draws per point.
    pub fn paper() -> Self {
        Self {
            devices: 50,
            seeds: (0..100).collect(),
            p_max_dbm: (5..=12).map(f64::from).collect(),
            weights: Weights::paper_sweep().to_vec(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid this configuration describes.
    pub fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &p_max in &self.p_max_dbm {
            grid = grid.point(
                p_max,
                ScenarioBuilder::paper_default().with_devices(self.devices).with_p_max_dbm(p_max),
            );
        }
        for &w in &self.weights {
            grid = grid.arm(ProposedArm::new(w, self.solver));
        }
        grid.arm(BenchmarkArm::random_frequency())
    }
}

/// The spec twin of [`Fig2Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig2(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig2Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig2(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default (fully parallel) engine and returns
/// `(energy report, delay report)` — Fig. 2a and Fig. 2b.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run(cfg: &Fig2Config) -> Result<(FigureReport, FigureReport), CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine (thread-count control for tests and benches).
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(
    cfg: &Fig2Config,
    engine: &SweepEngine,
) -> Result<(FigureReport, FigureReport), CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok((
        result.energy_report(
            "fig2a",
            "Total energy consumption vs maximum transmit power",
            "p_max (dBm)",
        ),
        result.time_report(
            "fig2b",
            "Total completion time vs maximum transmit power",
            "p_max (dBm)",
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig2Config {
        Fig2Config {
            devices: 6,
            seeds: vec![1],
            p_max_dbm: vec![6.0, 12.0],
            weights: vec![Weights::new(0.9, 0.1).unwrap(), Weights::new(0.1, 0.9).unwrap()],
            solver: SolverConfig::fast(),
        }
    }

    #[test]
    fn proposed_beats_benchmark_on_its_weighted_metric_and_is_monotone() {
        // At this small device count the paper's "every weight pair beats the benchmark on
        // energy" only holds for the energy-leaning pairs (the energy optimum scales with
        // 1/N), so the robust cross-scale claims are: the energy-focused pair wins on energy,
        // the time-focused pair wins on delay, and both metrics are monotone in the weights.
        let (energy, delay) = run(&tiny()).unwrap();
        assert_eq!(energy.rows.len(), 2);
        assert_eq!(delay.rows.len(), 2);
        for ((_, e_row), (_, t_row)) in energy.rows.iter().zip(&delay.rows) {
            let e_bench = *e_row.last().unwrap();
            let t_bench = *t_row.last().unwrap();
            // w1 = 0.9 beats the benchmark on energy (Fig. 2a's headline).
            assert!(
                e_row[0] < e_bench,
                "w1=0.9 energy {} should beat benchmark {e_bench}",
                e_row[0]
            );
            // w2 = 0.9 beats the benchmark on delay (Fig. 2b's headline).
            assert!(
                t_row[1] < t_bench,
                "w2=0.9 delay {} should beat benchmark {t_bench}",
                t_row[1]
            );
            // Larger w1 ⇒ lower energy; larger w2 ⇒ lower delay.
            assert!(e_row[0] <= e_row[1] * 1.05);
            assert!(t_row[1] <= t_row[0] * 1.05);
        }
        // Every cell averaged its full seed set.
        for row in 0..energy.rows.len() {
            for col in 0..energy.columns.len() {
                assert_eq!(energy.sample_count(row, col), Some(1));
            }
        }
    }
}
