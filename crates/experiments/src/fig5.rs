//! Figure 5 — total energy (5a) and total delay (5b) vs the radius of the placement disc,
//! for three device counts, at `w1 = w2 = 0.5`.

use crate::arms::{ConfiguredArm, ProposedArm};
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};

/// Configuration of the Figure-5 sweep.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Radii of the placement disc to sweep, in kilometres.
    pub radii_km: Vec<f64>,
    /// Device counts (one series each; the paper uses 20, 50, 80).
    pub device_counts: Vec<usize>,
    /// Samples per device (the paper keeps 500 regardless of the device count here).
    pub samples_per_device: u64,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig5Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            radii_km: vec![0.1, 0.5, 1.0],
            device_counts: vec![10, 20],
            samples_per_device: 500,
            seeds: vec![41],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: radii 0.1–1.5 km, N ∈ {20, 50, 80}, 100 scenario draws per
    /// point.
    pub fn paper() -> Self {
        Self {
            radii_km: vec![0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5],
            device_counts: vec![20, 50, 80],
            samples_per_device: 500,
            seeds: (0..100).collect(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid: radii as points, one proposed arm per device count.
    pub fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &radius in &self.radii_km {
            grid = grid.point(
                radius,
                ScenarioBuilder::paper_default()
                    .with_samples_per_device(self.samples_per_device)
                    .with_radius_km(radius),
            );
        }
        for &n in &self.device_counts {
            grid = grid.arm(
                ConfiguredArm::new(ProposedArm::new(Weights::balanced(), self.solver))
                    .named(format!("N = {n}"))
                    .with_builder(move |b| b.with_devices(n)),
            );
        }
        grid
    }
}

/// The spec twin of [`Fig5Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig5(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig5Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig5(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default engine and returns `(energy report, delay report)` —
/// Fig. 5a and Fig. 5b.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run(cfg: &Fig5Config) -> Result<(FigureReport, FigureReport), CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(
    cfg: &Fig5Config,
    engine: &SweepEngine,
) -> Result<(FigureReport, FigureReport), CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok((
        result.energy_report(
            "fig5a",
            "Total energy consumption vs cell radius (w1 = w2 = 0.5)",
            "radius (km)",
        ),
        result.time_report(
            "fig5b",
            "Total completion time vs cell radius (w1 = w2 = 0.5)",
            "radius (km)",
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_with_radius() {
        let cfg = Fig5Config {
            radii_km: vec![0.1, 1.5],
            device_counts: vec![8],
            samples_per_device: 500,
            seeds: vec![5],
            solver: SolverConfig::fast(),
        };
        let (energy, delay) = run(&cfg).unwrap();
        let near = delay.rows[0].1[0];
        let far = delay.rows[1].1[0];
        assert!(far > near, "delay should grow with radius: {near} -> {far}");
        assert_eq!(energy.columns, vec!["N = 8".to_string()]);
    }
}
