//! Regenerates Figure 7 of the paper.
//!
//! Run with `--paper` for the full 50-device sweep; the default is a quick preset.

#[path = "common.rs"]
mod common;

use experiments::fig7::{run, Fig7Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = if common::paper_mode() { Fig7Config::paper() } else { Fig7Config::quick() };
    eprintln!("running figure 7 sweep ({} mode)...", if common::paper_mode() { "paper" } else { "quick" });
    let report = run(&cfg)?;
    common::emit(&report);
    Ok(())
}
