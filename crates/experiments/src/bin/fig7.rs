//! Regenerates Figure 7 of the paper.
//!
//! Run with `--paper` for the full 50-device sweep (the default is a quick preset) and
//! `--threads N` to pin the sweep-engine worker count.

#[path = "common.rs"]
mod common;

use experiments::fig7::{run_with_engine, Fig7Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = if common::paper_mode() { Fig7Config::paper() } else { Fig7Config::quick() };
    let engine = common::engine_from_args();
    eprintln!(
        "running figure 7 sweep ({} mode, {} threads)...",
        if common::paper_mode() { "paper" } else { "quick" },
        engine.threads()
    );
    let report = run_with_engine(&cfg, &engine)?;
    common::emit(&report);
    Ok(())
}
