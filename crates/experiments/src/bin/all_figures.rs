//! Regenerates every figure of the paper's evaluation in one run.
//!
//! Run with `--paper` for the full 50-device sweeps at the paper's 100 scenario draws per
//! point (the default quick presets finish in a few minutes on a laptop), `--threads N` to
//! pin the sweep-engine worker count, and `--seeds N` to override the draws per point.

#[path = "common.rs"]
mod common;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper = common::paper_mode();
    let engine = common::engine_from_args();
    eprintln!("sweep engine: {} threads", engine.threads());
    macro_rules! pair {
        ($modname:ident, $cfg:ident, $label:expr) => {{
            eprintln!("=== {} ===", $label);
            let mut cfg = if paper {
                experiments::$modname::$cfg::paper()
            } else {
                experiments::$modname::$cfg::quick()
            };
            common::apply_seed_override(&mut cfg.seeds);
            let (energy, delay) = experiments::$modname::run_with_engine(&cfg, &engine)?;
            common::emit(&energy);
            common::emit(&delay);
        }};
    }
    pair!(fig2, Fig2Config, "Figure 2: energy/delay vs maximum transmit power");
    pair!(fig3, Fig3Config, "Figure 3: energy/delay vs maximum CPU frequency");
    pair!(fig4, Fig4Config, "Figure 4: energy/delay vs number of devices");
    pair!(fig5, Fig5Config, "Figure 5: energy/delay vs cell radius");
    pair!(fig6, Fig6Config, "Figure 6: energy/delay vs computation rounds");

    eprintln!("=== Figure 7: joint vs communication-only vs computation-only ===");
    let mut cfg7 = if paper {
        experiments::fig7::Fig7Config::paper()
    } else {
        experiments::fig7::Fig7Config::quick()
    };
    common::apply_seed_override(&mut cfg7.seeds);
    common::emit(&experiments::fig7::run_with_engine(&cfg7, &engine)?);

    eprintln!("=== Figure 8: proposed vs Scheme 1 ===");
    let mut cfg8 = if paper {
        experiments::fig8::Fig8Config::paper()
    } else {
        experiments::fig8::Fig8Config::quick()
    };
    common::apply_seed_override(&mut cfg8.seeds);
    common::emit(&experiments::fig8::run_with_engine(&cfg8, &engine)?);
    Ok(())
}
