//! Regenerates Figure 3 of the paper (energy and delay sub-figures).
//!
//! Run with `--paper` for the full 50-device sweep (the default is a quick preset) and
//! `--threads N` to pin the sweep-engine worker count.

#[path = "common.rs"]
mod common;

use experiments::fig3::{run_with_engine, Fig3Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = if common::paper_mode() { Fig3Config::paper() } else { Fig3Config::quick() };
    let engine = common::engine_from_args();
    eprintln!(
        "running figure 3 sweep ({} mode, {} threads)...",
        if common::paper_mode() { "paper" } else { "quick" },
        engine.threads()
    );
    let (energy, delay) = run_with_engine(&cfg, &engine)?;
    common::emit(&energy);
    common::emit(&delay);
    Ok(())
}
