//! Regenerates Figure 4 of the paper (energy and delay sub-figures).
//!
//! Run with `--paper` for the full 50-device sweep at the paper's 100 scenario draws
//! per point (the default is a quick preset), `--threads N` to pin the sweep-engine
//! worker count, and `--seeds N` to override the number of draws per point.

#[path = "common.rs"]
mod common;

use experiments::fig4::{run_with_engine, Fig4Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = if common::paper_mode() { Fig4Config::paper() } else { Fig4Config::quick() };
    common::apply_seed_override(&mut cfg.seeds);
    let engine = common::engine_from_args();
    eprintln!(
        "running figure 4 sweep ({} mode, {} threads, {} draws/point)...",
        if common::paper_mode() { "paper" } else { "quick" },
        engine.threads(),
        cfg.seeds.len()
    );
    let (energy, delay) = run_with_engine(&cfg, &engine)?;
    common::emit(&energy);
    common::emit(&delay);
    Ok(())
}
