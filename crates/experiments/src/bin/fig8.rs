//! Regenerates Figure 8 of the paper.
//!
//! Run with `--paper` for the full 50-device sweep (the default is a quick preset) and
//! `--threads N` to pin the sweep-engine worker count.

#[path = "common.rs"]
mod common;

use experiments::fig8::{run_with_engine, Fig8Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = if common::paper_mode() { Fig8Config::paper() } else { Fig8Config::quick() };
    let engine = common::engine_from_args();
    eprintln!(
        "running figure 8 sweep ({} mode, {} threads)...",
        if common::paper_mode() { "paper" } else { "quick" },
        engine.threads()
    );
    let report = run_with_engine(&cfg, &engine)?;
    common::emit(&report);
    Ok(())
}
