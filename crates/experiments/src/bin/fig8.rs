//! Regenerates Figure 8 of the paper.
//!
//! Run with `--paper` for the full 50-device sweep; the default is a quick preset.

#[path = "common.rs"]
mod common;

use experiments::fig8::{run, Fig8Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = if common::paper_mode() { Fig8Config::paper() } else { Fig8Config::quick() };
    eprintln!("running figure 8 sweep ({} mode)...", if common::paper_mode() { "paper" } else { "quick" });
    let report = run(&cfg)?;
    common::emit(&report);
    Ok(())
}
