//! Regenerates Figure 8 of the paper.
//!
//! Run with `--paper` for the full 50-device sweep at the paper's 100 scenario draws
//! per point (the default is a quick preset), `--threads N` to pin the sweep-engine
//! worker count, and `--seeds N` to override the number of draws per point.

#[path = "common.rs"]
mod common;

use experiments::fig8::{run_with_engine, Fig8Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = if common::paper_mode() { Fig8Config::paper() } else { Fig8Config::quick() };
    common::apply_seed_override(&mut cfg.seeds);
    let engine = common::engine_from_args();
    eprintln!(
        "running figure 8 sweep ({} mode, {} threads, {} draws/point)...",
        if common::paper_mode() { "paper" } else { "quick" },
        engine.threads(),
        cfg.seeds.len()
    );
    let report = run_with_engine(&cfg, &engine)?;
    common::emit(&report);
    Ok(())
}
