//! Regenerates Figure 5 of the paper (energy and delay sub-figures).
//!
//! Run with `--paper` for the full 50-device sweep; the default is a quick preset.

#[path = "common.rs"]
mod common;

use experiments::fig5::{run, Fig5Config};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = if common::paper_mode() { Fig5Config::paper() } else { Fig5Config::quick() };
    eprintln!("running figure 5 sweep ({} mode)...", if common::paper_mode() { "paper" } else { "quick" });
    let (energy, delay) = run(&cfg)?;
    common::emit(&energy);
    common::emit(&delay);
    Ok(())
}
