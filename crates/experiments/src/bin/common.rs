//! Shared helpers for the figure binaries (included via `#[path]`).

/// Returns `true` when the binary was invoked with `--paper`, selecting the full-scale
/// (50-device) preset instead of the quick one.
pub fn paper_mode() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Prints a figure report as a table followed by its CSV form.
pub fn emit(report: &experiments::FigureReport) {
    println!("{}", report.to_table_string());
    println!("--- CSV ({}) ---", report.id);
    println!("{}", report.to_csv_string());
}
