//! Shared helpers for the figure binaries (included via `#[path]`).

use experiments::SweepEngine;

/// Returns `true` when the binary was invoked with `--paper`, selecting the full-scale
/// (50-device) preset instead of the quick one.
pub fn paper_mode() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Builds the sweep engine from the command line: `--threads N` (or `--threads=N`) pins
/// the worker count (`--threads 1` forces a sequential run); the default uses all
/// available cores.
///
/// # Panics
///
/// Panics with a usage message when `--threads` is present without a positive integer.
pub fn engine_from_args() -> SweepEngine {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--threads" {
            Some(args.next().unwrap_or_default())
        } else {
            arg.strip_prefix("--threads=").map(str::to_string)
        };
        if let Some(value) = value {
            let Some(n) = value.parse::<usize>().ok().filter(|&n| n > 0) else {
                panic!("--threads requires a positive integer, got {value:?} (e.g. `--threads 4`)");
            };
            return SweepEngine::with_threads(n);
        }
    }
    SweepEngine::new()
}

/// Prints a figure report as a table followed by its CSV form.
pub fn emit(report: &experiments::FigureReport) {
    println!("{}", report.to_table_string());
    println!("--- CSV ({}) ---", report.id);
    println!("{}", report.to_csv_string());
}
