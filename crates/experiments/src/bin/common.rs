//! Shared helpers for the figure binaries (included via `#[path]`).

use experiments::SweepEngine;

/// Returns `true` when the binary was invoked with `--paper`, selecting the full-scale
/// (50-device) preset instead of the quick one.
pub fn paper_mode() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Parses one `--flag N` / `--flag=N` positive-integer option from the command line.
///
/// # Panics
///
/// Panics with a usage message when the flag is present without a positive integer.
fn positive_flag(flag: &str) -> Option<usize> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == flag {
            Some(args.next().unwrap_or_default())
        } else {
            arg.strip_prefix(&prefix).map(str::to_string)
        };
        if let Some(value) = value {
            let Some(n) = value.parse::<usize>().ok().filter(|&n| n > 0) else {
                panic!("{flag} requires a positive integer, got {value:?} (e.g. `{flag} 4`)");
            };
            return Some(n);
        }
    }
    None
}

/// Builds the sweep engine from the command line: `--threads N` (or `--threads=N`) pins
/// the worker count (`--threads 1` forces a sequential run); the default uses all
/// available cores (or the `FEDOPT_SWEEP_THREADS` environment override).
///
/// # Panics
///
/// Panics with a usage message when `--threads` is present without a positive integer.
pub fn engine_from_args() -> SweepEngine {
    match positive_flag("--threads") {
        Some(n) => SweepEngine::with_threads(n),
        None => SweepEngine::new(),
    }
}

/// Applies a `--seeds N` (or `--seeds=N`) override to a figure config's scenario-seed
/// grid, replacing it with seeds `0..N`. Without the flag the preset's grid is kept —
/// `--paper` defaults to the paper's 100 draws per point, the quick presets to their
/// small CI grids.
///
/// # Panics
///
/// Panics with a usage message when `--seeds` is present without a positive integer.
pub fn apply_seed_override(seeds: &mut Vec<u64>) {
    if let Some(n) = positive_flag("--seeds") {
        *seeds = (0..n as u64).collect();
    }
}

/// Prints a figure report as a table followed by its CSV form.
pub fn emit(report: &experiments::FigureReport) {
    println!("{}", report.to_table_string());
    println!("--- CSV ({}) ---", report.id);
    println!("{}", report.to_csv_string());
}
