//! `fedopt serve`: a crash-isolated, overload-shedding allocation service.
//!
//! The fleet path (`fedopt run --shards N`) answers *sweeps* — thousands of cells, one
//! report. This module answers *single allocation questions* at request rate: a
//! long-lived loop reads newline-delimited JSON requests (a [`RequestSpec`] — one-point
//! scenario patch + arm + solver overrides), dispatches them to a supervised pool of
//! worker threads each owning a hot [`SolverWorkspace`], and writes exactly one typed
//! JSON response per request, in request order.
//!
//! # The serving contract
//!
//! Every request gets exactly one response with `status` one of `ok`, `degraded`,
//! `shed` or `invalid` — never a hang, never a supervisor panic — and an identical
//! request stream always yields a byte-identical response stream (enable `--timing` to
//! trade that away for per-response latency):
//!
//! * **Deadlines** — a request (or session-wide `--deadline-ms`) wall-clock budget is
//!   enforced by Algorithm 2's iteration-boundary watchdog
//!   ([`SolverWorkspace::solve_deadline`]); a miss is a typed `degraded` response.
//! * **Admission control** — each worker has a bounded queue (`--queue-depth`); a full
//!   queue sheds the request with a typed `shed` response instead of building backlog.
//! * **Quarantine** — a panicking or non-finite solve tears down *that worker's*
//!   workspace ([`SolverWorkspace::quarantine_reset`]) and answers `degraded`; the
//!   worker keeps serving with a fresh workspace (`worker_restarts` counts respawns).
//! * **Warm-state self-healing** — near-identical consecutive requests on one worker
//!   keep the warm-start state (the PR 4 fast path resolves an identical cohort with 0
//!   Jong iterations); every `--warm-staleness` consecutive hits the worker re-solves
//!   cold, checks warm-vs-cold drift against the solver's `outer_tol`, and quarantines
//!   the workspace if the warm state has drifted.
//! * **Graceful drain** — stdin EOF (or SIGTERM via [`request_drain`]) stops admission,
//!   lets in-flight requests finish, and emits a final `fedopt-serve-stats` line with
//!   p50/p99 latency on stderr.
//!
//! Requests are dispatched round-robin (`seq % workers`) so the worker that handles a
//! request — and therefore the warm state it sees and the shed/no-shed outcome under
//! load — is a pure function of the request's position in the stream, not of thread
//! scheduling.
//!
//! Chaos plans ([`crate::fault`]) extend to the serving loop: `slowreq@i`, `poisonreq@i`
//! and `floodreq@i` inject a deadline-busting stall, a worker panic, and a
//! queue-flooding wedge at request index `i`, deterministically.
//!
//! [`SolverWorkspace`]: fedopt_core::SolverWorkspace
//! [`SolverWorkspace::solve_deadline`]: fedopt_core::SolverWorkspace::solve_deadline
//! [`SolverWorkspace::quarantine_reset`]: fedopt_core::SolverWorkspace::quarantine_reset

use crate::engine::{warm_start_env, CellContext, CellOutput};
use crate::fault::{FaultKind, FaultPlan};
use crate::json::{fnv1a_64, Json, MAX_EXACT_INT};
use crate::spec::{ArmKind, ArmSpec, Obj, ScenarioSpec, SolverSpec, SpecError};
use baselines::derive_stream_seed;
use fedopt_core::{CoreError, SolverWorkspace};
use flsys::{ScenarioBuilder, Weights};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Sender, TrySendError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version of the request wire format; requests must carry `"schema_version": 1`.
pub const REQUEST_SCHEMA_VERSION: u64 = 1;

/// Version of the response wire format (the `schema_version` member of every response).
pub const RESPONSE_SCHEMA_VERSION: u64 = 1;

/// The `kind` discriminator of every response line.
pub const RESPONSE_KIND: &str = "fedopt_serve_response";

/// Prefix of the final stderr statistics line emitted after a drained session.
pub const STATS_PREFIX: &str = "fedopt-serve-stats";

/// Default worker-pool size. Deliberately a fixed small constant (not a core count):
/// round-robin dispatch makes warm-state locality and shed outcomes a function of the
/// worker count, and a machine-dependent default would break cross-machine
/// byte-stability of response streams.
pub const DEFAULT_WORKERS: usize = 2;

/// Default bounded admission-queue depth per worker.
pub const DEFAULT_QUEUE_DEPTH: usize = 16;

/// Default number of consecutive warm-cache hits before a staleness refresh
/// (warm-vs-cold drift check) runs.
pub const DEFAULT_WARM_STALENESS: u64 = 64;

/// Hard cap on one request line, bytes. Longer lines are answered `invalid` without
/// being parsed (a malicious or corrupted stream must not balloon memory).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Hard cap on the echoed `id` member, bytes.
pub const MAX_ID_BYTES: usize = 256;

// ---------------------------------------------------------------------------
// Request wire format
// ---------------------------------------------------------------------------

/// One allocation request: a one-point scenario patch plus the arm and solver settings
/// to answer it with. Parsed strictly (unknown keys are errors) from one JSON line.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Opaque caller correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// Scenario overrides applied to [`ScenarioBuilder::paper_default`].
    pub scenario: ScenarioSpec,
    /// Scenario seed (default 0).
    pub seed: u64,
    /// The scheme answering the request (default: proposed, balanced weights).
    pub arm: ArmSpec,
    /// Solver preset and tolerance overrides (default: the paper-faithful preset).
    pub solver: SolverSpec,
    /// Per-request wall-clock budget in milliseconds; overrides the session default.
    pub deadline_ms: Option<u64>,
    /// The completion-time deadline in seconds handed to arms that read the axis value
    /// (`comm_only`, `comp_only`, `deadline_proposed` with `"deadline": "axis"`).
    pub deadline_s: Option<f64>,
}

impl Default for RequestSpec {
    fn default() -> Self {
        Self {
            id: None,
            scenario: ScenarioSpec::default(),
            seed: 0,
            arm: ArmSpec::new(ArmKind::Proposed { weights: Weights::balanced() }),
            solver: SolverSpec::default(),
            deadline_ms: None,
            deadline_s: None,
        }
    }
}

impl RequestSpec {
    /// Parses one request line, strictly: unknown keys, a wrong `schema_version`, and
    /// type mismatches are all errors.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] naming the offending path and constraint.
    pub fn from_json(v: &Json) -> Result<Self, SpecError> {
        let path = "request";
        let obj = Obj::new(
            v,
            path,
            &[
                "schema_version",
                "id",
                "scenario",
                "seed",
                "arm",
                "solver",
                "deadline_ms",
                "deadline_s",
            ],
        )?;
        let version = obj.u64("schema_version")?;
        if version != REQUEST_SCHEMA_VERSION {
            return Err(SpecError::invalid(
                obj.path_of("schema_version"),
                format!(
                    "unsupported version {version} (this build speaks {REQUEST_SCHEMA_VERSION})"
                ),
            ));
        }
        let id = obj.opt_str("id")?.map(str::to_string);
        if let Some(id) = &id {
            if id.len() > MAX_ID_BYTES {
                return Err(SpecError::invalid(
                    obj.path_of("id"),
                    format!("at most {MAX_ID_BYTES} bytes (got {})", id.len()),
                ));
            }
        }
        let scenario = match obj.get("scenario") {
            Some(patch) => ScenarioSpec::from_json(patch, &obj.path_of("scenario"))?,
            None => ScenarioSpec::default(),
        };
        scenario.validate(&obj.path_of("scenario"))?;
        let seed = obj.opt_u64("seed")?.unwrap_or(0);
        if seed > MAX_EXACT_INT {
            return Err(SpecError::invalid(
                obj.path_of("seed"),
                "must stay within the exact JSON integer range (2^53)",
            ));
        }
        let arm = match obj.get("arm") {
            Some(arm) => ArmSpec::from_json(arm, &obj.path_of("arm"))?,
            None => RequestSpec::default().arm,
        };
        let solver = match obj.get("solver") {
            Some(solver) => SolverSpec::from_json(solver, &obj.path_of("solver"))?,
            None => SolverSpec::default(),
        };
        let deadline_ms = obj.opt_u64("deadline_ms")?;
        if deadline_ms == Some(0) {
            return Err(SpecError::invalid(obj.path_of("deadline_ms"), "must be at least 1"));
        }
        let deadline_s = obj.opt_f64("deadline_s")?;
        if let Some(t) = deadline_s {
            if !(t.is_finite() && t > 0.0) {
                return Err(SpecError::invalid(
                    obj.path_of("deadline_s"),
                    "must be a positive finite number of seconds",
                ));
            }
        }
        let needs_axis_deadline = matches!(
            arm.kind,
            ArmKind::CommOnly
                | ArmKind::CompOnly
                | ArmKind::DeadlineProposed { deadline: crate::spec::DeadlineSpec::Axis }
        );
        if needs_axis_deadline && deadline_s.is_none() {
            return Err(SpecError::invalid(
                path,
                "this arm kind optimizes under a completion-time deadline; \
                 set `deadline_s`",
            ));
        }
        Ok(Self { id, scenario, seed, arm, solver, deadline_ms, deadline_s })
    }

    /// Parses one request line from its textual form.
    ///
    /// # Errors
    ///
    /// The JSON syntax error or the [`Self::from_json`] validation error, as a string.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("malformed JSON: {e}"))?;
        Self::from_json(&v).map_err(|e| e.to_string())
    }

    /// The canonical solve-relevant JSON of this request: everything that influences
    /// the solver's answer, nothing that does not (`id` and `deadline_ms` are
    /// excluded — a correlation id or wall-clock budget does not change the fixed
    /// point the solve converges to).
    pub fn canonical_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("schema_version".to_string(), Json::uint(REQUEST_SCHEMA_VERSION)),
            ("seed".to_string(), Json::uint(self.seed)),
        ];
        if !self.scenario.is_empty() {
            members.push(("scenario".to_string(), self.scenario.to_json()));
        }
        members.push(("arm".to_string(), self.arm.to_json()));
        members.push(("solver".to_string(), self.solver.to_json()));
        if let Some(t) = self.deadline_s {
            members.push(("deadline_s".to_string(), Json::Num(t)));
        }
        Json::Obj(members)
    }

    /// FNV-1a fingerprint of [`Self::canonical_json`] — the warm-start cache key: two
    /// requests with equal fingerprints solve the same problem, so carrying warm state
    /// from one to the other is the PR 4 fast path, not a correctness risk.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_64(self.canonical_json().to_compact_string().as_bytes())
    }
}

// ---------------------------------------------------------------------------
// Options and statistics
// ---------------------------------------------------------------------------

/// Configuration of one serving session.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool size (each worker owns one hot [`fedopt_core::SolverWorkspace`]).
    pub workers: usize,
    /// Bounded admission-queue depth per worker; a full queue sheds.
    pub queue_depth: usize,
    /// Session-wide wall-clock budget per request, milliseconds. A request's own
    /// `deadline_ms` wins over this.
    pub deadline_ms: Option<u64>,
    /// Consecutive warm-cache hits before a warm-vs-cold drift check runs.
    pub warm_staleness: u64,
    /// Whether responses carry a `latency_us` member. Off by default: wall-clock
    /// readings in the payload break byte-identical replay.
    pub timing: bool,
    /// Warm-start override. `None` consults [`crate::engine::WARM_START_ENV`] and
    /// defaults to enabled — the whole point of a long-lived workspace.
    pub warm_start: Option<bool>,
    /// Chaos plan for this session (only serve-side kinds fire; see [`crate::fault`]).
    pub fault: Option<FaultPlan>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: DEFAULT_WORKERS,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            deadline_ms: None,
            warm_staleness: DEFAULT_WARM_STALENESS,
            timing: false,
            warm_start: None,
            fault: None,
        }
    }
}

/// Counters of one serving session (or the merge of a socket's sessions).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Non-blank request lines read.
    pub requests: u64,
    /// Responses with `status: "ok"`.
    pub ok: u64,
    /// Responses with `status: "degraded"` (deadline miss, infeasible, non-finite,
    /// worker panic).
    pub degraded: u64,
    /// Responses with `status: "shed"` (admission queue full).
    pub shed: u64,
    /// Responses with `status: "invalid"` (malformed or oversized request line).
    pub invalid: u64,
    /// Worker workspaces quarantined and rebuilt (panic, non-finite solve, or warm
    /// drift beyond tolerance).
    pub worker_restarts: u64,
    /// Requests that reused a worker's warm state (fingerprint match).
    pub warm_hits: u64,
    /// Requests that reset the warm state (fingerprint change or first request).
    pub warm_misses: u64,
    /// Staleness refreshes: warm probe + cold re-solve + drift check.
    pub warm_refreshes: u64,
    /// Refreshes whose warm-vs-cold drift exceeded `outer_tol` (each also quarantines).
    pub warm_drift_resets: u64,
    /// Per-response service latencies, microseconds (admission to response for shed
    /// and invalid, pickup to response for solved requests).
    pub latencies_us: Vec<u64>,
}

impl ServeStats {
    /// Folds another session's counters into this one (unix-socket serving merges the
    /// per-connection sessions).
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.invalid += other.invalid;
        self.worker_restarts += other.worker_restarts;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
        self.warm_refreshes += other.warm_refreshes;
        self.warm_drift_resets += other.warm_drift_resets;
        self.latencies_us.extend_from_slice(&other.latencies_us);
    }

    /// The `p`-th latency percentile in microseconds (nearest-rank on a sorted copy);
    /// 0 when no latencies were recorded.
    pub fn percentile_us(&self, p: u64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as u64 - 1) * p) / 100;
        sorted[idx as usize]
    }

    /// The final stderr line of a drained session: every counter plus p50/p99 latency.
    pub fn summary_line(&self) -> String {
        format!(
            "{STATS_PREFIX} requests={} ok={} degraded={} shed={} invalid={} \
             worker_restarts={} warm_hits={} warm_misses={} warm_refreshes={} \
             warm_drift_resets={} p50_us={} p99_us={}",
            self.requests,
            self.ok,
            self.degraded,
            self.shed,
            self.invalid,
            self.worker_restarts,
            self.warm_hits,
            self.warm_misses,
            self.warm_refreshes,
            self.warm_drift_resets,
            self.percentile_us(50),
            self.percentile_us(99),
        )
    }
}

// ---------------------------------------------------------------------------
// Drain flag
// ---------------------------------------------------------------------------

static DRAIN: AtomicBool = AtomicBool::new(false);

/// The process-global drain flag the CLI session polls: once set, the serving loop
/// stops admitting requests, finishes what is in flight, and exits cleanly.
pub fn drain_flag() -> &'static AtomicBool {
    &DRAIN
}

/// Requests a graceful drain of the process-global serving session. Async-signal-safe
/// (one atomic store), so a SIGTERM handler may call it directly.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// The serving session
// ---------------------------------------------------------------------------

/// One admitted unit of work.
struct Job {
    seq: u64,
    req: RequestSpec,
}

/// What one handled request contributed to the session counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    Degraded,
}

/// Everything a worker thread owns across requests: the hot workspace plus the
/// warm-cache bookkeeping that decides when its carried state is reused, refreshed or
/// quarantined.
struct WorkerState {
    workspace: SolverWorkspace,
    last_fingerprint: Option<u64>,
    warm_streak: u64,
}

impl WorkerState {
    fn new() -> Self {
        Self { workspace: SolverWorkspace::new(), last_fingerprint: None, warm_streak: 0 }
    }
}

/// How a request interacted with its worker's warm-start cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarmLabel {
    Off,
    Hit,
    Miss,
    Refresh,
}

impl WarmLabel {
    fn as_str(self) -> &'static str {
        match self {
            WarmLabel::Off => "off",
            WarmLabel::Hit => "hit",
            WarmLabel::Miss => "miss",
            WarmLabel::Refresh => "refresh",
        }
    }
}

/// Runs one serving session: reads request lines from `input` until EOF or `drain`,
/// writes one response line per request to `output` (in request order, flushed per
/// line), and returns the session counters. The caller decides what to do with the
/// stats (the CLI prints [`ServeStats::summary_line`] on stderr).
///
/// # Errors
///
/// Only transport I/O errors (reading `input`, writing `output`). Request-level
/// problems are typed responses, never `Err`.
pub fn serve_session<R: BufRead, W: Write + Send>(
    mut input: R,
    output: W,
    opts: &ServeOptions,
    drain: &AtomicBool,
) -> io::Result<ServeStats> {
    let workers = opts.workers.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let warm_enabled = opts.warm_start.or_else(warm_start_env).unwrap_or(true);
    let stats = Mutex::new(ServeStats::default());
    let eof = AtomicBool::new(false);
    let flood_engaged = AtomicBool::new(false);

    let io_result: io::Result<()> = std::thread::scope(|scope| {
        let (out_tx, out_rx) = channel::<(u64, String)>();

        // Writer: reorders worker responses back into request order and owns `output`.
        let writer = scope.spawn(move || -> io::Result<()> {
            let mut output = output;
            let mut next_seq = 0u64;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            while let Ok((seq, line)) = out_rx.recv() {
                pending.insert(seq, line);
                while let Some(line) = pending.remove(&next_seq) {
                    output.write_all(line.as_bytes())?;
                    output.write_all(b"\n")?;
                    output.flush()?;
                    next_seq += 1;
                }
            }
            debug_assert!(pending.is_empty(), "response stream ended with a sequence gap");
            Ok(())
        });

        let mut job_txs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = sync_channel::<Job>(queue_depth);
            job_txs.push(job_tx);
            let out_tx = out_tx.clone();
            let stats = &stats;
            let eof = &eof;
            let flood_engaged = &flood_engaged;
            scope.spawn(move || {
                let mut state = WorkerState::new();
                while let Ok(job) = job_rx.recv() {
                    let (line, outcome, latency_us) =
                        handle_job(&job, &mut state, opts, warm_enabled, eof, flood_engaged, stats);
                    let mut guard = stats.lock().expect("serve stats lock poisoned");
                    match outcome {
                        Outcome::Ok => guard.ok += 1,
                        Outcome::Degraded => guard.degraded += 1,
                    }
                    guard.latencies_us.push(latency_us);
                    drop(guard);
                    // A send error means the writer (and session) is gone; exit quietly.
                    if out_tx.send((job.seq, line)).is_err() {
                        break;
                    }
                }
            });
        }

        // Reader (this thread): admission control.
        let mut seq = 0u64;
        let mut line = String::new();
        loop {
            if drain.load(Ordering::SeqCst) {
                break;
            }
            line.clear();
            if input.read_line(&mut line)? == 0 {
                break;
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            let this_seq = seq;
            seq += 1;
            {
                let mut guard = stats.lock().expect("serve stats lock poisoned");
                guard.requests += 1;
            }
            let admitted_at = Instant::now();
            if line.len() > MAX_REQUEST_BYTES {
                let error = format!(
                    "request line exceeds {MAX_REQUEST_BYTES} bytes ({} bytes)",
                    line.len()
                );
                reject(this_seq, None, "invalid", &error, opts, admitted_at, &stats, &out_tx);
                continue;
            }
            let req = match RequestSpec::from_json_str(text) {
                Ok(req) => req,
                Err(error) => {
                    // Best effort: echo the id even from an invalid request, if the
                    // line parsed as JSON at all.
                    let id = Json::parse(text)
                        .ok()
                        .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_string)))
                        .filter(|id| id.len() <= MAX_ID_BYTES);
                    reject(this_seq, id, "invalid", &error, opts, admitted_at, &stats, &out_tx);
                    continue;
                }
            };
            let worker = (this_seq % workers as u64) as usize;
            match job_txs[worker].try_send(Job { seq: this_seq, req }) {
                Ok(()) => {
                    // Deterministic flooding: once the flood-target request is admitted,
                    // wait until its worker has *dequeued* it (and wedged), so how many
                    // follow-up requests fit the queue never depends on scheduling.
                    if opts.fault.is_some_and(|p| {
                        p.kind == FaultKind::FloodRequest && p.applies_to_request(this_seq)
                    }) {
                        let patience = Instant::now() + Duration::from_secs(5);
                        while !flood_engaged.load(Ordering::SeqCst) && Instant::now() < patience {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
                Err(TrySendError::Full(job)) => {
                    let error = format!(
                        "admission queue full (worker {worker}, depth {queue_depth}); \
                         request shed"
                    );
                    reject(
                        job.seq,
                        job.req.id.clone(),
                        "shed",
                        &error,
                        opts,
                        admitted_at,
                        &stats,
                        &out_tx,
                    );
                }
                Err(TrySendError::Disconnected(job)) => {
                    // The worker thread is gone — only possible when the session is
                    // tearing down; answer shed rather than dropping the request.
                    reject(
                        job.seq,
                        job.req.id.clone(),
                        "shed",
                        "worker unavailable; request shed",
                        opts,
                        admitted_at,
                        &stats,
                        &out_tx,
                    );
                }
            }
        }

        // Drain: release any flood wedge, stop admission, let in-flight work finish.
        eof.store(true, Ordering::SeqCst);
        drop(job_txs);
        drop(out_tx);
        match writer.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("serve writer thread panicked")),
        }
    });
    io_result?;
    Ok(stats.into_inner().expect("serve stats lock poisoned"))
}

/// Builds and enqueues a reader-side rejection response (`shed` or `invalid`).
#[allow(clippy::too_many_arguments)] // private plumbing shared by three call sites
fn reject(
    seq: u64,
    id: Option<String>,
    status: &str,
    error: &str,
    opts: &ServeOptions,
    admitted_at: Instant,
    stats: &Mutex<ServeStats>,
    out_tx: &Sender<(u64, String)>,
) {
    let latency_us = admitted_at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let mut members: Vec<(String, Json)> = vec![
        ("schema_version".to_string(), Json::uint(RESPONSE_SCHEMA_VERSION)),
        ("kind".to_string(), Json::Str(RESPONSE_KIND.to_string())),
        ("seq".to_string(), Json::uint(seq)),
    ];
    if let Some(id) = id {
        members.push(("id".to_string(), Json::Str(id)));
    }
    members.push(("status".to_string(), Json::Str(status.to_string())));
    members.push(("error".to_string(), Json::Str(error.to_string())));
    if opts.timing {
        members.push(("latency_us".to_string(), Json::uint(latency_us)));
    }
    let mut guard = stats.lock().expect("serve stats lock poisoned");
    match status {
        "shed" => guard.shed += 1,
        _ => guard.invalid += 1,
    }
    guard.latencies_us.push(latency_us);
    drop(guard);
    let _ = out_tx.send((seq, Json::Obj(members).to_compact_string()));
}

/// One solved request's payload, extracted from the workspace before any quarantine.
struct SolveOutput {
    cell: Option<CellOutput>,
    allocation: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
    counters: fedopt_core::SolveCounters,
}

/// Handles one admitted request on its worker thread: fault injection, warm-cache
/// bookkeeping, the (panic-isolated) solve, staleness refresh, and response assembly.
/// Returns the response line, the outcome counter to bump, and the service latency.
fn handle_job(
    job: &Job,
    state: &mut WorkerState,
    opts: &ServeOptions,
    warm_enabled: bool,
    eof: &AtomicBool,
    flood_engaged: &AtomicBool,
    stats: &Mutex<ServeStats>,
) -> (String, Outcome, u64) {
    let picked_up = Instant::now();
    let req = &job.req;
    let deadline_ms = req.deadline_ms.or(opts.deadline_ms);
    // The budget is anchored at pickup, *before* fault injection: an injected stall
    // (slowreq) then deterministically exhausts it, which is exactly the failure the
    // watchdog exists for.
    let budget = deadline_ms.map(|ms| picked_up + Duration::from_millis(ms));
    let fault = opts.fault.filter(|p| p.applies_to_request(job.seq));
    let mut poison = false;
    if let Some(plan) = fault {
        match plan.kind {
            FaultKind::SlowRequest => {
                // Sleep just past the budget (or a fixed stall with no budget set).
                let stall = deadline_ms.map_or(300, |ms| ms + 250);
                std::thread::sleep(Duration::from_millis(stall));
            }
            FaultKind::PoisonRequest => poison = true,
            FaultKind::FloodRequest => {
                flood_engaged.store(true, Ordering::SeqCst);
                while !eof.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            _ => {}
        }
    }

    // Warm-cache bookkeeping (per worker: round-robin dispatch makes the worker, and
    // therefore the cache state seen, a pure function of the request index).
    let fingerprint = req.fingerprint();
    let mut label = WarmLabel::Off;
    if warm_enabled {
        if state.last_fingerprint == Some(fingerprint) {
            state.warm_streak += 1;
            if state.warm_streak >= opts.warm_staleness.max(1) {
                label = WarmLabel::Refresh;
                state.warm_streak = 0;
            } else {
                label = WarmLabel::Hit;
            }
        } else {
            label = WarmLabel::Miss;
            state.workspace.reset_warm_start();
            state.last_fingerprint = Some(fingerprint);
            state.warm_streak = 0;
        }
    }

    let config = req.solver.resolve();
    let mut quarantine = false;
    let mut drift_reset = false;
    type SolveAttempt = Result<SolveOutput, (CoreError, fedopt_core::SolveCounters)>;
    let solved: Result<SolveAttempt, String> =
        panic::catch_unwind(AssertUnwindSafe(|| -> SolveAttempt {
            if poison {
                panic!("injected fault: poisoned request");
            }
            // On a cache hit (and on the refresh's warm probe) the fingerprint proves
            // the carried workspace state belongs to this very problem, so the solve may
            // re-open at the carried best allocation — the 0-Jong-iteration fast path.
            let continue_warm = matches!(label, WarmLabel::Hit | WarmLabel::Refresh);
            let mut output =
                evaluate_request(req, warm_enabled, continue_warm, &mut state.workspace, budget)?;
            if label == WarmLabel::Refresh {
                // Staleness check: re-solve genuinely cold (no carried state, no
                // continuation) and answer with the cold result; the warm probe is only
                // evidence for the drift verdict.
                let warm_cell = output.cell;
                state.workspace.reset_warm_start();
                output = evaluate_request(req, warm_enabled, false, &mut state.workspace, budget)?;
                let drift = match (warm_cell, output.cell) {
                    (Some(w), Some(c)) => {
                        rel_diff(w.energy_j, c.energy_j).max(rel_diff(w.time_s, c.time_s))
                    }
                    (None, None) => 0.0,
                    // Warm and cold disagree on feasibility itself: maximal drift.
                    _ => f64::INFINITY,
                };
                // NaN drift (a non-finite cell slipping through) counts as drifted.
                if drift.is_nan() || drift > config.outer_tol {
                    drift_reset = true;
                }
            }
            Ok(output)
        }))
        .map_err(|payload| panic_message(payload.as_ref()));

    let (status, outcome, extras) = match solved {
        Ok(Ok(output)) => {
            if drift_reset {
                quarantine = true;
            }
            match output.cell {
                Some(cell) => ("ok", Outcome::Ok, ResponseExtras::Solved { cell, output }),
                None => {
                    // The arm reported "no feasible answer". A non-finite-objective
                    // degradation leaves its mark in `degraded_solves`; that is
                    // workspace-corruption territory, unlike a cleanly infeasible
                    // deadline.
                    let non_finite = output.counters.degraded_solves > 0;
                    if non_finite {
                        quarantine = true;
                    }
                    let reason = if non_finite {
                        "no finite objective within the iteration budget; \
                         workspace quarantined and respawned"
                            .to_string()
                    } else {
                        "infeasible request: no resource allocation meets the deadline".to_string()
                    };
                    ("degraded", Outcome::Degraded, ResponseExtras::Degraded { reason, output })
                }
            }
        }
        Ok(Err((e, delta))) => {
            let reason = match &e {
                CoreError::DeadlineExpired { iterations } => {
                    format!("request deadline expired after {iterations} outer iteration(s)")
                }
                other => other.to_string(),
            };
            (
                "degraded",
                Outcome::Degraded,
                ResponseExtras::Degraded {
                    reason,
                    output: SolveOutput { cell: None, allocation: None, counters: delta },
                },
            )
        }
        Err(panic_msg) => {
            quarantine = true;
            // A panic may have fired mid-solve; no per-request delta is attributable.
            let unknown = fedopt_core::SolveCounters::default();
            (
                "degraded",
                Outcome::Degraded,
                ResponseExtras::Degraded {
                    reason: format!(
                        "worker panicked ({panic_msg}); workspace quarantined and respawned"
                    ),
                    output: SolveOutput { cell: None, allocation: None, counters: unknown },
                },
            )
        }
    };

    if quarantine {
        state.workspace.quarantine_reset();
        state.last_fingerprint = None;
        state.warm_streak = 0;
    }
    {
        let mut guard = stats.lock().expect("serve stats lock poisoned");
        match label {
            WarmLabel::Hit => guard.warm_hits += 1,
            WarmLabel::Miss => guard.warm_misses += 1,
            WarmLabel::Refresh => guard.warm_refreshes += 1,
            WarmLabel::Off => {}
        }
        if drift_reset {
            guard.warm_drift_resets += 1;
        }
        if quarantine {
            guard.worker_restarts += 1;
        }
    }

    let latency_us = picked_up.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let line = render_response(job, status, label, extras, opts, latency_us, req);
    (line, outcome, latency_us)
}

/// Per-status response payload handed to [`render_response`].
enum ResponseExtras {
    Solved { cell: CellOutput, output: SolveOutput },
    Degraded { reason: String, output: SolveOutput },
}

fn render_response(
    job: &Job,
    status: &str,
    label: WarmLabel,
    extras: ResponseExtras,
    opts: &ServeOptions,
    latency_us: u64,
    req: &RequestSpec,
) -> String {
    let mut members: Vec<(String, Json)> = vec![
        ("schema_version".to_string(), Json::uint(RESPONSE_SCHEMA_VERSION)),
        ("kind".to_string(), Json::Str(RESPONSE_KIND.to_string())),
        ("seq".to_string(), Json::uint(job.seq)),
    ];
    if let Some(id) = &req.id {
        members.push(("id".to_string(), Json::Str(id.clone())));
    }
    members.push(("status".to_string(), Json::Str(status.to_string())));
    match extras {
        ResponseExtras::Solved { cell, output } => {
            members.push(("energy_j".to_string(), Json::Num(cell.energy_j)));
            members.push(("time_s".to_string(), Json::Num(cell.time_s)));
            if let ArmKind::Proposed { weights } = &req.arm.kind {
                let objective = weights.energy() * cell.energy_j + weights.time() * cell.time_s;
                members.push(("objective".to_string(), Json::Num(objective)));
            }
            if let Some((powers, freqs, bands)) = output.allocation {
                members.push((
                    "allocation".to_string(),
                    Json::Obj(vec![
                        (
                            "powers_w".to_string(),
                            Json::Arr(powers.into_iter().map(Json::Num).collect()),
                        ),
                        (
                            "frequencies_hz".to_string(),
                            Json::Arr(freqs.into_iter().map(Json::Num).collect()),
                        ),
                        (
                            "bandwidths_hz".to_string(),
                            Json::Arr(bands.into_iter().map(Json::Num).collect()),
                        ),
                    ]),
                ));
            }
            members.push(("warm".to_string(), Json::Str(label.as_str().to_string())));
            members.push(("counters".to_string(), counters_json(&output.counters)));
        }
        ResponseExtras::Degraded { reason, output } => {
            members.push(("reason".to_string(), Json::Str(reason)));
            members.push(("warm".to_string(), Json::Str(label.as_str().to_string())));
            members.push(("counters".to_string(), counters_json(&output.counters)));
        }
    }
    if opts.timing {
        members.push(("latency_us".to_string(), Json::uint(latency_us)));
    }
    Json::Obj(members).to_compact_string()
}

/// The response's `counters` member — the *delta* this request contributed, mirroring
/// the gating of the sweep report writer (`degraded_solves` only when non-zero).
fn counters_json(c: &fedopt_core::SolveCounters) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("outer_iterations".to_string(), Json::uint(c.outer_iterations)),
        ("jong_iterations".to_string(), Json::uint(c.jong_iterations)),
        ("kkt_solves".to_string(), Json::uint(c.kkt_solves)),
        ("mu_bisect_evals".to_string(), Json::uint(c.mu_bisect_evals)),
        ("sp2_fast_path_hits".to_string(), Json::uint(c.sp2_fast_path_hits)),
    ];
    if c.degraded_solves > 0 {
        members.push(("degraded_solves".to_string(), Json::uint(c.degraded_solves)));
    }
    Json::Obj(members)
}

/// Evaluates one request against a workspace: compiles the arm, builds the scenario,
/// and solves under the optional wall-clock budget. The returned counters are the
/// *delta* of this evaluation — captured before any quarantine can zero the
/// workspace's cumulative counters ([`fedopt_core::SolveCounters::since`] underflows
/// after a reset).
fn evaluate_request(
    req: &RequestSpec,
    warm_enabled: bool,
    continue_warm: bool,
    ws: &mut SolverWorkspace,
    budget: Option<Instant>,
) -> Result<SolveOutput, (CoreError, fedopt_core::SolveCounters)> {
    let config = req.solver.resolve();
    let arm = req.arm.instantiate(config);
    let template = req.scenario.apply(ScenarioBuilder::paper_default());
    let builder = arm.prepare(&template);
    let scenario = builder
        .build(req.seed)
        .map_err(|e| (CoreError::Model(e), fedopt_core::SolveCounters::default()))?;
    let before = ws.counters;
    ws.solve_deadline = budget;
    let mut ctx = CellContext {
        x: req.deadline_s.unwrap_or(0.0),
        seed: req.seed,
        stream_seed: derive_stream_seed(req.seed),
        point_idx: 0,
        arm_idx: 0,
        warm_start: warm_enabled,
        superlinear_mu: config.superlinear_mu,
        adaptive_mu_bracket: config.adaptive_mu_bracket,
        outer_continuation: continue_warm,
        workspace: ws,
    };
    let result = arm.evaluate(&scenario, &mut ctx);
    ws.solve_deadline = None;
    let counters = ws.counters.since(&before);
    let cell = result.map_err(|e| (e, counters))?;
    // `ws.best` holds the returned solution only for the summary-solving schemes.
    let allocation = match (&req.arm.kind, cell) {
        (ArmKind::Proposed { .. } | ArmKind::DeadlineProposed { .. }, Some(_)) => Some((
            ws.best.powers_w.clone(),
            ws.best.frequencies_hz.clone(),
            ws.best.bandwidths_hz.clone(),
        )),
        _ => None,
    };
    Ok(SolveOutput { cell, allocation, counters })
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / scale
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Unix-socket transport
// ---------------------------------------------------------------------------

/// Serves sequential connections on a unix domain socket until [`drain_flag`] is set:
/// each connection is one [`serve_session`] (its own request sequence and fault
/// indices); the returned stats are the merge over all connections. The socket file is
/// created on bind (a stale one is removed first) and removed on clean exit.
///
/// # Errors
///
/// Binding, accepting, or a session's transport I/O.
#[cfg(unix)]
pub fn serve_unix_socket(
    path: &std::path::Path,
    opts: &ServeOptions,
    drain: &AtomicBool,
) -> io::Result<ServeStats> {
    use std::os::unix::net::UnixListener;
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let mut total = ServeStats::default();
    loop {
        if drain.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let reader = io::BufReader::new(stream.try_clone()?);
                let session = serve_session(reader, stream, opts, drain)?;
                total.merge(&session);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_session(input: &str, opts: &ServeOptions) -> (Vec<Json>, String, ServeStats) {
        let drain = AtomicBool::new(false);
        let mut out: Vec<u8> = Vec::new();
        let stats = serve_session(input.as_bytes(), &mut out, opts, &drain).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines = text
            .lines()
            .map(|l| Json::parse(l).expect("every response line must be valid JSON"))
            .collect();
        (lines, text, stats)
    }

    fn small_request(id: &str, seed: u64) -> String {
        format!(
            "{{\"schema_version\":1,\"id\":\"{id}\",\"scenario\":{{\"devices\":5}},\
             \"seed\":{seed},\"solver\":{{\"preset\":\"fast\"}}}}"
        )
    }

    fn status_of(v: &Json) -> &str {
        v.get("status").and_then(Json::as_str).unwrap()
    }

    fn one_worker() -> ServeOptions {
        ServeOptions { workers: 1, warm_start: Some(true), ..ServeOptions::default() }
    }

    #[test]
    fn request_parsing_is_strict_and_round_trips() {
        let req = RequestSpec::from_json_str(&small_request("r-1", 7)).unwrap();
        assert_eq!(req.id.as_deref(), Some("r-1"));
        assert_eq!(req.seed, 7);
        assert_eq!(req.scenario.devices, Some(5));
        // The fingerprint keys the solve, not the correlation metadata.
        let mut twin = req.clone();
        twin.id = Some("different-id".to_string());
        twin.deadline_ms = Some(1000);
        assert_eq!(req.fingerprint(), twin.fingerprint());
        let mut other_seed = req.clone();
        other_seed.seed = 8;
        assert_ne!(req.fingerprint(), other_seed.fingerprint());

        for bad in [
            // Unknown key.
            "{\"schema_version\":1,\"bogus\":1}",
            // Wrong version.
            "{\"schema_version\":2}",
            // Missing version.
            "{\"seed\":1}",
            // Deadline-reading arm without deadline_s.
            "{\"schema_version\":1,\"arm\":{\"kind\":\"comm_only\"}}",
            // Zero deadline budget.
            "{\"schema_version\":1,\"deadline_ms\":0}",
            // Non-positive axis deadline.
            "{\"schema_version\":1,\"deadline_s\":0}",
            // Not an object.
            "[1,2,3]",
            // Not JSON at all.
            "hello",
        ] {
            assert!(RequestSpec::from_json_str(bad).is_err(), "{bad:?} must be rejected");
        }
        // A deadline arm with deadline_s is fine.
        RequestSpec::from_json_str(
            "{\"schema_version\":1,\"arm\":{\"kind\":\"comm_only\"},\"deadline_s\":150}",
        )
        .unwrap();
    }

    #[test]
    fn a_session_answers_every_request_in_order_and_byte_stably() {
        let input = format!(
            "{}\n{}\nnot json at all\n\n{}\n",
            small_request("a", 0),
            small_request("a", 0), // identical → warm hit on the single worker
            small_request("b", 3),
        );
        let (lines, text, stats) = run_session(&input, &one_worker());
        assert_eq!(lines.len(), 4, "blank lines get no response, everything else does");
        let statuses: Vec<&str> = lines.iter().map(status_of).collect();
        assert_eq!(statuses, ["ok", "ok", "invalid", "ok"]);
        for (i, v) in lines.iter().enumerate() {
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(v.get("kind").and_then(Json::as_str), Some(RESPONSE_KIND));
        }
        // The duplicate request reuses the warm state, and the PR 4 fast path resolves
        // it without a single Jong iteration.
        assert_eq!(lines[1].get("warm").and_then(Json::as_str), Some("hit"));
        let jong =
            lines[1].get("counters").and_then(|c| c.get("jong_iterations")).and_then(Json::as_u64);
        assert_eq!(jong, Some(0), "a warm cache hit must solve with 0 Jong iterations");
        // Warm and cold answers agree within the solver tolerance.
        let warm = lines[1].get("energy_j").and_then(Json::as_f64).unwrap();
        let cold = lines[0].get("energy_j").and_then(Json::as_f64).unwrap();
        // Agreement is bounded by the solver's own tolerance (fast preset: 1e-3).
        assert!(rel_diff(warm, cold) <= 1e-3, "warm {warm} vs cold {cold}");
        // An `ok` proposed response carries the allocation vectors.
        let alloc = lines[0].get("allocation").unwrap();
        assert_eq!(alloc.get("powers_w").and_then(Json::as_array).unwrap().len(), 5);

        assert_eq!(stats.requests, 4);
        assert_eq!((stats.ok, stats.invalid, stats.shed), (3, 1, 0));
        assert_eq!((stats.warm_misses, stats.warm_hits), (2, 1));
        assert_eq!(stats.latencies_us.len(), 4);

        // Identical request stream → byte-identical response stream.
        let (_, replay, _) = run_session(&input, &one_worker());
        assert_eq!(text, replay);
    }

    #[test]
    fn a_flooded_worker_sheds_deterministically() {
        let opts = ServeOptions {
            workers: 1,
            queue_depth: 1,
            fault: Some(FaultPlan::parse("floodreq@0").unwrap()),
            warm_start: Some(true),
            ..ServeOptions::default()
        };
        let one = small_request("f", 0);
        let input = format!("{one}\n{one}\n{one}\n{one}\n");
        let (lines, _, stats) = run_session(&input, &opts);
        let statuses: Vec<&str> = lines.iter().map(status_of).collect();
        // Request 0 wedges the worker until EOF, request 1 fills the depth-1 queue,
        // requests 2 and 3 are shed; at EOF the wedge releases and 0 and 1 solve.
        assert_eq!(statuses, ["ok", "ok", "shed", "shed"]);
        assert_eq!((stats.ok, stats.shed), (2, 2));
        assert!(lines[2].get("error").and_then(Json::as_str).unwrap().contains("queue full"));
    }

    #[test]
    fn a_poisoned_request_quarantines_only_its_worker() {
        let opts = ServeOptions {
            workers: 1,
            fault: Some(FaultPlan::parse("poisonreq@0").unwrap()),
            warm_start: Some(true),
            ..ServeOptions::default()
        };
        let input = format!("{}\n{}\n", small_request("p", 0), small_request("p", 1));
        let (lines, _, stats) = run_session(&input, &opts);
        let statuses: Vec<&str> = lines.iter().map(status_of).collect();
        assert_eq!(statuses, ["degraded", "ok"], "the worker must keep serving after quarantine");
        let reason = lines[0].get("reason").and_then(Json::as_str).unwrap();
        assert!(reason.contains("worker panicked"), "{reason}");
        assert!(reason.contains("quarantined"), "{reason}");
        assert_eq!(stats.worker_restarts, 1);
        assert_eq!((stats.ok, stats.degraded), (1, 1));
    }

    #[test]
    fn a_slow_request_misses_its_deadline_as_a_typed_degradation() {
        let opts = ServeOptions {
            workers: 1,
            fault: Some(FaultPlan::parse("slowreq@0").unwrap()),
            warm_start: Some(true),
            ..ServeOptions::default()
        };
        let line = "{\"schema_version\":1,\"scenario\":{\"devices\":5},\
                    \"solver\":{\"preset\":\"fast\"},\"deadline_ms\":50}";
        let input = format!("{line}\n");
        let (lines, _, stats) = run_session(&input, &opts);
        assert_eq!(status_of(&lines[0]), "degraded");
        let reason = lines[0].get("reason").and_then(Json::as_str).unwrap();
        assert!(reason.contains("deadline expired"), "{reason}");
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.worker_restarts, 0, "a deadline miss is not workspace corruption");
    }

    #[test]
    fn warm_state_is_refreshed_on_schedule_and_drift_checked() {
        let opts = ServeOptions { warm_staleness: 2, ..one_worker() };
        let one = small_request("w", 0);
        let input = format!("{one}\n{one}\n{one}\n{one}\n");
        let (lines, _, stats) = run_session(&input, &opts);
        let labels: Vec<&str> =
            lines.iter().map(|v| v.get("warm").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(labels, ["miss", "hit", "refresh", "hit"]);
        assert_eq!(stats.warm_refreshes, 1);
        assert_eq!(stats.warm_drift_resets, 0, "a healthy warm state must pass the drift check");
        assert_eq!(stats.worker_restarts, 0);
        assert!(lines.iter().all(|v| status_of(v) == "ok"));
    }

    #[test]
    fn stats_summary_line_reports_percentiles() {
        let stats = ServeStats {
            requests: 3,
            ok: 3,
            latencies_us: vec![100, 200, 300],
            ..ServeStats::default()
        };
        assert_eq!(stats.percentile_us(50), 200);
        assert_eq!(stats.percentile_us(99), 200); // nearest-rank over 3 samples
        assert_eq!(stats.percentile_us(100), 300);
        let line = stats.summary_line();
        assert!(line.starts_with(STATS_PREFIX), "{line}");
        assert!(line.contains("requests=3"), "{line}");
        assert!(line.contains("p50_us=200"), "{line}");
        assert_eq!(ServeStats::default().percentile_us(99), 0);
    }

    #[cfg(unix)]
    #[test]
    fn the_unix_socket_transport_serves_sequential_connections() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::os::unix::net::UnixStream;
        let dir = std::env::temp_dir().join(format!("fedopt-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let drain = AtomicBool::new(false);
        let opts = one_worker();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| serve_unix_socket(&path, &opts, &drain));
            // Wait for the socket to exist, then run one connection.
            let deadline = Instant::now() + Duration::from_secs(10);
            let stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    Err(e) => panic!("socket never came up: {e}"),
                }
            };
            let mut writer = stream.try_clone().unwrap();
            writeln!(writer, "{}", small_request("s", 0)).unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let v = Json::parse(line.trim()).unwrap();
            assert_eq!(status_of(&v), "ok");
            // Closing the write half ends the session; drain ends the accept loop.
            writer.shutdown(std::net::Shutdown::Write).unwrap();
            drop(reader);
            drop(writer);
            drain.store(true, Ordering::SeqCst);
            let stats = handle.join().unwrap().unwrap();
            assert_eq!((stats.requests, stats.ok), (1, 1));
        });
        assert!(!path.exists(), "the socket file must be cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
