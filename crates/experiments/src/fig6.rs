//! Figure 6 — total energy (6a) and total delay (6b) vs the number of local iterations per
//! global round, for several global-round counts, at `w1 = w2 = 0.5`.

use crate::report::FigureReport;
use crate::sweep::average_proposed;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};

/// Configuration of the Figure-6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Numbers of local iterations `R_l` to sweep.
    pub local_iterations: Vec<u32>,
    /// Numbers of global rounds `R_g` (one series each).
    pub global_rounds: Vec<u32>,
    /// Number of devices.
    pub devices: usize,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig6Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            local_iterations: vec![10, 50, 110],
            global_rounds: vec![50, 400],
            devices: 10,
            seeds: vec![51],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: `R_l ∈ {10, 30, …, 110}`, `R_g ∈ {50, 100, 200, 300, 400}`, 50 devices.
    pub fn paper() -> Self {
        Self {
            local_iterations: vec![10, 30, 50, 70, 90, 110],
            global_rounds: vec![50, 100, 200, 300, 400],
            devices: 50,
            seeds: (0..5).collect(),
            solver: SolverConfig::default(),
        }
    }
}

/// Runs the sweep and returns `(energy report, delay report)` — Fig. 6a and Fig. 6b.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run(cfg: &Fig6Config) -> Result<(FigureReport, FigureReport), CoreError> {
    let columns: Vec<String> = cfg.global_rounds.iter().map(|rg| format!("R_g = {rg}")).collect();
    let mut energy = FigureReport::new(
        "fig6a",
        "Total energy consumption vs local iterations per round (w1 = w2 = 0.5)",
        "local iterations R_l",
        "total energy (J)",
        columns.clone(),
    );
    let mut delay = FigureReport::new(
        "fig6b",
        "Total completion time vs local iterations per round (w1 = w2 = 0.5)",
        "local iterations R_l",
        "total time (s)",
        columns,
    );

    for &rl in &cfg.local_iterations {
        let mut e_row = Vec::new();
        let mut t_row = Vec::new();
        for &rg in &cfg.global_rounds {
            let builder = ScenarioBuilder::paper_default()
                .with_devices(cfg.devices)
                .with_local_iterations(rl)
                .with_global_rounds(rg);
            let (e, t) = average_proposed(&builder, Weights::balanced(), &cfg.seeds, &cfg.solver)?;
            e_row.push(e);
            t_row.push(t);
        }
        energy.push_row(f64::from(rl), e_row);
        delay.push_row(f64::from(rl), t_row);
    }
    Ok((energy, delay))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_delay_grow_with_local_iterations_and_rounds() {
        let cfg = Fig6Config {
            local_iterations: vec![10, 90],
            global_rounds: vec![50, 400],
            devices: 6,
            seeds: vec![6],
            solver: SolverConfig::fast(),
        };
        let (energy, delay) = run(&cfg).unwrap();
        // More local iterations: both metrics grow (column-wise comparison).
        for c in 0..2 {
            assert!(energy.rows[1].1[c] > energy.rows[0].1[c]);
            assert!(delay.rows[1].1[c] > delay.rows[0].1[c]);
        }
        // More global rounds: both metrics grow (row-wise comparison).
        for r in 0..2 {
            assert!(energy.rows[r].1[1] > energy.rows[r].1[0]);
            assert!(delay.rows[r].1[1] > delay.rows[r].1[0]);
        }
    }
}
