//! Figure 6 — total energy (6a) and total delay (6b) vs the number of local iterations per
//! global round, for several global-round counts, at `w1 = w2 = 0.5`.

use crate::arms::{ConfiguredArm, ProposedArm};
use crate::engine::{SweepEngine, SweepGrid};
use crate::report::FigureReport;
use fedopt_core::{CoreError, SolverConfig};
use flsys::{ScenarioBuilder, Weights};

/// Configuration of the Figure-6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Numbers of local iterations `R_l` to sweep.
    pub local_iterations: Vec<u32>,
    /// Numbers of global rounds `R_g` (one series each).
    pub global_rounds: Vec<u32>,
    /// Number of devices.
    pub devices: usize,
    /// Scenario seeds to average over.
    pub seeds: Vec<u64>,
    /// Solver settings.
    pub solver: SolverConfig,
}

impl Fig6Config {
    /// Small preset for CI / benches.
    pub fn quick() -> Self {
        Self {
            local_iterations: vec![10, 50, 110],
            global_rounds: vec![50, 400],
            devices: 10,
            seeds: vec![51],
            solver: SolverConfig::fast(),
        }
    }

    /// The paper's setup: `R_l ∈ {10, 30, …, 110}`, `R_g ∈ {50, 100, 200, 300, 400}`,
    /// 50 devices, 100 scenario draws per point.
    pub fn paper() -> Self {
        Self {
            local_iterations: vec![10, 30, 50, 70, 90, 110],
            global_rounds: vec![50, 100, 200, 300, 400],
            devices: 50,
            seeds: (0..100).collect(),
            solver: SolverConfig::default(),
        }
    }

    /// The sweep grid: local-iteration counts as points, one proposed arm per `R_g`.
    pub fn grid(&self) -> SweepGrid {
        let mut grid = SweepGrid::new(self.seeds.clone());
        for &rl in &self.local_iterations {
            grid = grid.point(
                f64::from(rl),
                ScenarioBuilder::paper_default()
                    .with_devices(self.devices)
                    .with_local_iterations(rl),
            );
        }
        for &rg in &self.global_rounds {
            grid = grid.arm(
                ConfiguredArm::new(ProposedArm::new(Weights::balanced(), self.solver))
                    .named(format!("R_g = {rg}"))
                    .with_builder(move |b| b.with_global_rounds(rg)),
            );
        }
        grid
    }
}

/// The spec twin of [`Fig6Config::quick`]: the same sweep as a serializable
/// [`ExperimentSpec`](crate::spec::ExperimentSpec) (see [`crate::presets`]); compiled via
/// [`SweepEngine::run_spec`](crate::engine::SweepEngine::run_spec) it is bit-identical to
/// this module's imperative path.
pub fn quick_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig6(crate::presets::Variant::Quick)
}

/// The spec twin of [`Fig6Config::paper`]. Unlike the legacy config, the paper-scale
/// spec defaults the warm-start continuation on (`engine.warm_start = Some(true)`);
/// `FEDOPT_WARM_START=0` still forces it off.
pub fn paper_spec() -> crate::spec::ExperimentSpec {
    crate::presets::fig6(crate::presets::Variant::Paper)
}

/// Runs the sweep on a default engine and returns `(energy report, delay report)` —
/// Fig. 6a and Fig. 6b.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run(cfg: &Fig6Config) -> Result<(FigureReport, FigureReport), CoreError> {
    run_with_engine(cfg, &SweepEngine::new())
}

/// [`run`] on an explicit engine.
///
/// # Errors
///
/// Propagates solver errors.
pub fn run_with_engine(
    cfg: &Fig6Config,
    engine: &SweepEngine,
) -> Result<(FigureReport, FigureReport), CoreError> {
    let result = engine.run(&cfg.grid())?;
    Ok((
        result.energy_report(
            "fig6a",
            "Total energy consumption vs local iterations per round (w1 = w2 = 0.5)",
            "local iterations R_l",
        ),
        result.time_report(
            "fig6b",
            "Total completion time vs local iterations per round (w1 = w2 = 0.5)",
            "local iterations R_l",
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_delay_grow_with_local_iterations_and_rounds() {
        let cfg = Fig6Config {
            local_iterations: vec![10, 90],
            global_rounds: vec![50, 400],
            devices: 6,
            seeds: vec![6],
            solver: SolverConfig::fast(),
        };
        let (energy, delay) = run(&cfg).unwrap();
        // More local iterations: both metrics grow (column-wise comparison).
        for c in 0..2 {
            assert!(energy.rows[1].1[c] > energy.rows[0].1[c]);
            assert!(delay.rows[1].1[c] > delay.rows[0].1[c]);
        }
        // More global rounds: both metrics grow (row-wise comparison).
        for r in 0..2 {
            assert!(energy.rows[r].1[1] > energy.rows[r].1[0]);
            assert!(delay.rows[r].1[1] > delay.rows[r].1[0]);
        }
    }
}
