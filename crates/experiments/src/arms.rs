//! [`Arm`] implementations for every scheme the figures compare.
//!
//! An arm is one column of a figure: the proposed joint optimizer (weighted or
//! deadline-constrained), the random benchmark, and each `baselines` allocator. Figure
//! modules compose these into a [`crate::engine::SweepGrid`]; anything scheme-specific
//! (which builder knobs to turn, where the deadline comes from) lives here, not in the
//! engine.

use crate::engine::{Arm, CellContext, CellOutput};
use baselines::{BenchmarkAllocator, CommOnlyAllocator, CompOnlyAllocator, Scheme1Allocator};
use fedopt_core::{CoreError, JointOptimizer, SolverConfig};
use flsys::{Scenario, ScenarioBuilder, Weights};

/// Where a deadline-constrained arm reads its deadline from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineSource {
    /// The sweep point's x value is the deadline (Figure 7).
    FromX,
    /// A fixed deadline in seconds, one series per value (Figure 8).
    Fixed(f64),
}

impl DeadlineSource {
    fn deadline_s(self, ctx: &CellContext<'_>) -> f64 {
        match self {
            Self::FromX => ctx.x,
            Self::Fixed(deadline_s) => deadline_s,
        }
    }
}

/// The proposed joint optimizer at a fixed weight pair (Figures 2–6).
#[derive(Debug, Clone)]
pub struct ProposedArm {
    weights: Weights,
    solver: SolverConfig,
    name: String,
}

impl ProposedArm {
    /// Creates the arm with the paper's standard column label
    /// (`proposed w1=…,w2=…`).
    pub fn new(weights: Weights, solver: SolverConfig) -> Self {
        let name = format!("proposed w1={:.1},w2={:.1}", weights.energy(), weights.time());
        Self { weights, solver, name }
    }

    /// Overrides the column label (Figures 5 and 6 label series by N or R_g instead).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl Arm for ProposedArm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        // The optimizer is rebuilt per cell (a copy of one plain-data config — free) so the
        // engine's warm-start switch gates the solver uniformly across every arm.
        let optimizer = JointOptimizer::new(ctx.solver_config(&self.solver));
        // The summary path: bit-identical totals to `solve_with`, but the cell performs
        // zero heap allocations in steady state (everything lives in the workspace).
        match optimizer.solve_summary_with(scenario, self.weights, ctx.workspace) {
            Ok(out) => Ok(Some(CellOutput::new(out.total_energy_j, out.total_time_s))),
            // A watchdog-degraded draw is an infeasible *cell*, not a sweep abort: the
            // aggregate records it through the sample count, and the solver's
            // `degraded_solves` counter keeps it loud in the run document.
            Err(CoreError::NonFiniteObjective { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The deadline-constrained proposed optimizer (Figures 7 and 8).
///
/// An infeasible deadline for a draw is an infeasible *cell* (`Ok(None)`), not an error —
/// the aggregate records it through the sample count.
#[derive(Debug, Clone)]
pub struct DeadlineProposedArm {
    deadline: DeadlineSource,
    solver: SolverConfig,
    name: String,
}

impl DeadlineProposedArm {
    /// Creates the arm; the label defaults to `"proposed"` for [`DeadlineSource::FromX`]
    /// and `"proposed (T=…s)"` for fixed deadlines.
    pub fn new(deadline: DeadlineSource, solver: SolverConfig) -> Self {
        let name = match deadline {
            DeadlineSource::FromX => "proposed".to_string(),
            DeadlineSource::Fixed(t) => format!("proposed (T={t:.0}s)"),
        };
        Self { deadline, solver, name }
    }
}

impl Arm for DeadlineProposedArm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        let optimizer = JointOptimizer::new(ctx.solver_config(&self.solver));
        let deadline_s = self.deadline.deadline_s(ctx);
        match optimizer.solve_with_deadline_summary_in(scenario, deadline_s, ctx.workspace) {
            Ok(out) => Ok(Some(CellOutput::new(out.total_energy_j, out.total_time_s))),
            Err(CoreError::InfeasibleDeadline { .. } | CoreError::NonFiniteObjective { .. }) => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// The random benchmark of Figures 2 and 3.
///
/// Draws its random frequencies/powers from the cell's decorrelated stream seed
/// ([`CellContext::stream_seed`], see [`baselines::derive_stream_seed`]).
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkArm {
    random_frequency: bool,
}

impl BenchmarkArm {
    /// Fig. 2 variant: random CPU frequency at maximum power.
    pub fn random_frequency() -> Self {
        Self { random_frequency: true }
    }

    /// Fig. 3 variant: random transmit power at maximum frequency.
    pub fn random_power() -> Self {
        Self { random_frequency: false }
    }
}

impl Arm for BenchmarkArm {
    fn name(&self) -> String {
        "benchmark".to_string()
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        // The benchmark draws a random allocation and evaluates it once — no solver loop,
        // but the workspace still hosts the drawn allocation so the cell stays
        // allocation-free.
        let allocator = BenchmarkAllocator::new();
        let summary = if self.random_frequency {
            allocator.random_frequency_summary_with(scenario, ctx.stream_seed, ctx.workspace)?
        } else {
            allocator.random_power_summary_with(scenario, ctx.stream_seed, ctx.workspace)?
        };
        Ok(Some(CellOutput::new(summary.total_energy_j, summary.total_time_s)))
    }
}

/// Communication-only optimization under the sweep point's deadline (Figure 7).
#[derive(Debug, Clone)]
pub struct CommOnlyArm {
    solver: SolverConfig,
}

impl CommOnlyArm {
    /// Creates the arm.
    pub fn new(solver: SolverConfig) -> Self {
        Self { solver }
    }
}

impl Arm for CommOnlyArm {
    fn name(&self) -> String {
        "communication only".to_string()
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        let allocator = CommOnlyAllocator::new(ctx.solver_config(&self.solver));
        let summary = allocator.allocate_summary_with(scenario, ctx.x, ctx.workspace)?;
        Ok(Some(CellOutput::new(summary.total_energy_j, summary.total_time_s)))
    }
}

/// Computation-only optimization under the sweep point's deadline (Figure 7).
#[derive(Debug, Clone)]
pub struct CompOnlyArm {
    solver: SolverConfig,
}

impl CompOnlyArm {
    /// Creates the arm.
    pub fn new(solver: SolverConfig) -> Self {
        Self { solver }
    }
}

impl Arm for CompOnlyArm {
    fn name(&self) -> String {
        "computation only".to_string()
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        let allocator = CompOnlyAllocator::new(ctx.solver_config(&self.solver));
        let summary = allocator.allocate_summary_with(scenario, ctx.x, ctx.workspace)?;
        Ok(Some(CellOutput::new(summary.total_energy_j, summary.total_time_s)))
    }
}

/// Scheme 1 (Yang et al., IEEE TWC 2021) at a fixed deadline (Figure 8).
#[derive(Debug, Clone)]
pub struct Scheme1Arm {
    solver: SolverConfig,
    deadline_s: f64,
}

impl Scheme1Arm {
    /// Creates the arm for one deadline series.
    pub fn new(deadline_s: f64, solver: SolverConfig) -> Self {
        Self { solver, deadline_s }
    }
}

impl Arm for Scheme1Arm {
    fn name(&self) -> String {
        format!("scheme1 (T={:.0}s)", self.deadline_s)
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        let allocator = Scheme1Allocator::new(ctx.solver_config(&self.solver));
        let summary = allocator.allocate_summary_with(scenario, self.deadline_s, ctx.workspace)?;
        Ok(Some(CellOutput::new(summary.total_energy_j, summary.total_time_s)))
    }
}

/// Decorator that renames an arm and/or specialises its scenario builder — how Figures 5
/// and 6 express per-series device counts and global-round counts.
pub struct ConfiguredArm<A> {
    inner: A,
    name: Option<String>,
    configure: Box<dyn Fn(ScenarioBuilder) -> ScenarioBuilder + Send + Sync>,
}

impl<A: Arm> ConfiguredArm<A> {
    /// Wraps `inner` with an identity configuration.
    pub fn new(inner: A) -> Self {
        Self { inner, name: None, configure: Box::new(|b| b) }
    }

    /// Overrides the column label.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Applies `f` to the sweep point's builder before scenarios are drawn for this arm.
    #[must_use]
    pub fn with_builder(
        mut self,
        f: impl Fn(ScenarioBuilder) -> ScenarioBuilder + Send + Sync + 'static,
    ) -> Self {
        self.configure = Box::new(f);
        self
    }
}

impl<A: Arm> Arm for ConfiguredArm<A> {
    fn name(&self) -> String {
        self.name.clone().unwrap_or_else(|| self.inner.name())
    }

    fn prepare(&self, builder: &ScenarioBuilder) -> ScenarioBuilder {
        (self.configure)(self.inner.prepare(builder))
    }

    fn evaluate(
        &self,
        scenario: &Scenario,
        ctx: &mut CellContext<'_>,
    ) -> Result<Option<CellOutput>, CoreError> {
        self.inner.evaluate(scenario, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SweepEngine, SweepGrid};

    fn quick_grid(arm: impl Arm + 'static) -> SweepGrid {
        SweepGrid::new(vec![1u64])
            .point(12.0, ScenarioBuilder::paper_default().with_devices(5).with_p_max_dbm(12.0))
            .arm(arm)
    }

    #[test]
    fn proposed_beats_benchmark_on_average() {
        // Port of the historical sweep-helper test: the energy-leaning proposed arm beats
        // the random benchmark on mean energy over the same scenario draws.
        let solver = SolverConfig::fast();
        let grid = SweepGrid::new(vec![1u64, 2])
            .point(12.0, ScenarioBuilder::paper_default().with_devices(6))
            .arm(ProposedArm::new(Weights::balanced(), solver))
            .arm(BenchmarkArm::random_frequency());
        let result = SweepEngine::single_thread().run(&grid).unwrap();
        let row = &result.aggregates[0];
        assert!(row[0].mean_energy_j < row[1].mean_energy_j);
        assert_eq!(row[0].count, 2);
        assert_eq!(row[1].count, 2);
    }

    #[test]
    fn infeasible_deadline_yields_zero_count_not_nan_surprise() {
        let solver = SolverConfig::fast();
        let grid = SweepGrid::new(vec![1u64])
            .point(1e-6, ScenarioBuilder::paper_default().with_devices(5))
            .arm(DeadlineProposedArm::new(DeadlineSource::FromX, solver));
        let result = SweepEngine::single_thread().run(&grid).unwrap();
        let agg = result.aggregates[0][0];
        assert_eq!(agg.count, 0);
        assert_eq!(agg.attempts, 1);
        assert!(agg.mean_energy_j.is_nan());
        // A loose deadline is feasible.
        let grid = SweepGrid::new(vec![1u64])
            .point(200.0, ScenarioBuilder::paper_default().with_devices(5))
            .arm(DeadlineProposedArm::new(DeadlineSource::FromX, solver));
        let agg = SweepEngine::single_thread().run(&grid).unwrap().aggregates[0][0];
        assert_eq!(agg.count, 1);
        assert!(agg.mean_energy_j.is_finite() && agg.mean_energy_j > 0.0);
    }

    #[test]
    fn configured_arm_renames_and_reconfigures() {
        let solver = SolverConfig::fast();
        let arm = ConfiguredArm::new(ProposedArm::new(Weights::balanced(), solver))
            .named("N = 3")
            .with_builder(|b| b.with_devices(3));
        assert_eq!(arm.name(), "N = 3");
        let result = SweepEngine::single_thread().run(&quick_grid(arm)).unwrap();
        assert_eq!(result.arm_names, vec!["N = 3".to_string()]);
        assert!(result.aggregates[0][0].mean_energy_j > 0.0);
    }

    #[test]
    fn benchmark_arm_uses_the_derived_stream() {
        // The benchmark cell must reproduce BenchmarkAllocator::random_frequency with the
        // stream seed derived from the base seed — the historical `seed ^ 0x9e37_79b9`.
        let scenario = ScenarioBuilder::paper_default().with_devices(6).build(11).unwrap();
        let direct = BenchmarkAllocator::new()
            .random_frequency(&scenario, baselines::derive_stream_seed(11))
            .unwrap();
        let grid = SweepGrid::new(vec![11u64])
            .point(12.0, ScenarioBuilder::paper_default().with_devices(6))
            .arm(BenchmarkArm::random_frequency());
        let agg = SweepEngine::single_thread().run(&grid).unwrap().aggregates[0][0];
        assert_eq!(agg.mean_energy_j, direct.total_energy_j());
        assert_eq!(agg.mean_time_s, direct.total_time_s());
    }
}
