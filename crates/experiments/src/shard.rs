//! Sharded fleet execution: split one [`ExperimentSpec`] into seed sub-range shards, run
//! them as subprocesses of the `fedopt` binary (or in process), cache finished shards on
//! disk by content hash, and merge the shard results back into the exact
//! [`SweepResult`] a single-process run would have produced.
//!
//! ## Bit-identity by replay, not by summing
//!
//! The merge contract is *byte-for-byte* equality with the unsharded run — aggregates,
//! counters, and the rendered `--json` report alike. Float addition is not associative,
//! so merging per-shard *sums* would not achieve that. Instead a shard ships the **raw
//! per-cell samples** of its seed sub-range ([`crate::engine::SweepEngine::run_cells`]) and the
//! coordinator replays them through one [`AggregateAccumulator`] per (point, arm) in
//! shard order ([`AggregateAccumulator::merge_samples`]). Because [`split`] partitions
//! the seed sequence contiguously and in order, the replayed fold performs literally the
//! same sequence of pushes as the single-process reduction — bit-identical by
//! construction. Counters are exact integer sums, mergeable in any order. The engine
//! resets all warm-start state at every (point, seed) cell-group boundary, so a cell's
//! output never depends on which other seeds share its process — which is what makes
//! seed-granular sharding sound in the first place.
//!
//! ## The wire and cache formats
//!
//! Everything crossing a process or filesystem boundary uses the deterministic
//! [`crate::json`] codec (never serde): the shard spec piped to a worker's stdin, the
//! [`ShardResult`] streamed back on stdout (`fedopt run --spec - --shard-json`), and the
//! cache entries under `--cache-dir`. Cache entries are content-addressed by
//! [`cache_key`] — the FNV-1a 64 hash of a canonical preimage (cache-format version,
//! schema version, solver preset, and the shard spec JSON normalized to drop
//! result-invariant fields like `id`, `description`, `reports` and engine scheduling
//! knobs) — and self-validating: each entry stores the FNV-1a hash of its payload, so a
//! truncated or corrupted entry is detected and recomputed, never silently trusted.

use crate::engine::{
    warm_start_env, Aggregate, AggregateAccumulator, CellMatrix, CellOutput, SweepCounters,
    SweepResult, THREADS_ENV,
};
use crate::json::{fnv1a_64, Json};
use crate::spec::{EngineSpec, ExperimentSpec, SeedPolicy, SolverPreset, SpecError};
use fedopt_core::SolveCounters;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Version of the shard result wire format and the cache entry format. Bumping it
/// invalidates every existing cache entry (the key preimage includes it).
pub const SHARD_FORMAT_VERSION: u64 = 1;

/// Default per-shard wall-clock timeout of the subprocess runner.
pub const DEFAULT_SHARD_TIMEOUT: Duration = Duration::from_secs(600);

/// `kind` tag of a shard result document.
const RESULT_KIND: &str = "fedopt_shard_result";
/// `kind` tag of a cache entry document.
const ENTRY_KIND: &str = "fedopt_shard_cache_entry";
/// `kind` tag of the cache-key preimage document (never written to disk; hashed).
const KEY_KIND: &str = "fedopt_shard_cache_key";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// One shard's terminal failure, after its retry.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard index (0-based) within the split.
    pub index: usize,
    /// Human-readable description of the shard's seed sub-range.
    pub seeds: String,
    /// How many attempts were made (1 + retries).
    pub attempts: usize,
    /// The last attempt's error.
    pub error: String,
}

/// Why a fleet run (or one of its pieces) failed.
#[derive(Debug)]
pub enum ShardError {
    /// The parent spec failed validation (or a shard grid failed to compile/run).
    Spec(SpecError),
    /// A shard result or cache document was malformed.
    Codec(String),
    /// Some shards failed after their retry; the successful shards' work is described so
    /// nothing is silently dropped.
    Partial {
        /// Every failed shard, in shard order.
        failures: Vec<ShardFailure>,
        /// Number of shards that completed.
        completed: usize,
        /// Total number of shards.
        total: usize,
    },
    /// Shard results disagreed with each other or with the parent spec during the merge.
    Merge(String),
    /// Filesystem trouble preparing the cache directory.
    Io(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spec(e) => write!(f, "{e}"),
            ShardError::Codec(msg) => write!(f, "malformed shard document: {msg}"),
            ShardError::Partial { failures, completed, total } => {
                writeln!(
                    f,
                    "fleet run FAILED: {} of {total} shards failed ({completed} completed):",
                    failures.len()
                )?;
                for failure in failures {
                    writeln!(
                        f,
                        "  shard {}/{total} (seeds {}) failed after {} attempt(s): {}",
                        failure.index + 1,
                        failure.seeds,
                        failure.attempts,
                        failure.error
                    )?;
                }
                write!(f, "no partial output was written")
            }
            ShardError::Merge(msg) => write!(f, "shard results do not merge: {msg}"),
            ShardError::Io(msg) => write!(f, "shard cache I/O: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ShardError {
    fn from(e: SpecError) -> Self {
        ShardError::Spec(e)
    }
}

// ---------------------------------------------------------------------------
// Splitting
// ---------------------------------------------------------------------------

/// Partitions a valid spec's seed policy into at most `n` shard specs.
///
/// The shards partition the parent's seed sequence **exactly** — contiguous, in order, no
/// overlap, no gap — so replaying shard results in shard order reproduces the parent's
/// seed-order fold. `n` is clamped to the seed count (a 3-seed sweep split 8 ways yields
/// 3 single-seed shards); seed counts are balanced to within one (the first
/// `count % shards` shards get the extra seed). Every other spec field is copied
/// verbatim, so each shard is itself a complete, valid, runnable spec.
///
/// # Errors
///
/// [`ShardError::Spec`] when the parent spec fails validation, or [`ShardError::Merge`]
/// when `n == 0`.
pub fn split(spec: &ExperimentSpec, n: usize) -> Result<Vec<ExperimentSpec>, ShardError> {
    if n == 0 {
        return Err(ShardError::Merge("cannot split a spec into 0 shards".to_string()));
    }
    spec.validate()?;
    let total = spec.seeds.len();
    let shards = (n as u64).min(total).max(1);
    let base = total / shards;
    let remainder = total % shards;

    let mut out = Vec::with_capacity(shards as usize);
    let mut offset = 0u64;
    for k in 0..shards {
        let count = base + u64::from(k < remainder);
        let mut shard = spec.clone();
        shard.seeds.policy = match &spec.seeds.policy {
            SeedPolicy::Range { start, .. } => SeedPolicy::Range { start: start + offset, count },
            SeedPolicy::List(seeds) => {
                SeedPolicy::List(seeds[offset as usize..(offset + count) as usize].to_vec())
            }
        };
        out.push(shard);
        offset += count;
    }
    debug_assert_eq!(offset, total);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

/// The content-addressed cache key of a shard spec: 16 lowercase hex digits of the
/// FNV-1a 64 hash of the canonical key preimage.
///
/// The preimage is a compact JSON document of the cache-format version
/// ([`SHARD_FORMAT_VERSION`]), the spec schema version, the resolved solver preset name,
/// and the shard spec itself **normalized to what actually determines the samples**:
/// `id`, `description` and `reports` are cleared (renaming a sweep or adding a report
/// must not re-key its finished shards) and the engine block keeps only the *effective*
/// warm-start switch — thread count, scenario sharing, streaming mode and seed chunking
/// are scheduling decisions, proven result-invariant by the engine's determinism tests.
/// The warm-start switch *is* result-affecting (warm solves converge along a different
/// trajectory), so the key pins it to the value the run will actually use:
/// the [`crate::engine::WARM_START_ENV`] environment override when set, else the spec's
/// own field, else the warm default.
pub fn cache_key(spec: &ExperimentSpec) -> String {
    let mut normalized = spec.clone();
    normalized.id = String::new();
    normalized.description = String::new();
    normalized.reports = Vec::new();
    let effective_warm = warm_start_env().or(spec.engine.warm_start).unwrap_or(true);
    normalized.engine = EngineSpec { warm_start: Some(effective_warm), ..EngineSpec::default() };
    let preset = match spec.solver.preset {
        SolverPreset::Default => "default",
        SolverPreset::Fast => "fast",
    };
    let preimage = Json::obj([
        ("kind", Json::Str(KEY_KIND.to_string())),
        ("cache_version", Json::uint(SHARD_FORMAT_VERSION)),
        ("schema_version", Json::uint(crate::spec::SCHEMA_VERSION)),
        ("solver_preset", Json::Str(preset.to_string())),
        ("spec", normalized.to_json()),
    ]);
    format!("{:016x}", fnv1a_64(preimage.to_compact_string().as_bytes()))
}

// ---------------------------------------------------------------------------
// The shard result and its codec
// ---------------------------------------------------------------------------

/// The raw output of one shard: every cell sample of its seed sub-range in
/// `(point, arm, seed)` slot order, plus the shard's work counters — the
/// [`CellMatrix`] of the shard spec, stamped with the spec id and cache key it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// `id` of the (parent and shard) spec this result answers.
    pub spec_id: String,
    /// [`cache_key`] of the shard spec, as computed by the process that ran it.
    pub key: String,
    /// The sweep points' x values, in grid order.
    pub xs: Vec<f64>,
    /// The arm (column) names, in grid order.
    pub arm_names: Vec<String>,
    /// Seeds per (point, arm) in this shard.
    pub n_seeds: usize,
    /// `samples[(point_idx * arms + arm_idx) * n_seeds + seed_idx]`; `None` = infeasible.
    pub samples: Vec<Option<CellOutput>>,
    /// The shard run's counters (exact integer sums; merge by addition).
    pub counters: SweepCounters,
}

impl ShardResult {
    /// Stamps a [`CellMatrix`] with the shard spec's identity.
    pub fn from_cells(spec: &ExperimentSpec, cells: CellMatrix) -> Self {
        Self {
            spec_id: spec.id.clone(),
            key: cache_key(spec),
            xs: cells.xs,
            arm_names: cells.arm_names,
            n_seeds: cells.n_seeds,
            samples: cells.samples,
            counters: cells.counters,
        }
    }

    /// The sample slice of one (point, arm) — `n_seeds` entries in seed order.
    pub fn cell_slice(&self, point_idx: usize, arm_idx: usize) -> &[Option<CellOutput>] {
        let base = (point_idx * self.arm_names.len() + arm_idx) * self.n_seeds;
        &self.samples[base..base + self.n_seeds]
    }

    /// Serializes to the deterministic wire document (the worker's stdout format).
    pub fn to_json(&self) -> Json {
        let n_arms = self.arm_names.len();
        let samples = Json::Arr(
            (0..self.xs.len())
                .map(|p| {
                    Json::Arr(
                        (0..n_arms)
                            .map(|a| {
                                Json::Arr(
                                    self.cell_slice(p, a)
                                        .iter()
                                        .map(|cell| match cell {
                                            None => Json::Null,
                                            Some(c) => Json::Arr(vec![
                                                Json::Num(c.energy_j),
                                                Json::Num(c.time_s),
                                            ]),
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let solver = &self.counters.solver;
        Json::obj([
            ("schema_version", Json::uint(SHARD_FORMAT_VERSION)),
            ("kind", Json::Str(RESULT_KIND.to_string())),
            ("spec_id", Json::Str(self.spec_id.clone())),
            ("key", Json::Str(self.key.clone())),
            ("xs", Json::Arr(self.xs.iter().map(|&x| Json::Num(x)).collect())),
            ("arm_names", Json::Arr(self.arm_names.iter().map(|n| Json::Str(n.clone())).collect())),
            ("seeds", Json::uint(self.n_seeds as u64)),
            ("samples", samples),
            (
                "counters",
                Json::obj([
                    ("scenarios_built", Json::uint(self.counters.scenarios_built as u64)),
                    ("cells_evaluated", Json::uint(self.counters.cells_evaluated as u64)),
                    (
                        "solver",
                        Json::obj([
                            ("outer_iterations", Json::uint(solver.outer_iterations)),
                            ("jong_iterations", Json::uint(solver.jong_iterations)),
                            ("kkt_solves", Json::uint(solver.kkt_solves)),
                            ("mu_bisect_evals", Json::uint(solver.mu_bisect_evals)),
                            ("sp2_fast_path_hits", Json::uint(solver.sp2_fast_path_hits)),
                            ("sp1_probe_evals", Json::uint(solver.sp1_probe_evals)),
                            ("lp_sorts", Json::uint(solver.lp_sorts)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    /// Serializes to the compact single-line wire string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact_string()
    }

    /// Parses and structurally validates a wire document.
    ///
    /// # Errors
    ///
    /// [`ShardError::Codec`] on any missing field, type mismatch, version/kind mismatch,
    /// or dimension inconsistency (the sample tensor must be exactly
    /// `points × arms × seeds`).
    pub fn from_json(doc: &Json) -> Result<Self, ShardError> {
        let version = field(doc, "schema_version")?
            .as_u64()
            .ok_or_else(|| codec("schema_version must be an unsigned integer"))?;
        if version != SHARD_FORMAT_VERSION {
            return Err(codec(format!(
                "shard format version mismatch: expected {SHARD_FORMAT_VERSION}, got {version}"
            )));
        }
        let kind = field(doc, "kind")?.as_str().ok_or_else(|| codec("kind must be a string"))?;
        if kind != RESULT_KIND {
            return Err(codec(format!("expected kind {RESULT_KIND:?}, got {kind:?}")));
        }
        let spec_id = field(doc, "spec_id")?
            .as_str()
            .ok_or_else(|| codec("spec_id must be a string"))?
            .to_string();
        let key =
            field(doc, "key")?.as_str().ok_or_else(|| codec("key must be a string"))?.to_string();
        let xs = field(doc, "xs")?
            .as_array()
            .ok_or_else(|| codec("xs must be an array"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| codec("xs entries must be numbers")))
            .collect::<Result<Vec<f64>, _>>()?;
        let arm_names = field(doc, "arm_names")?
            .as_array()
            .ok_or_else(|| codec("arm_names must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| codec("arm_names entries must be strings"))
            })
            .collect::<Result<Vec<String>, _>>()?;
        let n_seeds = field(doc, "seeds")?
            .as_usize()
            .ok_or_else(|| codec("seeds must be an unsigned integer"))?;

        let points =
            field(doc, "samples")?.as_array().ok_or_else(|| codec("samples must be an array"))?;
        if points.len() != xs.len() {
            return Err(codec(format!(
                "samples has {} point rows, xs has {}",
                points.len(),
                xs.len()
            )));
        }
        let mut samples = Vec::with_capacity(xs.len() * arm_names.len() * n_seeds);
        for row in points {
            let arms = row.as_array().ok_or_else(|| codec("sample point rows must be arrays"))?;
            if arms.len() != arm_names.len() {
                return Err(codec(format!(
                    "a point row has {} arm cells, arm_names has {}",
                    arms.len(),
                    arm_names.len()
                )));
            }
            for cell in arms {
                let seeds =
                    cell.as_array().ok_or_else(|| codec("sample arm cells must be arrays"))?;
                if seeds.len() != n_seeds {
                    return Err(codec(format!(
                        "an arm cell has {} seed samples, seeds says {n_seeds}",
                        seeds.len()
                    )));
                }
                for sample in seeds {
                    samples.push(match sample {
                        Json::Null => None,
                        Json::Arr(pair) if pair.len() == 2 => {
                            let energy_j = pair[0]
                                .as_f64()
                                .ok_or_else(|| codec("sample energy must be a number"))?;
                            let time_s = pair[1]
                                .as_f64()
                                .ok_or_else(|| codec("sample time must be a number"))?;
                            Some(CellOutput::new(energy_j, time_s))
                        }
                        _ => return Err(codec("samples must be null or [energy, time] pairs")),
                    });
                }
            }
        }

        let counters_obj = field(doc, "counters")?;
        let solver_obj = field(counters_obj, "solver")?;
        let counter = |obj: &Json, name: &str| -> Result<u64, ShardError> {
            field(obj, name)?
                .as_u64()
                .ok_or_else(|| codec(format!("counter {name} must be an unsigned integer")))
        };
        let counters = SweepCounters {
            scenarios_built: counter(counters_obj, "scenarios_built")? as usize,
            cells_evaluated: counter(counters_obj, "cells_evaluated")? as usize,
            solver: SolveCounters {
                outer_iterations: counter(solver_obj, "outer_iterations")?,
                jong_iterations: counter(solver_obj, "jong_iterations")?,
                kkt_solves: counter(solver_obj, "kkt_solves")?,
                mu_bisect_evals: counter(solver_obj, "mu_bisect_evals")?,
                sp2_fast_path_hits: counter(solver_obj, "sp2_fast_path_hits")?,
                sp1_probe_evals: counter(solver_obj, "sp1_probe_evals")?,
                lp_sorts: counter(solver_obj, "lp_sorts")?,
            },
        };

        Ok(Self { spec_id, key, xs, arm_names, n_seeds, samples, counters })
    }

    /// [`ShardResult::from_json`] from text.
    ///
    /// # Errors
    ///
    /// [`ShardError::Codec`] on parse or structural failure.
    pub fn from_json_str(text: &str) -> Result<Self, ShardError> {
        let doc = Json::parse(text).map_err(|e| codec(format!("not valid JSON: {e}")))?;
        Self::from_json(&doc)
    }
}

fn codec(msg: impl Into<String>) -> ShardError {
    ShardError::Codec(msg.into())
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ShardError> {
    doc.get(key).ok_or_else(|| codec(format!("missing field {key:?}")))
}

/// Runs one shard spec in this process: compile the grid, evaluate with the spec's
/// engine, return the raw cell matrix stamped as a [`ShardResult`]. This is the body of
/// the `fedopt run --spec - --shard-json` worker mode.
///
/// # Errors
///
/// Validation errors, or any sweep error from the engine.
pub fn run_shard_in_process(spec: &ExperimentSpec) -> Result<ShardResult, SpecError> {
    let grid = spec.grid()?;
    let engine = spec.engine.to_engine();
    let cells = engine.run_cells(&grid)?;
    Ok(ShardResult::from_cells(spec, cells))
}

// ---------------------------------------------------------------------------
// The on-disk cache
// ---------------------------------------------------------------------------

/// Content-addressed on-disk cache of finished shard results.
///
/// One file per shard, named `shard-<key>.json` after the shard spec's [`cache_key`].
/// Each entry wraps the [`ShardResult`] wire document with the FNV-1a hash of its
/// compact payload bytes; [`ShardCache::load`] re-hashes on read, so a truncated,
/// bit-flipped or hand-edited entry fails validation and reads as a miss (the shard is
/// recomputed and the entry overwritten) — corruption is never silently trusted. Writes
/// go through a temp file + rename, so a crashed writer leaves no half-written entry
/// under the final name. Entries carry no expiry: a key embeds everything that
/// determines the samples, so a hit can only go stale by bumping
/// [`SHARD_FORMAT_VERSION`].
#[derive(Debug, Clone)]
pub struct ShardCache {
    dir: PathBuf,
}

impl ShardCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ShardError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ShardError::Io(format!("cannot create {}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path of a cache key.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("shard-{key}.json"))
    }

    /// Loads and validates the entry of `key`. Any failure — missing file, unparsable
    /// JSON, wrong kind/version, key mismatch, payload-hash mismatch, malformed payload —
    /// is a miss (`None`), never an error: the coordinator recomputes and overwrites.
    pub fn load(&self, key: &str) -> Option<ShardResult> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("kind")?.as_str()? != ENTRY_KIND {
            return None;
        }
        if doc.get("schema_version")?.as_u64()? != SHARD_FORMAT_VERSION {
            return None;
        }
        if doc.get("key")?.as_str()? != key {
            return None;
        }
        let payload = doc.get("payload")?;
        let expected_hash = doc.get("payload_hash")?.as_str()?;
        let actual_hash = format!("{:016x}", fnv1a_64(payload.to_compact_string().as_bytes()));
        if actual_hash != expected_hash {
            return None;
        }
        let result = ShardResult::from_json(payload).ok()?;
        if result.key != key {
            return None;
        }
        Some(result)
    }

    /// Stores a shard result under its own key (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the entry cannot be written.
    pub fn store(&self, result: &ShardResult) -> Result<(), ShardError> {
        let payload = result.to_json();
        let payload_hash = format!("{:016x}", fnv1a_64(payload.to_compact_string().as_bytes()));
        let entry = Json::obj([
            ("schema_version", Json::uint(SHARD_FORMAT_VERSION)),
            ("kind", Json::Str(ENTRY_KIND.to_string())),
            ("key", Json::Str(result.key.clone())),
            ("payload_hash", Json::Str(payload_hash)),
            ("payload", payload),
        ]);
        let path = self.entry_path(&result.key);
        let tmp = self.dir.join(format!("shard-{}.json.tmp.{}", result.key, std::process::id()));
        let io = |e: std::io::Error, what: &str| ShardError::Io(format!("{what}: {e}"));
        std::fs::write(&tmp, entry.to_compact_string())
            .map_err(|e| io(e, "writing cache temp file"))?;
        std::fs::rename(&tmp, &path).map_err(|e| io(e, "publishing cache entry"))?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

/// Something that can run one shard spec to a [`ShardResult`] — in process for tests and
/// benchmarks, or as a `fedopt` subprocess for the fleet.
pub trait ShardRunner: Sync {
    /// Runs the shard. The error string ends up verbatim in the partial-failure report.
    ///
    /// # Errors
    ///
    /// A human-readable description of why the shard could not produce a result.
    fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, String>;
}

/// Runs shards inside the coordinating process (no subprocess, no timeout).
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessRunner;

impl ShardRunner for InProcessRunner {
    fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, String> {
        run_shard_in_process(spec).map_err(|e| e.to_string())
    }
}

/// Runs each shard as a subprocess of the `fedopt` binary: pipes the shard spec JSON to
/// `<program> run --spec - --shard-json` and parses the [`ShardResult`] document the
/// worker streams back on stdout. Enforces a per-shard wall-clock timeout (the child is
/// killed, the shard reports a timeout error), and captures the worker's stderr tail for
/// the failure report. The child inherits the coordinator's environment — crucially
/// including [`crate::engine::WARM_START_ENV`], so the warm-start switch (and with it the
/// cache key) agrees across the fleet — with only the worker thread count
/// ([`crate::engine::THREADS_ENV`]) overridden to divide the machine between concurrent
/// shards.
#[derive(Debug, Clone)]
pub struct SubprocessRunner {
    program: PathBuf,
    timeout: Duration,
    child_threads: Option<usize>,
}

impl SubprocessRunner {
    /// A runner spawning `program` with the default timeout.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self { program: program.into(), timeout: DEFAULT_SHARD_TIMEOUT, child_threads: None }
    }

    /// Sets the per-shard wall-clock timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Pins every child's worker thread count (via [`crate::engine::THREADS_ENV`]).
    #[must_use]
    pub fn with_child_threads(mut self, threads: usize) -> Self {
        self.child_threads = Some(threads.max(1));
        self
    }
}

impl ShardRunner for SubprocessRunner {
    fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, String> {
        let payload = spec.to_json_string();
        let mut cmd = Command::new(&self.program);
        cmd.args(["run", "--spec", "-", "--shard-json"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(threads) = self.child_threads {
            cmd.env(THREADS_ENV, threads.to_string());
        }
        let mut child =
            cmd.spawn().map_err(|e| format!("cannot spawn {}: {e}", self.program.display()))?;

        // Dedicated threads for all three pipes: a worker blocked writing stdout while
        // the coordinator blocks writing a large spec to stdin would deadlock both.
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let stdin_writer = std::thread::spawn(move || {
            let _ = stdin.write_all(payload.as_bytes());
            // Dropping stdin closes the pipe — the worker's read loop sees EOF.
        });
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let stdout_reader = std::thread::spawn(move || {
            let mut buf = String::new();
            let _ = std::io::Read::read_to_string(&mut stdout, &mut buf);
            buf
        });
        let mut stderr = child.stderr.take().expect("stderr was piped");
        let stderr_reader = std::thread::spawn(move || {
            let mut buf = String::new();
            let _ = std::io::Read::read_to_string(&mut stderr, &mut buf);
            buf
        });

        let deadline = Instant::now() + self.timeout;
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = stdin_writer.join();
                        let _ = stdout_reader.join();
                        let _ = stderr_reader.join();
                        return Err(format!(
                            "timed out after {:.0?} (worker killed)",
                            self.timeout
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(format!("waiting on worker failed: {e}"));
                }
            }
        };
        let _ = stdin_writer.join();
        let stdout_text = stdout_reader.join().unwrap_or_default();
        let stderr_text = stderr_reader.join().unwrap_or_default();
        let stderr_tail = || {
            let tail: Vec<&str> = stderr_text.lines().rev().take(5).collect();
            let mut lines: Vec<&str> = tail.into_iter().rev().collect();
            if lines.is_empty() {
                lines.push("(no stderr)");
            }
            lines.join(" | ")
        };

        if !status.success() {
            return Err(format!("worker exited with {status}; stderr: {}", stderr_tail()));
        }
        ShardResult::from_json_str(&stdout_text)
            .map_err(|e| format!("{e}; stderr: {}", stderr_tail()))
    }
}

// ---------------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------------

/// How a fleet run is shaped: shard count, optional result cache, worker-pool bound.
#[derive(Debug, Default)]
pub struct FleetOptions {
    /// Number of shards to split into (clamped to the seed count; must be ≥ 1).
    pub shards: usize,
    /// Content-addressed result cache; `None` disables caching entirely.
    pub cache: Option<ShardCache>,
    /// Maximum shards in flight at once. `None` = `min(shards, available cores)`.
    pub concurrency: Option<usize>,
}

/// What the coordinator observed: cache traffic and retries. Only meaningful when a
/// cache was configured (`shard_cache_hits`/`shard_cache_misses` stay 0 without one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Shards answered from the cache.
    pub shard_cache_hits: u64,
    /// Shards that had to be computed (cache configured but entry absent or invalid).
    pub shard_cache_misses: u64,
    /// Failed first attempts that were retried (successfully or not).
    pub retries: u64,
}

/// Splits the spec, runs every shard (bounded concurrency, cache-first, one retry each),
/// and merges the shard results into the exact [`SweepResult`] of a single-process run.
///
/// The worker pool claims shards in index order; results are merged strictly in shard
/// order afterwards, so completion order never affects the output. Every shard failure
/// is retried once; shards that still fail are collected into one loud
/// [`ShardError::Partial`] report naming each failed shard's seed range and last error —
/// no partial result is returned.
///
/// # Errors
///
/// [`ShardError::Spec`] on an invalid parent spec, [`ShardError::Partial`] when any
/// shard fails twice, [`ShardError::Merge`] when shard results are mutually
/// inconsistent.
pub fn run_fleet(
    spec: &ExperimentSpec,
    opts: &FleetOptions,
    runner: &dyn ShardRunner,
) -> Result<(SweepResult, FleetStats), ShardError> {
    let shard_specs = split(spec, opts.shards)?;
    let keys: Vec<String> = shard_specs.iter().map(cache_key).collect();
    let total = shard_specs.len();
    let workers = opts
        .concurrency
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .clamp(1, total);

    let next = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let slots: Mutex<Vec<Option<Result<ShardResult, ShardFailure>>>> =
        Mutex::new((0..total).map(|_| None).collect());

    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            return;
        }
        let shard_spec = &shard_specs[i];
        let key = &keys[i];
        let outcome =
            run_one_shard(shard_spec, key, opts.cache.as_ref(), runner, (&hits, &misses, &retries))
                .map_err(|(attempts, error)| ShardFailure {
                    index: i,
                    seeds: describe_seeds(shard_spec),
                    attempts,
                    error,
                });
        slots.lock().expect("shard slots poisoned")[i] = Some(outcome);
    };
    if workers == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
            for h in handles {
                h.join().expect("fleet worker panicked");
            }
        });
    }

    let slots = slots.into_inner().expect("shard slots poisoned");
    let mut results = Vec::with_capacity(total);
    let mut failures = Vec::new();
    for slot in slots {
        match slot.expect("every shard slot must be filled") {
            Ok(result) => results.push(result),
            Err(failure) => failures.push(failure),
        }
    }
    if !failures.is_empty() {
        let completed = results.len();
        return Err(ShardError::Partial { failures, completed, total });
    }

    let stats = FleetStats {
        shard_cache_hits: hits.into_inner(),
        shard_cache_misses: misses.into_inner(),
        retries: retries.into_inner(),
    };
    let merged = merge(spec, &shard_specs, &results)?;
    Ok((merged, stats))
}

/// Cache-first, retry-once execution of one shard. Returns `(attempts, error)` on
/// terminal failure.
fn run_one_shard(
    shard_spec: &ExperimentSpec,
    key: &str,
    cache: Option<&ShardCache>,
    runner: &dyn ShardRunner,
    (hits, misses, retries): (&AtomicU64, &AtomicU64, &AtomicU64),
) -> Result<ShardResult, (usize, String)> {
    if let Some(cache) = cache {
        if let Some(result) = cache.load(key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return Ok(result);
        }
        misses.fetch_add(1, Ordering::Relaxed);
    }
    let mut attempts = 0usize;
    let result = loop {
        attempts += 1;
        match runner.run_shard(shard_spec) {
            Ok(result) => break result,
            Err(error) if attempts == 1 => {
                retries.fetch_add(1, Ordering::Relaxed);
                let _ = error;
            }
            Err(error) => return Err((attempts, error)),
        }
    };
    if result.spec_id != shard_spec.id {
        return Err((
            attempts,
            format!("worker answered for spec {:?}, expected {:?}", result.spec_id, shard_spec.id),
        ));
    }
    if result.key != key {
        return Err((
            attempts,
            format!(
                "worker computed cache key {} for a shard the coordinator keyed {key} — \
                 the worker ran under a different effective configuration",
                result.key
            ),
        ));
    }
    if let Some(cache) = cache {
        if let Err(e) = cache.store(&result) {
            // A failed store only loses future cache hits; the shard's result is good.
            eprintln!("warning: {e}");
        }
    }
    Ok(result)
}

/// Replays the shard results, in shard order, into the single-process [`SweepResult`].
fn merge(
    spec: &ExperimentSpec,
    shard_specs: &[ExperimentSpec],
    results: &[ShardResult],
) -> Result<SweepResult, ShardError> {
    let first = results.first().ok_or_else(|| ShardError::Merge("no shards".to_string()))?;
    let n_points = first.xs.len();
    let n_arms = first.arm_names.len();
    let mut accumulators: Vec<AggregateAccumulator> =
        vec![AggregateAccumulator::new(); n_points * n_arms];
    let mut counters = SweepCounters::default();

    for (i, (shard_spec, result)) in shard_specs.iter().zip(results).enumerate() {
        if result.spec_id != spec.id {
            return Err(ShardError::Merge(format!(
                "shard {i} answers spec {:?}, expected {:?}",
                result.spec_id, spec.id
            )));
        }
        if result.xs != first.xs || result.arm_names != first.arm_names {
            return Err(ShardError::Merge(format!(
                "shard {i} evaluated a different grid (points/arms mismatch)"
            )));
        }
        let expected_seeds = shard_spec.seeds.len();
        if result.n_seeds as u64 != expected_seeds {
            return Err(ShardError::Merge(format!(
                "shard {i} carries {} seeds, its spec has {expected_seeds}",
                result.n_seeds
            )));
        }
        for p in 0..n_points {
            for a in 0..n_arms {
                accumulators[p * n_arms + a].merge_samples(result.cell_slice(p, a));
            }
        }
        counters.merge(&result.counters);
    }

    let aggregates: Vec<Vec<Aggregate>> = (0..n_points)
        .map(|p| (0..n_arms).map(|a| accumulators[p * n_arms + a].finish()).collect())
        .collect();
    Ok(SweepResult {
        xs: first.xs.clone(),
        arm_names: first.arm_names.clone(),
        aggregates,
        counters,
    })
}

/// Human-readable seed sub-range of a shard spec, for failure reports.
fn describe_seeds(spec: &ExperimentSpec) -> String {
    match &spec.seeds.policy {
        SeedPolicy::Range { start, count } => format!("{start}..{}", start + count),
        SeedPolicy::List(seeds) => format!("list of {}", seeds.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeedSpec;

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = crate::presets::spec(2, crate::presets::Variant::Quick).unwrap();
        spec.override_seed_count(5);
        spec
    }

    #[test]
    fn split_partitions_a_range_exactly() {
        let mut spec = tiny_spec();
        spec.seeds =
            SeedSpec { policy: SeedPolicy::Range { start: 7, count: 10 }, ..spec.seeds.clone() };
        let shards = split(&spec, 3).unwrap();
        assert_eq!(shards.len(), 3);
        let concatenated: Vec<u64> = shards.iter().flat_map(|s| s.seeds.values()).collect();
        assert_eq!(concatenated, spec.seeds.values());
        // Balanced to within one seed.
        let sizes: Vec<u64> = shards.iter().map(|s| s.seeds.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Everything but the seed policy is untouched.
        for shard in &shards {
            assert_eq!(shard.id, spec.id);
            assert_eq!(shard.arms, spec.arms);
            assert_eq!(shard.axis, spec.axis);
        }
    }

    #[test]
    fn split_clamps_to_the_seed_count_and_rejects_zero() {
        let spec = tiny_spec(); // 5 seeds
        assert_eq!(split(&spec, 16).unwrap().len(), 5);
        assert_eq!(split(&spec, 1).unwrap().len(), 1);
        assert!(matches!(split(&spec, 0), Err(ShardError::Merge(_))));
    }

    #[test]
    fn split_partitions_a_list_exactly() {
        let mut spec = tiny_spec();
        spec.seeds = SeedSpec::list([11u64, 3, 5, 8, 2, 13, 1]);
        let shards = split(&spec, 4).unwrap();
        let concatenated: Vec<u64> = shards.iter().flat_map(|s| s.seeds.values()).collect();
        assert_eq!(concatenated, vec![11, 3, 5, 8, 2, 13, 1]);
    }

    #[test]
    fn cache_key_ignores_naming_and_scheduling_but_not_results() {
        let spec = tiny_spec();
        let base = cache_key(&spec);
        assert_eq!(base.len(), 16, "16 hex digits");

        // Renaming, describing, re-reporting, re-threading: same key.
        let mut renamed = spec.clone();
        renamed.id = "renamed".to_string();
        renamed.description = "something else".to_string();
        renamed.reports.clear();
        renamed.engine.threads = Some(7);
        renamed.engine.streaming = Some(false);
        renamed.engine.seed_chunk = Some(3);
        assert_eq!(cache_key(&renamed), base);

        // A different seed range: different key.
        let mut other_seeds = spec.clone();
        other_seeds.seeds =
            SeedSpec { policy: SeedPolicy::Range { start: 1, count: 5 }, ..spec.seeds.clone() };
        assert_ne!(cache_key(&other_seeds), base);

        // A different solver preset: different key.
        let mut other_solver = spec.clone();
        other_solver.solver.preset = SolverPreset::Default;
        assert_ne!(cache_key(&other_solver), base);

        // The warm-start switch is result-affecting: different key. (Guarded on a silent
        // environment — under FEDOPT_WARM_START the env pin wins for both, by design.)
        if warm_start_env().is_none() {
            let mut cold = spec.clone();
            cold.engine.warm_start = Some(false);
            assert_ne!(cache_key(&cold), base);
        }
    }

    #[test]
    fn shard_result_round_trips_through_the_wire_format() {
        let spec = split(&tiny_spec(), 3).unwrap().remove(1);
        let result = run_shard_in_process(&spec).unwrap();
        let text = result.to_json_string();
        let back = ShardResult::from_json_str(&text).unwrap();
        assert_eq!(back, result);
        // And the document is byte-stable.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn malformed_shard_documents_are_rejected_with_context() {
        let spec = split(&tiny_spec(), 5).unwrap().remove(0);
        let good = run_shard_in_process(&spec).unwrap().to_json_string();
        for (needle, replacement) in [
            ("\"kind\":\"fedopt_shard_result\"", "\"kind\":\"something\""),
            ("\"schema_version\":1", "\"schema_version\":9"),
            ("\"seeds\":1", "\"seeds\":2"),
        ] {
            let bad = good.replacen(needle, replacement, 1);
            assert_ne!(bad, good, "replacement {needle:?} must apply");
            assert!(ShardResult::from_json_str(&bad).is_err(), "{needle} must be rejected");
        }
        assert!(ShardResult::from_json_str("not json").is_err());
        assert!(ShardResult::from_json_str("{}").is_err());
    }
}
