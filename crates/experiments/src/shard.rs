//! Sharded fleet execution: split one [`ExperimentSpec`] into seed sub-range shards, run
//! them as subprocesses of the `fedopt` binary (or in process), cache finished shards on
//! disk by content hash, and merge the shard results back into the exact
//! [`SweepResult`] a single-process run would have produced.
//!
//! ## Bit-identity by replay, not by summing
//!
//! The merge contract is *byte-for-byte* equality with the unsharded run — aggregates,
//! counters, and the rendered `--json` report alike. Float addition is not associative,
//! so merging per-shard *sums* would not achieve that. Instead a shard ships the **raw
//! per-cell samples** of its seed sub-range ([`crate::engine::SweepEngine::run_cells`]) and the
//! coordinator replays them through one [`AggregateAccumulator`] per (point, arm) in
//! shard order ([`AggregateAccumulator::merge_samples`]). Because [`split`] partitions
//! the seed sequence contiguously and in order, the replayed fold performs literally the
//! same sequence of pushes as the single-process reduction — bit-identical by
//! construction. Counters are exact integer sums, mergeable in any order. The engine
//! resets all warm-start state at every (point, seed) cell-group boundary, so a cell's
//! output never depends on which other seeds share its process — which is what makes
//! seed-granular sharding sound in the first place.
//!
//! ## The wire and cache formats
//!
//! Everything crossing a process or filesystem boundary uses the deterministic
//! [`crate::json`] codec (never serde): the shard spec piped to a worker's stdin, the
//! [`ShardResult`] streamed back on stdout (`fedopt run --spec - --shard-json`), and the
//! cache entries under `--cache-dir`. Cache entries are content-addressed by
//! [`cache_key`] — the FNV-1a 64 hash of a canonical preimage (cache-format version,
//! schema version, solver preset, and the shard spec JSON normalized to drop
//! result-invariant fields like `id`, `description`, `reports` and engine scheduling
//! knobs) — and self-validating: each entry stores the FNV-1a hash of its payload, so a
//! truncated or corrupted entry is detected and recomputed, never silently trusted.
//! Since format version 2 the wire document itself also carries a whole-document
//! `checksum`, so corruption is caught on the pipe as well as on disk.
//!
//! ## Failure semantics
//!
//! The hardening contract, enforced under injected faults (see [`crate::fault`]): a
//! fleet run either completes byte-identical to the single-process run, salvages with
//! *explicit* holes ([`FleetOptions::allow_partial`] / [`FleetStats::holes`]), or fails
//! with a typed [`ShardError`] — it never hangs (wall-clock **and** heartbeat-silence
//! timeouts bound every worker), never panics the coordinator, and never returns
//! silently-wrong aggregates (the wire checksum and the replay-based merge see to that).
//! Failed shards are retried with deterministic exponential backoff ([`backoff_delay`]).

use crate::engine::{
    warm_start_env, Aggregate, AggregateAccumulator, CellMatrix, CellOutput, SweepCounters,
    SweepResult, THREADS_ENV,
};
use crate::json::{fnv1a_64, Json};
use crate::spec::{EngineSpec, ExperimentSpec, SeedPolicy, SolverPreset, SpecError};
use fedopt_core::SolveCounters;
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Version of the shard result wire format and the cache entry format. Bumping it
/// invalidates every existing cache entry (the key preimage includes it). Version 2
/// added the whole-document `checksum` member and the `degraded_solves` counter.
pub const SHARD_FORMAT_VERSION: u64 = 2;

/// Default per-shard wall-clock timeout of the subprocess runner.
pub const DEFAULT_SHARD_TIMEOUT: Duration = Duration::from_secs(600);

/// Default heartbeat-silence timeout of the subprocess runner: a worker that has not
/// emitted a [`HEARTBEAT_PREFIX`] stderr line for this long is killed as stalled, even
/// when its wall-clock budget is not yet spent — a silent hang must not cost the whole
/// [`DEFAULT_SHARD_TIMEOUT`].
pub const DEFAULT_HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(30);

/// Default retries per failed shard beyond its first attempt.
pub const DEFAULT_MAX_RETRIES: usize = 1;

/// Default base delay of the deterministic exponential retry backoff.
pub const DEFAULT_RETRY_BACKOFF: Duration = Duration::from_millis(100);

/// Prefix of worker heartbeat lines on stderr (`fedopt-heartbeat t=<secs>s cells=<n>`).
/// The coordinator treats such lines as liveness signals and excludes them from the
/// captured stderr tail.
pub const HEARTBEAT_PREFIX: &str = "fedopt-heartbeat";

/// Environment variable pacing the worker's heartbeat emission, in milliseconds.
/// [`SubprocessRunner::with_heartbeat_interval`] sets it on every child it spawns; a
/// malformed value is a loud worker-startup error, never a silently different cadence.
pub const HEARTBEAT_INTERVAL_ENV: &str = "FEDOPT_SHARD_HEARTBEAT_INTERVAL_MS";

/// Default interval between a worker's heartbeat lines. Far below
/// [`DEFAULT_HEARTBEAT_TIMEOUT`] on purpose: several beats must fit into the silence
/// window, or scheduling jitter alone would kill healthy workers.
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// Parses [`HEARTBEAT_INTERVAL_ENV`] text into a heartbeat interval.
///
/// # Errors
///
/// A message naming the variable when the value is not a positive integer of
/// milliseconds — a typo'd cadence must not degrade into the default one.
pub fn parse_heartbeat_interval(text: &str) -> Result<Duration, String> {
    text.trim().parse::<u64>().ok().filter(|&ms| ms > 0).map(Duration::from_millis).ok_or_else(
        || {
            format!(
                "{HEARTBEAT_INTERVAL_ENV}: expected a positive integer of milliseconds, \
                 got {text:?}"
            )
        },
    )
}

/// Reads the heartbeat interval from [`HEARTBEAT_INTERVAL_ENV`]. `Ok(None)` when unset.
///
/// # Errors
///
/// See [`parse_heartbeat_interval`].
pub fn heartbeat_interval_env() -> Result<Option<Duration>, String> {
    match std::env::var(HEARTBEAT_INTERVAL_ENV) {
        Ok(text) => parse_heartbeat_interval(&text).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(e) => Err(format!("{HEARTBEAT_INTERVAL_ENV}: {e}")),
    }
}

/// Parses one worker heartbeat line (`fedopt-heartbeat t=<secs>s cells=<n>`) into its
/// `(elapsed seconds, cells evaluated)` payload. Deliberately tolerant: unknown tokens
/// are skipped, token order is free, and anything short of both fields parsing cleanly
/// — a truncated number, interleaved bytes from another writer, a negative or
/// non-finite time — returns `None` rather than panicking. Liveness detection does
/// **not** ride on this parse (any [`HEARTBEAT_PREFIX`]-prefixed line feeds the clock,
/// see [`StderrState::observe`]), so a mangled beat can cost progress *reporting* but
/// never a worker's life.
pub fn parse_heartbeat(line: &str) -> Option<(f64, u64)> {
    let rest = line.strip_prefix(HEARTBEAT_PREFIX)?;
    let mut elapsed_s = None;
    let mut cells = None;
    for token in rest.split_whitespace() {
        if let Some(value) = token.strip_prefix("t=") {
            elapsed_s = value
                .strip_suffix('s')
                .and_then(|v| v.parse::<f64>().ok())
                .filter(|v| v.is_finite() && *v >= 0.0);
        } else if let Some(value) = token.strip_prefix("cells=") {
            cells = value.parse::<u64>().ok();
        }
    }
    Some((elapsed_s?, cells?))
}

/// Byte budget of the stderr tail captured per worker for failure reports. Oldest lines
/// are dropped first; any drop is marked with a leading `… (truncated)`.
pub const STDERR_TAIL_BUDGET: usize = 2048;

/// Grace period before a crashed writer's `*.json.tmp.<pid>` file is garbage-collected:
/// a younger temp file may belong to a live writer about to rename it into place.
pub const TMP_GRACE: Duration = Duration::from_secs(60);

/// `kind` tag of a shard result document.
const RESULT_KIND: &str = "fedopt_shard_result";
/// `kind` tag of a cache entry document.
const ENTRY_KIND: &str = "fedopt_shard_cache_entry";
/// `kind` tag of the cache-key preimage document (never written to disk; hashed).
const KEY_KIND: &str = "fedopt_shard_cache_key";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why one shard attempt failed, as reported by a [`ShardRunner`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRunError {
    /// Human-readable description; ends up verbatim in the failure report.
    pub message: String,
    /// Seconds between the worker's last observed heartbeat and the failure, when the
    /// runner tracks heartbeats (`None` for in-process runs and for workers that never
    /// heartbeated).
    pub last_heartbeat_s: Option<f64>,
}

impl From<String> for ShardRunError {
    fn from(message: String) -> Self {
        Self { message, last_heartbeat_s: None }
    }
}

impl fmt::Display for ShardRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// One shard's terminal failure, after its retries.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFailure {
    /// Shard index (0-based) within the split.
    pub index: usize,
    /// Human-readable description of the shard's seed sub-range.
    pub seeds: String,
    /// How many attempts were made (1 + retries).
    pub attempts: usize,
    /// The last attempt's error.
    pub error: String,
    /// Seconds between the worker's last observed heartbeat and the failure, when known
    /// — the difference between "died instantly" and "went quiet mid-sweep".
    pub last_heartbeat_s: Option<f64>,
}

/// Why a fleet run (or one of its pieces) failed.
#[derive(Debug)]
pub enum ShardError {
    /// The parent spec failed validation (or a shard grid failed to compile/run).
    Spec(SpecError),
    /// A shard result or cache document was malformed.
    Codec(String),
    /// Some shards failed after their retry; the successful shards' work is described so
    /// nothing is silently dropped.
    Partial {
        /// Every failed shard, in shard order.
        failures: Vec<ShardFailure>,
        /// Number of shards that completed.
        completed: usize,
        /// Total number of shards.
        total: usize,
    },
    /// Shard results disagreed with each other or with the parent spec during the merge.
    Merge(String),
    /// Filesystem trouble preparing the cache directory.
    Io(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Spec(e) => write!(f, "{e}"),
            ShardError::Codec(msg) => write!(f, "malformed shard document: {msg}"),
            ShardError::Partial { failures, completed, total } => {
                writeln!(
                    f,
                    "fleet run FAILED: {} of {total} shards failed ({completed} completed):",
                    failures.len()
                )?;
                for failure in failures {
                    write!(
                        f,
                        "  shard {}/{total} (seeds {}) failed after {} attempt(s): {}",
                        failure.index + 1,
                        failure.seeds,
                        failure.attempts,
                        failure.error
                    )?;
                    if let Some(age) = failure.last_heartbeat_s {
                        write!(f, " [last heartbeat {age:.1}s before failure]")?;
                    }
                    writeln!(f)?;
                }
                write!(f, "no partial output was written")
            }
            ShardError::Merge(msg) => write!(f, "shard results do not merge: {msg}"),
            ShardError::Io(msg) => write!(f, "shard cache I/O: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ShardError {
    fn from(e: SpecError) -> Self {
        ShardError::Spec(e)
    }
}

// ---------------------------------------------------------------------------
// Splitting
// ---------------------------------------------------------------------------

/// Partitions a valid spec's seed policy into at most `n` shard specs.
///
/// The shards partition the parent's seed sequence **exactly** — contiguous, in order, no
/// overlap, no gap — so replaying shard results in shard order reproduces the parent's
/// seed-order fold. `n` is clamped to the seed count (a 3-seed sweep split 8 ways yields
/// 3 single-seed shards); seed counts are balanced to within one (the first
/// `count % shards` shards get the extra seed). Every other spec field is copied
/// verbatim, so each shard is itself a complete, valid, runnable spec.
///
/// # Errors
///
/// [`ShardError::Spec`] when the parent spec fails validation, or [`ShardError::Merge`]
/// when `n == 0`.
pub fn split(spec: &ExperimentSpec, n: usize) -> Result<Vec<ExperimentSpec>, ShardError> {
    if n == 0 {
        return Err(ShardError::Merge("cannot split a spec into 0 shards".to_string()));
    }
    spec.validate()?;
    let total = spec.seeds.len();
    let shards = (n as u64).min(total).max(1);
    let base = total / shards;
    let remainder = total % shards;

    let mut out = Vec::with_capacity(shards as usize);
    let mut offset = 0u64;
    for k in 0..shards {
        let count = base + u64::from(k < remainder);
        let mut shard = spec.clone();
        shard.seeds.policy = match &spec.seeds.policy {
            SeedPolicy::Range { start, .. } => SeedPolicy::Range { start: start + offset, count },
            SeedPolicy::List(seeds) => {
                SeedPolicy::List(seeds[offset as usize..(offset + count) as usize].to_vec())
            }
        };
        out.push(shard);
        offset += count;
    }
    debug_assert_eq!(offset, total);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Cache key
// ---------------------------------------------------------------------------

/// The content-addressed cache key of a shard spec: 16 lowercase hex digits of the
/// FNV-1a 64 hash of the canonical key preimage.
///
/// The preimage is a compact JSON document of the cache-format version
/// ([`SHARD_FORMAT_VERSION`]), the spec schema version, the resolved solver preset name,
/// and the shard spec itself **normalized to what actually determines the samples**:
/// `id`, `description` and `reports` are cleared (renaming a sweep or adding a report
/// must not re-key its finished shards) and the engine block keeps only the *effective*
/// warm-start switch — thread count, scenario sharing, streaming mode and seed chunking
/// are scheduling decisions, proven result-invariant by the engine's determinism tests.
/// The warm-start switch *is* result-affecting (warm solves converge along a different
/// trajectory), so the key pins it to the value the run will actually use:
/// the [`crate::engine::WARM_START_ENV`] environment override when set, else the spec's
/// own field, else the warm default.
pub fn cache_key(spec: &ExperimentSpec) -> String {
    let mut normalized = spec.clone();
    normalized.id = String::new();
    normalized.description = String::new();
    normalized.reports = Vec::new();
    let effective_warm = warm_start_env().or(spec.engine.warm_start).unwrap_or(true);
    normalized.engine = EngineSpec { warm_start: Some(effective_warm), ..EngineSpec::default() };
    let preset = match spec.solver.preset {
        SolverPreset::Default => "default",
        SolverPreset::Fast => "fast",
    };
    let preimage = Json::obj([
        ("kind", Json::Str(KEY_KIND.to_string())),
        ("cache_version", Json::uint(SHARD_FORMAT_VERSION)),
        ("schema_version", Json::uint(crate::spec::SCHEMA_VERSION)),
        ("solver_preset", Json::Str(preset.to_string())),
        ("spec", normalized.to_json()),
    ]);
    format!("{:016x}", fnv1a_64(preimage.to_compact_string().as_bytes()))
}

// ---------------------------------------------------------------------------
// The shard result and its codec
// ---------------------------------------------------------------------------

/// The raw output of one shard: every cell sample of its seed sub-range in
/// `(point, arm, seed)` slot order, plus the shard's work counters — the
/// [`CellMatrix`] of the shard spec, stamped with the spec id and cache key it answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// `id` of the (parent and shard) spec this result answers.
    pub spec_id: String,
    /// [`cache_key`] of the shard spec, as computed by the process that ran it.
    pub key: String,
    /// The sweep points' x values, in grid order.
    pub xs: Vec<f64>,
    /// The arm (column) names, in grid order.
    pub arm_names: Vec<String>,
    /// Seeds per (point, arm) in this shard.
    pub n_seeds: usize,
    /// `samples[(point_idx * arms + arm_idx) * n_seeds + seed_idx]`; `None` = infeasible.
    pub samples: Vec<Option<CellOutput>>,
    /// The shard run's counters (exact integer sums; merge by addition).
    pub counters: SweepCounters,
}

impl ShardResult {
    /// Stamps a [`CellMatrix`] with the shard spec's identity.
    pub fn from_cells(spec: &ExperimentSpec, cells: CellMatrix) -> Self {
        Self {
            spec_id: spec.id.clone(),
            key: cache_key(spec),
            xs: cells.xs,
            arm_names: cells.arm_names,
            n_seeds: cells.n_seeds,
            samples: cells.samples,
            counters: cells.counters,
        }
    }

    /// The sample slice of one (point, arm) — `n_seeds` entries in seed order.
    pub fn cell_slice(&self, point_idx: usize, arm_idx: usize) -> &[Option<CellOutput>] {
        let base = (point_idx * self.arm_names.len() + arm_idx) * self.n_seeds;
        &self.samples[base..base + self.n_seeds]
    }

    /// Serializes to the deterministic wire document (the worker's stdout format).
    ///
    /// The final `checksum` member is the FNV-1a 64 hash of the compact serialization of
    /// every *other* member. [`ShardResult::from_json`] re-derives and compares it, so a
    /// single flipped byte anywhere in the document — even one that still parses as a
    /// different valid number — is a typed codec error, never a silently-wrong merge.
    pub fn to_json(&self) -> Json {
        let n_arms = self.arm_names.len();
        let samples = Json::Arr(
            (0..self.xs.len())
                .map(|p| {
                    Json::Arr(
                        (0..n_arms)
                            .map(|a| {
                                Json::Arr(
                                    self.cell_slice(p, a)
                                        .iter()
                                        .map(|cell| match cell {
                                            None => Json::Null,
                                            Some(c) => Json::Arr(vec![
                                                Json::Num(c.energy_j),
                                                Json::Num(c.time_s),
                                            ]),
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let solver = &self.counters.solver;
        let mut doc = Json::obj([
            ("schema_version", Json::uint(SHARD_FORMAT_VERSION)),
            ("kind", Json::Str(RESULT_KIND.to_string())),
            ("spec_id", Json::Str(self.spec_id.clone())),
            ("key", Json::Str(self.key.clone())),
            ("xs", Json::Arr(self.xs.iter().map(|&x| Json::Num(x)).collect())),
            ("arm_names", Json::Arr(self.arm_names.iter().map(|n| Json::Str(n.clone())).collect())),
            ("seeds", Json::uint(self.n_seeds as u64)),
            ("samples", samples),
            (
                "counters",
                Json::obj([
                    ("scenarios_built", Json::uint(self.counters.scenarios_built as u64)),
                    ("cells_evaluated", Json::uint(self.counters.cells_evaluated as u64)),
                    (
                        "solver",
                        Json::obj([
                            ("outer_iterations", Json::uint(solver.outer_iterations)),
                            ("jong_iterations", Json::uint(solver.jong_iterations)),
                            ("kkt_solves", Json::uint(solver.kkt_solves)),
                            ("mu_bisect_evals", Json::uint(solver.mu_bisect_evals)),
                            ("sp2_fast_path_hits", Json::uint(solver.sp2_fast_path_hits)),
                            ("sp1_probe_evals", Json::uint(solver.sp1_probe_evals)),
                            ("lp_sorts", Json::uint(solver.lp_sorts)),
                            ("degraded_solves", Json::uint(solver.degraded_solves)),
                        ]),
                    ),
                ]),
            ),
        ]);
        let checksum = format!("{:016x}", fnv1a_64(doc.to_compact_string().as_bytes()));
        if let Json::Obj(members) = &mut doc {
            members.push(("checksum".to_string(), Json::Str(checksum)));
        }
        doc
    }

    /// Serializes to the compact single-line wire string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact_string()
    }

    /// Parses and structurally validates a wire document.
    ///
    /// # Errors
    ///
    /// [`ShardError::Codec`] on any missing field, type mismatch, version/kind mismatch,
    /// or dimension inconsistency (the sample tensor must be exactly
    /// `points × arms × seeds`).
    pub fn from_json(doc: &Json) -> Result<Self, ShardError> {
        let version = field(doc, "schema_version")?
            .as_u64()
            .ok_or_else(|| codec("schema_version must be an unsigned integer"))?;
        if version != SHARD_FORMAT_VERSION {
            return Err(codec(format!(
                "shard format version mismatch: expected {SHARD_FORMAT_VERSION}, got {version}"
            )));
        }
        let kind = field(doc, "kind")?.as_str().ok_or_else(|| codec("kind must be a string"))?;
        if kind != RESULT_KIND {
            return Err(codec(format!("expected kind {RESULT_KIND:?}, got {kind:?}")));
        }
        // Whole-document integrity check before trusting any value: hash the canonical
        // re-emission of everything but the checksum member. Our own compact output
        // re-emits byte-identically, so a corrupted byte either breaks the parse, changes
        // a value (hash mismatch), or was semantically inert — all three are safe.
        let checksum =
            field(doc, "checksum")?.as_str().ok_or_else(|| codec("checksum must be a string"))?;
        let payload = match doc {
            Json::Obj(members) => Json::Obj(
                members.iter().filter(|(k, _)| k.as_str() != "checksum").cloned().collect(),
            ),
            _ => return Err(codec("a shard result document must be an object")),
        };
        let actual = format!("{:016x}", fnv1a_64(payload.to_compact_string().as_bytes()));
        if actual != checksum {
            return Err(codec(format!(
                "checksum mismatch: document claims {checksum}, payload hashes to {actual} \
                 — the document was corrupted in transit"
            )));
        }
        let spec_id = field(doc, "spec_id")?
            .as_str()
            .ok_or_else(|| codec("spec_id must be a string"))?
            .to_string();
        let key =
            field(doc, "key")?.as_str().ok_or_else(|| codec("key must be a string"))?.to_string();
        let xs = field(doc, "xs")?
            .as_array()
            .ok_or_else(|| codec("xs must be an array"))?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| codec("xs entries must be numbers")))
            .collect::<Result<Vec<f64>, _>>()?;
        let arm_names = field(doc, "arm_names")?
            .as_array()
            .ok_or_else(|| codec("arm_names must be an array"))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| codec("arm_names entries must be strings"))
            })
            .collect::<Result<Vec<String>, _>>()?;
        let n_seeds = field(doc, "seeds")?
            .as_usize()
            .ok_or_else(|| codec("seeds must be an unsigned integer"))?;

        let points =
            field(doc, "samples")?.as_array().ok_or_else(|| codec("samples must be an array"))?;
        if points.len() != xs.len() {
            return Err(codec(format!(
                "samples has {} point rows, xs has {}",
                points.len(),
                xs.len()
            )));
        }
        let mut samples = Vec::with_capacity(xs.len() * arm_names.len() * n_seeds);
        for row in points {
            let arms = row.as_array().ok_or_else(|| codec("sample point rows must be arrays"))?;
            if arms.len() != arm_names.len() {
                return Err(codec(format!(
                    "a point row has {} arm cells, arm_names has {}",
                    arms.len(),
                    arm_names.len()
                )));
            }
            for cell in arms {
                let seeds =
                    cell.as_array().ok_or_else(|| codec("sample arm cells must be arrays"))?;
                if seeds.len() != n_seeds {
                    return Err(codec(format!(
                        "an arm cell has {} seed samples, seeds says {n_seeds}",
                        seeds.len()
                    )));
                }
                for sample in seeds {
                    samples.push(match sample {
                        Json::Null => None,
                        Json::Arr(pair) if pair.len() == 2 => {
                            let energy_j = pair[0]
                                .as_f64()
                                .ok_or_else(|| codec("sample energy must be a number"))?;
                            let time_s = pair[1]
                                .as_f64()
                                .ok_or_else(|| codec("sample time must be a number"))?;
                            Some(CellOutput::new(energy_j, time_s))
                        }
                        _ => return Err(codec("samples must be null or [energy, time] pairs")),
                    });
                }
            }
        }

        let counters_obj = field(doc, "counters")?;
        let solver_obj = field(counters_obj, "solver")?;
        let counter = |obj: &Json, name: &str| -> Result<u64, ShardError> {
            field(obj, name)?
                .as_u64()
                .ok_or_else(|| codec(format!("counter {name} must be an unsigned integer")))
        };
        let counters = SweepCounters {
            scenarios_built: counter(counters_obj, "scenarios_built")? as usize,
            cells_evaluated: counter(counters_obj, "cells_evaluated")? as usize,
            solver: SolveCounters {
                outer_iterations: counter(solver_obj, "outer_iterations")?,
                jong_iterations: counter(solver_obj, "jong_iterations")?,
                kkt_solves: counter(solver_obj, "kkt_solves")?,
                mu_bisect_evals: counter(solver_obj, "mu_bisect_evals")?,
                sp2_fast_path_hits: counter(solver_obj, "sp2_fast_path_hits")?,
                sp1_probe_evals: counter(solver_obj, "sp1_probe_evals")?,
                lp_sorts: counter(solver_obj, "lp_sorts")?,
                degraded_solves: counter(solver_obj, "degraded_solves")?,
            },
        };

        Ok(Self { spec_id, key, xs, arm_names, n_seeds, samples, counters })
    }

    /// [`ShardResult::from_json`] from text.
    ///
    /// # Errors
    ///
    /// [`ShardError::Codec`] on parse or structural failure.
    pub fn from_json_str(text: &str) -> Result<Self, ShardError> {
        let doc = Json::parse(text).map_err(|e| codec(format!("not valid JSON: {e}")))?;
        Self::from_json(&doc)
    }
}

fn codec(msg: impl Into<String>) -> ShardError {
    ShardError::Codec(msg.into())
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ShardError> {
    doc.get(key).ok_or_else(|| codec(format!("missing field {key:?}")))
}

/// Runs one shard spec in this process: compile the grid, evaluate with the spec's
/// engine, return the raw cell matrix stamped as a [`ShardResult`]. This is the body of
/// the `fedopt run --spec - --shard-json` worker mode.
///
/// # Errors
///
/// Validation errors, or any sweep error from the engine.
pub fn run_shard_in_process(spec: &ExperimentSpec) -> Result<ShardResult, SpecError> {
    run_shard_in_process_with_progress(spec, None)
}

/// [`run_shard_in_process`] with a live cells-completed observer: `progress` (when
/// given) is incremented once per evaluated cell while the sweep runs. The CLI worker
/// mode's heartbeat thread reads it to put real progress numbers on its
/// [`HEARTBEAT_PREFIX`] stderr lines.
///
/// # Errors
///
/// Validation errors, or any sweep error from the engine.
pub fn run_shard_in_process_with_progress(
    spec: &ExperimentSpec,
    progress: Option<&AtomicUsize>,
) -> Result<ShardResult, SpecError> {
    let grid = spec.grid()?;
    let engine = spec.engine.to_engine();
    let cells = engine.run_cells_with_progress(&grid, progress)?;
    Ok(ShardResult::from_cells(spec, cells))
}

// ---------------------------------------------------------------------------
// The on-disk cache
// ---------------------------------------------------------------------------

/// Content-addressed on-disk cache of finished shard results.
///
/// One file per shard, named `shard-<key>.json` after the shard spec's [`cache_key`].
/// Each entry wraps the [`ShardResult`] wire document with the FNV-1a hash of its
/// compact payload bytes; [`ShardCache::load`] re-hashes on read, so a truncated,
/// bit-flipped or hand-edited entry fails validation and reads as a miss (the shard is
/// recomputed and the entry overwritten) — corruption is never silently trusted. Writes
/// go through a temp file + rename, so a crashed writer leaves no half-written entry
/// under the final name. Entries carry no expiry: a key embeds everything that
/// determines the samples, so a hit can only go stale by bumping
/// [`SHARD_FORMAT_VERSION`].
#[derive(Debug, Clone)]
pub struct ShardCache {
    dir: PathBuf,
}

impl ShardCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ShardError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ShardError::Io(format!("cannot create {}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path of a cache key.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("shard-{key}.json"))
    }

    /// Loads and validates the entry of `key`. Any failure — missing file, unparsable
    /// JSON, wrong kind/version, key mismatch, payload-hash mismatch, malformed payload —
    /// is a miss (`None`), never an error: the coordinator recomputes and overwrites.
    pub fn load(&self, key: &str) -> Option<ShardResult> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("kind")?.as_str()? != ENTRY_KIND {
            return None;
        }
        if doc.get("schema_version")?.as_u64()? != SHARD_FORMAT_VERSION {
            return None;
        }
        if doc.get("key")?.as_str()? != key {
            return None;
        }
        let payload = doc.get("payload")?;
        let expected_hash = doc.get("payload_hash")?.as_str()?;
        let actual_hash = format!("{:016x}", fnv1a_64(payload.to_compact_string().as_bytes()));
        if actual_hash != expected_hash {
            return None;
        }
        let result = ShardResult::from_json(payload).ok()?;
        if result.key != key {
            return None;
        }
        Some(result)
    }

    /// Aggregate statistics of the cache directory: entry count/bytes plus leftover
    /// `*.json.tmp.<pid>` files from crashed (or currently in-flight) writers.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the directory cannot be listed.
    pub fn stats(&self) -> Result<CacheStats, ShardError> {
        let (entries, tmps) = self.scan()?;
        Ok(CacheStats {
            entries: entries.len() as u64,
            entry_bytes: entries.iter().map(|(_, n, _)| n).sum(),
            tmp_files: tmps.len() as u64,
            tmp_bytes: tmps.iter().map(|(_, n, _)| n).sum(),
        })
    }

    /// Garbage-collects the cache: removes crashed-writer temp files past their grace
    /// period ([`TMP_GRACE`], or `max_age` when that is sooner), expires entries older
    /// than `max_age`, then — when `max_bytes` is set — evicts the least-recently
    /// modified entries until the remainder fits the byte budget.
    ///
    /// Eviction is a plain unlink, which POSIX guarantees never disturbs a reader that
    /// already opened the file: an in-flight [`ShardCache::load`] finishes from the open
    /// descriptor, and the next load of that key is an ordinary miss. A concurrent
    /// writer is equally safe — [`ShardCache::store`] publishes by rename, so GC only
    /// ever sees complete entries or clearly-marked temp files.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the directory cannot be listed (individual remove
    /// failures are skipped — a file deleted by a concurrent GC is not an error).
    pub fn gc(
        &self,
        max_age: Option<Duration>,
        max_bytes: Option<u64>,
    ) -> Result<GcReport, ShardError> {
        let now = SystemTime::now();
        let age_of = |mtime: SystemTime| now.duration_since(mtime).unwrap_or(Duration::ZERO);
        let (mut entries, tmps) = self.scan()?;
        let mut report = GcReport::default();

        let tmp_cutoff = max_age.map_or(TMP_GRACE, |age| age.min(TMP_GRACE));
        for (path, _, mtime) in &tmps {
            if age_of(*mtime) >= tmp_cutoff && std::fs::remove_file(path).is_ok() {
                report.removed_tmp_files += 1;
            }
        }

        if let Some(max_age) = max_age {
            entries.retain(|(path, bytes, mtime)| {
                if age_of(*mtime) >= max_age && std::fs::remove_file(path).is_ok() {
                    report.evicted_entries += 1;
                    report.evicted_bytes += bytes;
                    false
                } else {
                    true
                }
            });
        }

        if let Some(max_bytes) = max_bytes {
            entries.sort_by_key(|e| e.2);
            let mut total: u64 = entries.iter().map(|(_, n, _)| *n).sum();
            let mut kept = Vec::with_capacity(entries.len());
            for (path, bytes, mtime) in entries {
                if total > max_bytes && std::fs::remove_file(&path).is_ok() {
                    report.evicted_entries += 1;
                    report.evicted_bytes += bytes;
                    total -= bytes;
                } else {
                    kept.push((path, bytes, mtime));
                }
            }
            entries = kept;
        }

        report.retained_entries = entries.len() as u64;
        report.retained_bytes = entries.iter().map(|(_, n, _)| n).sum();
        Ok(report)
    }

    /// Lists `(path, bytes, mtime)` of cache entries and of leftover temp files.
    fn scan(&self) -> Result<(Vec<ScanItem>, Vec<ScanItem>), ShardError> {
        let mut entries = Vec::new();
        let mut tmps = Vec::new();
        let listing = std::fs::read_dir(&self.dir)
            .map_err(|e| ShardError::Io(format!("cannot list {}: {e}", self.dir.display())))?;
        for item in listing {
            let Ok(item) = item else { continue };
            let name = item.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with("shard-") {
                continue;
            }
            let Ok(meta) = item.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            if name.contains(".json.tmp.") {
                tmps.push((item.path(), meta.len(), mtime));
            } else if name.ends_with(".json") {
                entries.push((item.path(), meta.len(), mtime));
            }
        }
        Ok((entries, tmps))
    }

    /// Stores a shard result under its own key (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] when the entry cannot be written.
    pub fn store(&self, result: &ShardResult) -> Result<(), ShardError> {
        let payload = result.to_json();
        let payload_hash = format!("{:016x}", fnv1a_64(payload.to_compact_string().as_bytes()));
        let entry = Json::obj([
            ("schema_version", Json::uint(SHARD_FORMAT_VERSION)),
            ("kind", Json::Str(ENTRY_KIND.to_string())),
            ("key", Json::Str(result.key.clone())),
            ("payload_hash", Json::Str(payload_hash)),
            ("payload", payload),
        ]);
        let path = self.entry_path(&result.key);
        let tmp = self.dir.join(format!("shard-{}.json.tmp.{}", result.key, std::process::id()));
        let io = |e: std::io::Error, what: &str| ShardError::Io(format!("{what}: {e}"));
        std::fs::write(&tmp, entry.to_compact_string())
            .map_err(|e| io(e, "writing cache temp file"))?;
        std::fs::rename(&tmp, &path).map_err(|e| io(e, "publishing cache entry"))?;
        Ok(())
    }
}

/// `(path, bytes, mtime)` of one cache directory file.
type ScanItem = (PathBuf, u64, SystemTime);

/// Aggregate statistics of a cache directory (see [`ShardCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of published cache entries.
    pub entries: u64,
    /// Total bytes of the published entries.
    pub entry_bytes: u64,
    /// Leftover `*.json.tmp.<pid>` files from crashed (or in-flight) writers.
    pub tmp_files: u64,
    /// Total bytes of the leftover temp files.
    pub tmp_bytes: u64,
}

/// What one [`ShardCache::gc`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries removed, by age or by the byte-budget LRU.
    pub evicted_entries: u64,
    /// Bytes reclaimed from evicted entries.
    pub evicted_bytes: u64,
    /// Crashed-writer temp files cleaned up.
    pub removed_tmp_files: u64,
    /// Entries kept.
    pub retained_entries: u64,
    /// Bytes kept.
    pub retained_bytes: u64,
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

/// Something that can run one shard spec to a [`ShardResult`] — in process for tests and
/// benchmarks, or as a `fedopt` subprocess for the fleet.
pub trait ShardRunner: Sync {
    /// Runs the shard.
    ///
    /// # Errors
    ///
    /// A [`ShardRunError`] whose message ends up verbatim in the partial-failure report
    /// (plus the last-heartbeat age, when the runner tracks one).
    fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, ShardRunError>;
}

/// Runs shards inside the coordinating process (no subprocess, no timeout).
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessRunner;

impl ShardRunner for InProcessRunner {
    fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, ShardRunError> {
        run_shard_in_process(spec).map_err(|e| ShardRunError::from(e.to_string()))
    }
}

/// Runs each shard as a subprocess of the `fedopt` binary: pipes the shard spec JSON to
/// `<program> run --spec - --shard-json` and parses the [`ShardResult`] document the
/// worker streams back on stdout. Enforces a per-shard wall-clock timeout **and** a
/// heartbeat-silence timeout — workers periodically print [`HEARTBEAT_PREFIX`] lines on
/// stderr, and a worker that goes quiet for [`DEFAULT_HEARTBEAT_TIMEOUT`] is killed as
/// stalled long before its wall-clock budget runs out. Non-heartbeat stderr is captured
/// into a [`STDERR_TAIL_BUDGET`]-bounded tail for failure reports, so a log-flooding
/// worker cannot balloon the coordinator's memory. The child inherits the coordinator's
/// environment — crucially including [`crate::engine::WARM_START_ENV`], so the
/// warm-start switch (and with it the cache key) agrees across the fleet — with only the
/// worker thread count ([`crate::engine::THREADS_ENV`]) overridden to divide the machine
/// between concurrent shards.
#[derive(Debug, Clone)]
pub struct SubprocessRunner {
    program: PathBuf,
    timeout: Duration,
    heartbeat_timeout: Option<Duration>,
    heartbeat_interval: Option<Duration>,
    child_threads: Option<usize>,
}

impl SubprocessRunner {
    /// A runner spawning `program` with the default timeouts.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            timeout: DEFAULT_SHARD_TIMEOUT,
            heartbeat_timeout: Some(DEFAULT_HEARTBEAT_TIMEOUT),
            heartbeat_interval: None,
            child_threads: None,
        }
    }

    /// Sets the per-shard wall-clock timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets (or with `None` disables) the heartbeat-silence timeout.
    #[must_use]
    pub fn with_heartbeat_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Paces every child's heartbeat emission (via [`HEARTBEAT_INTERVAL_ENV`]). The
    /// caller is responsible for keeping the interval below the heartbeat-silence
    /// timeout — the CLI rejects the inverted configuration at parse time, because a
    /// silence window shorter than the beat cadence kills every healthy worker.
    #[must_use]
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        self.heartbeat_interval = Some(interval);
        self
    }

    /// Pins every child's worker thread count (via [`crate::engine::THREADS_ENV`]).
    #[must_use]
    pub fn with_child_threads(mut self, threads: usize) -> Self {
        self.child_threads = Some(threads.max(1));
        self
    }
}

/// Shared per-worker stderr capture: the byte-bounded tail, the heartbeat liveness
/// clock, and the last well-formed progress payload. Public so the heartbeat-parsing
/// fuzz suite can drive it with arbitrary interleaved/truncated stderr directly.
#[derive(Debug, Default)]
pub struct StderrState {
    tail: VecDeque<String>,
    tail_bytes: usize,
    truncated: bool,
    last_heartbeat: Option<Instant>,
    last_cells: Option<u64>,
}

impl StderrState {
    /// Feeds one stderr line (without its newline) into the capture. Any
    /// [`HEARTBEAT_PREFIX`]-prefixed line — however mangled its payload — advances the
    /// liveness clock and stays out of the tail; only a line [`parse_heartbeat`]
    /// accepts updates the cells-evaluated progress reading. Everything else lands in
    /// the [`STDERR_TAIL_BUDGET`]-bounded tail, oldest lines dropped first.
    pub fn observe(&mut self, line: &str) {
        if line.starts_with(HEARTBEAT_PREFIX) {
            self.last_heartbeat = Some(Instant::now());
            if let Some((_, cells)) = parse_heartbeat(line) {
                self.last_cells = Some(cells);
            }
            return;
        }
        let mut line = line.to_string();
        if line.len() > STDERR_TAIL_BUDGET {
            let mut cut = STDERR_TAIL_BUDGET;
            while !line.is_char_boundary(cut) {
                cut -= 1;
            }
            line.truncate(cut);
            self.truncated = true;
        }
        self.tail_bytes += line.len();
        self.tail.push_back(line);
        while self.tail_bytes > STDERR_TAIL_BUDGET && self.tail.len() > 1 {
            let dropped = self.tail.pop_front().expect("tail is non-empty");
            self.tail_bytes -= dropped.len();
            self.truncated = true;
        }
    }

    /// Renders the captured non-heartbeat tail for a failure report.
    pub fn render_tail(&self) -> String {
        if self.tail.is_empty() {
            return "(no stderr)".to_string();
        }
        let joined = self.tail.iter().map(String::as_str).collect::<Vec<_>>().join(" | ");
        if self.truncated {
            format!("… (truncated) | {joined}")
        } else {
            joined
        }
    }

    /// When the last heartbeat line was observed, however mangled its payload.
    pub fn last_heartbeat(&self) -> Option<Instant> {
        self.last_heartbeat
    }

    /// The cells-evaluated count of the last *well-formed* heartbeat line.
    pub fn last_cells(&self) -> Option<u64> {
        self.last_cells
    }
}

/// How the subprocess poll loop ended.
enum WorkerExit {
    Status(std::process::ExitStatus),
    Killed(String),
}

impl ShardRunner for SubprocessRunner {
    fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, ShardRunError> {
        let payload = spec.to_json_string();
        let mut cmd = Command::new(&self.program);
        cmd.args(["run", "--spec", "-", "--shard-json"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(threads) = self.child_threads {
            cmd.env(THREADS_ENV, threads.to_string());
        }
        if let Some(interval) = self.heartbeat_interval {
            cmd.env(HEARTBEAT_INTERVAL_ENV, interval.as_millis().to_string());
        }
        let mut child = cmd.spawn().map_err(|e| {
            ShardRunError::from(format!("cannot spawn {}: {e}", self.program.display()))
        })?;

        // Dedicated threads for all three pipes: a worker blocked writing stdout while
        // the coordinator blocks writing a large spec to stdin would deadlock both.
        let mut stdin = child.stdin.take().expect("stdin was piped");
        let stdin_writer = std::thread::spawn(move || {
            let _ = stdin.write_all(payload.as_bytes());
            // Dropping stdin closes the pipe — the worker's read loop sees EOF.
        });
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let stdout_reader = std::thread::spawn(move || {
            let mut buf = String::new();
            let _ = std::io::Read::read_to_string(&mut stdout, &mut buf);
            buf
        });
        // Stderr is read incrementally while the child runs: heartbeat lines feed the
        // liveness clock (and are excluded from capture), everything else lands in the
        // bounded tail.
        let stderr = child.stderr.take().expect("stderr was piped");
        let state = Arc::new(Mutex::new(StderrState::default()));
        let reader_state = Arc::clone(&state);
        let stderr_reader = std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(stderr);
            let mut buf = Vec::new();
            loop {
                buf.clear();
                match std::io::BufRead::read_until(&mut reader, b'\n', &mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        let text = String::from_utf8_lossy(&buf);
                        let line = text.trim_end_matches(['\n', '\r']);
                        reader_state.lock().expect("stderr state poisoned").observe(line);
                    }
                }
            }
        });

        let start = Instant::now();
        let deadline = start + self.timeout;
        let exit = loop {
            match child.try_wait() {
                Ok(Some(status)) => break WorkerExit::Status(status),
                Ok(None) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break WorkerExit::Killed(format!(
                            "timed out after {:.0?} (worker killed)",
                            self.timeout
                        ));
                    }
                    if let Some(max_silence) = self.heartbeat_timeout {
                        let last = state.lock().expect("stderr state poisoned").last_heartbeat;
                        let silence = now.duration_since(last.unwrap_or(start));
                        if silence >= max_silence {
                            break WorkerExit::Killed(format!(
                                "no heartbeat for {silence:.0?} (worker killed as stalled)"
                            ));
                        }
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => break WorkerExit::Killed(format!("waiting on worker failed: {e}")),
            }
        };
        if matches!(exit, WorkerExit::Killed(_)) {
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = stdin_writer.join();
        let stdout_text = stdout_reader.join().unwrap_or_default();
        let _ = stderr_reader.join();

        let (tail, last_heartbeat_s) = {
            let st = state.lock().expect("stderr state poisoned");
            let age = st.last_heartbeat.map(|t| Instant::now().duration_since(t).as_secs_f64());
            (st.render_tail(), age)
        };
        let fail = |message: String| ShardRunError { message, last_heartbeat_s };

        let status = match exit {
            WorkerExit::Killed(reason) => return Err(fail(format!("{reason}; stderr: {tail}"))),
            WorkerExit::Status(status) => status,
        };
        if !status.success() {
            return Err(fail(format!("worker exited with {status}; stderr: {tail}")));
        }
        ShardResult::from_json_str(&stdout_text).map_err(|e| fail(format!("{e}; stderr: {tail}")))
    }
}

// ---------------------------------------------------------------------------
// The coordinator
// ---------------------------------------------------------------------------

/// How a fleet run is shaped: shard count, optional result cache, worker-pool bound,
/// retry policy, and the salvage switch.
#[derive(Debug)]
pub struct FleetOptions {
    /// Number of shards to split into (clamped to the seed count; must be ≥ 1).
    pub shards: usize,
    /// Content-addressed result cache; `None` disables caching entirely.
    pub cache: Option<ShardCache>,
    /// Maximum shards in flight at once. `None` = `min(shards, available cores)`.
    pub concurrency: Option<usize>,
    /// Retries per failed shard beyond its first attempt (`0` disables retries).
    pub max_retries: usize,
    /// Base delay of the deterministic exponential backoff between attempts (see
    /// [`backoff_delay`]). `Duration::ZERO` disables waiting.
    pub backoff: Duration,
    /// Salvage mode: when some shards fail terminally but at least one completes, merge
    /// the survivors and record the missing seed ranges as explicit holes
    /// ([`FleetStats::holes`]) instead of failing the run. The merged means cover the
    /// surviving samples only — the holes, not any renormalization, are the record of
    /// what is missing.
    pub allow_partial: bool,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            shards: 0,
            cache: None,
            concurrency: None,
            max_retries: DEFAULT_MAX_RETRIES,
            backoff: DEFAULT_RETRY_BACKOFF,
            allow_partial: false,
        }
    }
}

/// The deterministic exponential backoff before the `retry`-th retry (1-based) of a
/// failed shard: `base · 2^(retry−1)`, capped at 10 seconds. No jitter on purpose —
/// chaos tests assert exact retry schedules, and concurrent shards already
/// desynchronize naturally.
pub fn backoff_delay(base: Duration, retry: usize) -> Duration {
    const CAP: Duration = Duration::from_secs(10);
    let exponent = u32::try_from(retry.saturating_sub(1)).unwrap_or(u32::MAX).min(20);
    base.saturating_mul(1u32 << exponent).min(CAP)
}

/// What the coordinator observed: cache traffic, retries, and — in salvage mode — the
/// holes left by terminally failed shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Shards answered from the cache.
    pub shard_cache_hits: u64,
    /// Shards that had to be computed (cache configured but entry absent or invalid).
    pub shard_cache_misses: u64,
    /// Failed attempts that were retried (successfully or not).
    pub retries: u64,
    /// Terminally failed shards whose seed ranges are **missing** from the merged result.
    /// Always empty unless [`FleetOptions::allow_partial`] salvaged the run — consumers
    /// must surface these loudly, never fold them into a mean silently.
    pub holes: Vec<ShardFailure>,
    /// How many shards the run actually split into (after clamping to the seed count).
    /// Recorded in salvaged documents as `shard_count` so `fedopt run --fill-holes` can
    /// reproduce the identical split without the caller re-supplying `--shards`.
    pub shards: usize,
    /// Whether a cache was configured (the hit/miss counters are only meaningful then).
    pub cache_enabled: bool,
}

/// Splits the spec, runs every shard (bounded concurrency, cache-first, configurable
/// retries with deterministic backoff), and merges the shard results into the exact
/// [`SweepResult`] of a single-process run.
///
/// The worker pool claims shards in index order; results are merged strictly in shard
/// order afterwards, so completion order never affects the output. A failed shard is
/// retried [`FleetOptions::max_retries`] times with [`backoff_delay`] waits between
/// attempts. Shards that still fail are collected into one loud [`ShardError::Partial`]
/// report naming each failed shard's seed range, last error, and last heartbeat age —
/// unless [`FleetOptions::allow_partial`] is set and at least one shard completed, in
/// which case the survivors are merged (bit-identical to their fault-free samples, the
/// replay simply skips the holes) and the failures come back as [`FleetStats::holes`].
///
/// # Errors
///
/// [`ShardError::Spec`] on an invalid parent spec, [`ShardError::Partial`] when shards
/// fail terminally (and salvage is off, or nothing completed), [`ShardError::Merge`]
/// when shard results are mutually inconsistent.
pub fn run_fleet(
    spec: &ExperimentSpec,
    opts: &FleetOptions,
    runner: &dyn ShardRunner,
) -> Result<(SweepResult, FleetStats), ShardError> {
    let shard_specs = split(spec, opts.shards)?;
    let keys: Vec<String> = shard_specs.iter().map(cache_key).collect();
    let total = shard_specs.len();
    let workers = opts
        .concurrency
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
        .clamp(1, total);

    let next = AtomicUsize::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let slots: Mutex<Vec<Option<Result<ShardResult, ShardFailure>>>> =
        Mutex::new((0..total).map(|_| None).collect());

    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            return;
        }
        let shard_spec = &shard_specs[i];
        let key = &keys[i];
        let outcome = run_one_shard(shard_spec, key, opts, runner, (&hits, &misses, &retries))
            .map_err(|(attempts, error)| ShardFailure {
                index: i,
                seeds: describe_seeds(shard_spec),
                attempts,
                error: error.message,
                last_heartbeat_s: error.last_heartbeat_s,
            });
        slots.lock().expect("shard slots poisoned")[i] = Some(outcome);
    };
    if workers == 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
            for h in handles {
                h.join().expect("fleet worker panicked");
            }
        });
    }

    let slots = slots.into_inner().expect("shard slots poisoned");
    let mut survivors: Vec<(usize, ShardResult)> = Vec::with_capacity(total);
    let mut failures: Vec<ShardFailure> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.expect("every shard slot must be filled") {
            Ok(result) => survivors.push((i, result)),
            Err(failure) => failures.push(failure),
        }
    }
    let completed = survivors.len();
    if !failures.is_empty() {
        let salvageable = opts.allow_partial && completed > 0;
        if !salvageable {
            return Err(ShardError::Partial { failures, completed, total });
        }
    }

    let stats = FleetStats {
        shard_cache_hits: hits.into_inner(),
        shard_cache_misses: misses.into_inner(),
        retries: retries.into_inner(),
        holes: failures,
        shards: total,
        cache_enabled: opts.cache.is_some(),
    };
    let merged = merge(spec, &shard_specs, &survivors)?;
    Ok((merged, stats))
}

/// Cache-first execution of one shard with [`FleetOptions::max_retries`] retries and
/// deterministic backoff. Returns `(attempts, error)` on terminal failure.
fn run_one_shard(
    shard_spec: &ExperimentSpec,
    key: &str,
    opts: &FleetOptions,
    runner: &dyn ShardRunner,
    (hits, misses, retries): (&AtomicU64, &AtomicU64, &AtomicU64),
) -> Result<ShardResult, (usize, ShardRunError)> {
    if let Some(cache) = opts.cache.as_ref() {
        if let Some(result) = cache.load(key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return Ok(result);
        }
        misses.fetch_add(1, Ordering::Relaxed);
    }
    let mut attempts = 0usize;
    let result = loop {
        attempts += 1;
        match runner.run_shard(shard_spec) {
            Ok(result) => break result,
            Err(error) if attempts <= opts.max_retries => {
                retries.fetch_add(1, Ordering::Relaxed);
                let _ = error;
                std::thread::sleep(backoff_delay(opts.backoff, attempts));
            }
            Err(error) => return Err((attempts, error)),
        }
    };
    if result.spec_id != shard_spec.id {
        return Err((
            attempts,
            ShardRunError::from(format!(
                "worker answered for spec {:?}, expected {:?}",
                result.spec_id, shard_spec.id
            )),
        ));
    }
    if result.key != key {
        return Err((
            attempts,
            ShardRunError::from(format!(
                "worker computed cache key {} for a shard the coordinator keyed {key} — \
                 the worker ran under a different effective configuration",
                result.key
            )),
        ));
    }
    if let Some(cache) = opts.cache.as_ref() {
        if let Err(e) = cache.store(&result) {
            // A failed store only loses future cache hits; the shard's result is good.
            eprintln!("warning: {e}");
        }
    }
    Ok(result)
}

/// Replays the surviving shard results, in shard order, into the single-process
/// [`SweepResult`]. With every shard present this is bit-identical to the unsharded
/// run; in salvage mode the fold simply skips the holes, so each (point, arm) aggregate
/// covers exactly the surviving shards' samples — bit-identical to those shards'
/// fault-free contribution, never a renormalized approximation of the full sweep.
fn merge(
    spec: &ExperimentSpec,
    shard_specs: &[ExperimentSpec],
    survivors: &[(usize, ShardResult)],
) -> Result<SweepResult, ShardError> {
    let first =
        survivors.first().map(|(_, r)| r).ok_or_else(|| ShardError::Merge("no shards".into()))?;
    let n_points = first.xs.len();
    let n_arms = first.arm_names.len();
    let mut accumulators: Vec<AggregateAccumulator> =
        vec![AggregateAccumulator::new(); n_points * n_arms];
    let mut counters = SweepCounters::default();

    for (i, result) in survivors {
        let shard_spec = &shard_specs[*i];
        if result.spec_id != spec.id {
            return Err(ShardError::Merge(format!(
                "shard {i} answers spec {:?}, expected {:?}",
                result.spec_id, spec.id
            )));
        }
        if result.xs != first.xs || result.arm_names != first.arm_names {
            return Err(ShardError::Merge(format!(
                "shard {i} evaluated a different grid (points/arms mismatch)"
            )));
        }
        let expected_seeds = shard_spec.seeds.len();
        if result.n_seeds as u64 != expected_seeds {
            return Err(ShardError::Merge(format!(
                "shard {i} carries {} seeds, its spec has {expected_seeds}",
                result.n_seeds
            )));
        }
        for p in 0..n_points {
            for a in 0..n_arms {
                accumulators[p * n_arms + a].merge_samples(result.cell_slice(p, a));
            }
        }
        counters.merge(&result.counters);
    }

    let aggregates: Vec<Vec<Aggregate>> = (0..n_points)
        .map(|p| (0..n_arms).map(|a| accumulators[p * n_arms + a].finish()).collect())
        .collect();
    Ok(SweepResult {
        xs: first.xs.clone(),
        arm_names: first.arm_names.clone(),
        aggregates,
        counters,
    })
}

/// Human-readable seed sub-range of a shard spec, for failure reports and for matching
/// a salvaged document's `shard_holes` back to a re-split (`fedopt run --fill-holes`).
pub(crate) fn describe_seeds(spec: &ExperimentSpec) -> String {
    match &spec.seeds.policy {
        SeedPolicy::Range { start, count } => format!("{start}..{}", start + count),
        SeedPolicy::List(seeds) => format!("list of {}", seeds.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeedSpec;

    fn tiny_spec() -> ExperimentSpec {
        let mut spec = crate::presets::spec(2, crate::presets::Variant::Quick).unwrap();
        spec.override_seed_count(5);
        spec
    }

    #[test]
    fn split_partitions_a_range_exactly() {
        let mut spec = tiny_spec();
        spec.seeds =
            SeedSpec { policy: SeedPolicy::Range { start: 7, count: 10 }, ..spec.seeds.clone() };
        let shards = split(&spec, 3).unwrap();
        assert_eq!(shards.len(), 3);
        let concatenated: Vec<u64> = shards.iter().flat_map(|s| s.seeds.values()).collect();
        assert_eq!(concatenated, spec.seeds.values());
        // Balanced to within one seed.
        let sizes: Vec<u64> = shards.iter().map(|s| s.seeds.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        // Everything but the seed policy is untouched.
        for shard in &shards {
            assert_eq!(shard.id, spec.id);
            assert_eq!(shard.arms, spec.arms);
            assert_eq!(shard.axis, spec.axis);
        }
    }

    #[test]
    fn split_clamps_to_the_seed_count_and_rejects_zero() {
        let spec = tiny_spec(); // 5 seeds
        assert_eq!(split(&spec, 16).unwrap().len(), 5);
        assert_eq!(split(&spec, 1).unwrap().len(), 1);
        assert!(matches!(split(&spec, 0), Err(ShardError::Merge(_))));
    }

    #[test]
    fn split_partitions_a_list_exactly() {
        let mut spec = tiny_spec();
        spec.seeds = SeedSpec::list([11u64, 3, 5, 8, 2, 13, 1]);
        let shards = split(&spec, 4).unwrap();
        let concatenated: Vec<u64> = shards.iter().flat_map(|s| s.seeds.values()).collect();
        assert_eq!(concatenated, vec![11, 3, 5, 8, 2, 13, 1]);
    }

    #[test]
    fn cache_key_ignores_naming_and_scheduling_but_not_results() {
        let spec = tiny_spec();
        let base = cache_key(&spec);
        assert_eq!(base.len(), 16, "16 hex digits");

        // Renaming, describing, re-reporting, re-threading: same key.
        let mut renamed = spec.clone();
        renamed.id = "renamed".to_string();
        renamed.description = "something else".to_string();
        renamed.reports.clear();
        renamed.engine.threads = Some(7);
        renamed.engine.streaming = Some(false);
        renamed.engine.seed_chunk = Some(3);
        assert_eq!(cache_key(&renamed), base);

        // A different seed range: different key.
        let mut other_seeds = spec.clone();
        other_seeds.seeds =
            SeedSpec { policy: SeedPolicy::Range { start: 1, count: 5 }, ..spec.seeds.clone() };
        assert_ne!(cache_key(&other_seeds), base);

        // A different solver preset: different key.
        let mut other_solver = spec.clone();
        other_solver.solver.preset = SolverPreset::Default;
        assert_ne!(cache_key(&other_solver), base);

        // The warm-start switch is result-affecting: different key. (Guarded on a silent
        // environment — under FEDOPT_WARM_START the env pin wins for both, by design.)
        if warm_start_env().is_none() {
            let mut cold = spec.clone();
            cold.engine.warm_start = Some(false);
            assert_ne!(cache_key(&cold), base);
        }
    }

    #[test]
    fn shard_result_round_trips_through_the_wire_format() {
        let spec = split(&tiny_spec(), 3).unwrap().remove(1);
        let result = run_shard_in_process(&spec).unwrap();
        let text = result.to_json_string();
        let back = ShardResult::from_json_str(&text).unwrap();
        assert_eq!(back, result);
        // And the document is byte-stable.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn malformed_shard_documents_are_rejected_with_context() {
        let spec = split(&tiny_spec(), 5).unwrap().remove(0);
        let good = run_shard_in_process(&spec).unwrap().to_json_string();
        for (needle, replacement) in [
            ("\"kind\":\"fedopt_shard_result\"", "\"kind\":\"something\""),
            ("\"schema_version\":2", "\"schema_version\":9"),
            ("\"seeds\":1", "\"seeds\":2"),
        ] {
            let bad = good.replacen(needle, replacement, 1);
            assert_ne!(bad, good, "replacement {needle:?} must apply");
            assert!(ShardResult::from_json_str(&bad).is_err(), "{needle} must be rejected");
        }
        assert!(ShardResult::from_json_str("not json").is_err());
        assert!(ShardResult::from_json_str("{}").is_err());
    }

    #[test]
    fn wire_checksum_rejects_single_byte_corruption() {
        let spec = split(&tiny_spec(), 5).unwrap().remove(0);
        let good = run_shard_in_process(&spec).unwrap().to_json_string();
        let corrupted = crate::fault::corrupt_payload(&good);
        assert_ne!(corrupted, good);
        match ShardResult::from_json_str(&corrupted) {
            Err(ShardError::Codec(_)) => {}
            Err(other) => panic!("expected a codec error, got {other:?}"),
            Ok(result) => assert_eq!(
                result,
                ShardResult::from_json_str(&good).unwrap(),
                "corruption may only be accepted when semantically inert"
            ),
        }
        // Dropping the checksum member entirely is equally fatal.
        let good_doc = run_shard_in_process(&spec).unwrap().to_json();
        if let Json::Obj(mut members) = good_doc {
            members.retain(|(k, _)| k != "checksum");
            let stripped = Json::Obj(members).to_compact_string();
            assert!(ShardResult::from_json_str(&stripped).is_err());
        } else {
            panic!("shard result must serialize to an object");
        }
    }

    #[test]
    fn degraded_solves_travel_on_the_wire() {
        let spec = split(&tiny_spec(), 5).unwrap().remove(0);
        let mut result = run_shard_in_process(&spec).unwrap();
        result.counters.solver.degraded_solves = 3;
        let back = ShardResult::from_json_str(&result.to_json_string()).unwrap();
        assert_eq!(back.counters.solver.degraded_solves, 3);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let base = Duration::from_millis(100);
        assert_eq!(backoff_delay(base, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, 2), Duration::from_millis(200));
        assert_eq!(backoff_delay(base, 3), Duration::from_millis(400));
        assert_eq!(backoff_delay(Duration::from_secs(8), 4), Duration::from_secs(10));
        assert_eq!(backoff_delay(Duration::ZERO, 7), Duration::ZERO);
        // Huge retry indices saturate instead of overflowing the shift.
        assert_eq!(backoff_delay(base, usize::MAX), Duration::from_secs(10));
    }

    #[test]
    fn stderr_tail_is_byte_bounded_and_marks_truncation() {
        let mut state = StderrState::default();
        assert_eq!(state.render_tail(), "(no stderr)");
        state.observe("short line");
        assert_eq!(state.render_tail(), "short line");
        for i in 0..200 {
            state.observe(&format!("noise line {i} {}", "x".repeat(64)));
        }
        let tail = state.render_tail();
        assert!(tail.starts_with("… (truncated) | "), "{tail}");
        assert!(tail.len() <= STDERR_TAIL_BUDGET + 64, "tail must stay near budget");
        assert!(tail.contains("noise line 199"), "newest lines survive");
        assert!(!tail.contains("short line"), "oldest lines are dropped");
        // Heartbeat lines feed the clock, not the tail.
        assert!(state.last_heartbeat.is_none());
        state.observe(&format!("{HEARTBEAT_PREFIX} t=1.0s cells=5"));
        assert!(state.last_heartbeat.is_some());
        assert!(!state.render_tail().contains(HEARTBEAT_PREFIX));
        // A single over-budget line is cut, not kept whole.
        let mut fat = StderrState::default();
        fat.observe(&"y".repeat(STDERR_TAIL_BUDGET * 3));
        assert!(fat.render_tail().len() <= STDERR_TAIL_BUDGET + 32);
        assert!(fat.truncated);
    }

    #[test]
    fn heartbeat_lines_parse_tolerantly_and_feed_the_progress_reading() {
        assert_eq!(parse_heartbeat("fedopt-heartbeat t=1.5s cells=42"), Some((1.5, 42)));
        // Token order and unknown tokens are free; both payload fields are required.
        assert_eq!(parse_heartbeat("fedopt-heartbeat cells=7 t=0.0s extra=1"), Some((0.0, 7)));
        for mangled in [
            "fedopt-heartbeat",
            "fedopt-heartbeat t=1.5s",
            "fedopt-heartbeat cells=42",
            "fedopt-heartbeat t=1.5 cells=42", // missing the `s` suffix
            "fedopt-heartbeat t=-1.0s cells=42", // negative time
            "fedopt-heartbeat t=nans cells=42", // non-finite time
            "fedopt-heartbeat t=1.5s cells=-3", // negative count
            "fedopt-heartbeat t=1.5s cells=4x2", // interleaved bytes mid-number
            "unrelated stderr line",           // no prefix at all
        ] {
            assert_eq!(parse_heartbeat(mangled), None, "{mangled:?}");
        }
        // A mangled beat still counts as liveness but never moves the progress reading.
        let mut state = StderrState::default();
        state.observe("fedopt-heartbeat t=2.0s cells=11");
        assert_eq!(state.last_cells(), Some(11));
        state.observe("fedopt-heartbeat t=3.0s cells=ga rbage");
        assert!(state.last_heartbeat().is_some());
        assert_eq!(state.last_cells(), Some(11), "garbage must not clobber progress");
    }

    #[test]
    fn heartbeat_interval_text_parses_strictly() {
        assert_eq!(parse_heartbeat_interval("500"), Ok(Duration::from_millis(500)));
        assert_eq!(parse_heartbeat_interval(" 25 "), Ok(Duration::from_millis(25)));
        for bad in ["0", "-5", "0.5", "fast", ""] {
            let err = parse_heartbeat_interval(bad).unwrap_err();
            assert!(err.contains(HEARTBEAT_INTERVAL_ENV), "{bad:?}: {err}");
        }
    }

    #[test]
    fn cache_gc_respects_age_and_byte_budgets() {
        let dir = std::env::temp_dir().join(format!("fedopt-cache-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ShardCache::open(&dir).unwrap();
        let shards = split(&tiny_spec(), 3).unwrap();
        let results: Vec<ShardResult> =
            shards.iter().map(|s| run_shard_in_process(s).unwrap()).collect();
        for r in &results {
            cache.store(r).unwrap();
        }
        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 3);
        assert!(stats.entry_bytes > 0);
        assert_eq!(stats.tmp_files, 0);

        // Nothing is old and no byte budget binds: nothing evicted.
        let report = cache.gc(Some(Duration::from_secs(3600)), None).unwrap();
        assert_eq!(report.evicted_entries, 0);
        assert_eq!(report.retained_entries, 3);

        let backdate = |path: &Path, secs: u64| {
            let f = std::fs::OpenOptions::new().append(true).open(path).unwrap();
            f.set_modified(SystemTime::now() - Duration::from_secs(secs)).unwrap();
        };

        // Age out one entry by back-dating its mtime.
        backdate(&cache.entry_path(&results[0].key), 7200);
        let report = cache.gc(Some(Duration::from_secs(3600)), None).unwrap();
        assert_eq!(report.evicted_entries, 1);
        assert!(cache.load(&results[0].key).is_none());
        assert!(cache.load(&results[1].key).is_some());

        // Byte budget: least-recently-modified entries go first until the rest fit.
        backdate(&cache.entry_path(&results[1].key), 60);
        let budget = cache.stats().unwrap().entry_bytes - 1; // forces ≥ 1 eviction
        let report = cache.gc(None, Some(budget)).unwrap();
        assert!(report.evicted_entries >= 1);
        assert!(cache.load(&results[1].key).is_none(), "the oldest entry goes first");
        assert!(cache.load(&results[2].key).is_some(), "the newest survives");
        assert!(cache.stats().unwrap().entry_bytes <= budget);
        assert_eq!(report.retained_bytes, cache.stats().unwrap().entry_bytes);

        // Crashed-writer temp files are cleaned once past the grace period — and a
        // fresh one is left alone (it may belong to a live writer).
        let stale = dir.join("shard-deadbeef.json.tmp.999");
        let fresh = dir.join("shard-cafebabe.json.tmp.998");
        std::fs::write(&stale, "half-written").unwrap();
        std::fs::write(&fresh, "half-written").unwrap();
        backdate(&stale, 7200);
        let report = cache.gc(None, None).unwrap();
        assert_eq!(report.removed_tmp_files, 1);
        assert!(!stale.exists());
        assert!(fresh.exists());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn salvaged_merge_is_bit_identical_to_surviving_shards_with_explicit_holes() {
        let spec = tiny_spec();
        let shards = split(&spec, 3).unwrap();
        let failing = describe_seeds(&shards[1]);

        struct FailSeeds(String);
        impl ShardRunner for FailSeeds {
            fn run_shard(&self, spec: &ExperimentSpec) -> Result<ShardResult, ShardRunError> {
                if describe_seeds(spec) == self.0 {
                    return Err(ShardRunError {
                        message: "injected terminal failure".to_string(),
                        last_heartbeat_s: Some(1.5),
                    });
                }
                run_shard_in_process(spec).map_err(|e| ShardRunError::from(e.to_string()))
            }
        }
        let runner = FailSeeds(failing.clone());

        // Without salvage: a loud typed Partial error naming the heartbeat age.
        let opts = FleetOptions { shards: 3, max_retries: 0, ..FleetOptions::default() };
        let err = run_fleet(&spec, &opts, &runner).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("fleet run FAILED"), "{text}");
        assert!(text.contains("last heartbeat 1.5s before failure"), "{text}");

        // With salvage: the survivors merge, the hole is explicit.
        let opts = FleetOptions {
            shards: 3,
            max_retries: 0,
            allow_partial: true,
            ..FleetOptions::default()
        };
        let (salvaged, stats) = run_fleet(&spec, &opts, &runner).unwrap();
        assert_eq!(stats.holes.len(), 1);
        assert_eq!(stats.holes[0].index, 1);
        assert_eq!(stats.holes[0].seeds, failing);
        assert_eq!(stats.holes[0].last_heartbeat_s, Some(1.5));
        assert!(!stats.cache_enabled);

        // Bit-identity: replay shards 0 and 2 by hand and compare every aggregate bit.
        let r0 = run_shard_in_process(&shards[0]).unwrap();
        let r2 = run_shard_in_process(&shards[2]).unwrap();
        let expected = merge(&spec, &shards, &[(0, r0), (2, r2)]).unwrap();
        assert_eq!(salvaged.xs, expected.xs);
        for (p, (got_row, want_row)) in
            salvaged.aggregates.iter().zip(&expected.aggregates).enumerate()
        {
            for (a, (got, want)) in got_row.iter().zip(want_row).enumerate() {
                assert_eq!(got.count, want.count, "count at ({p},{a})");
                assert_eq!(
                    got.mean_energy_j.to_bits(),
                    want.mean_energy_j.to_bits(),
                    "energy bits at ({p},{a})"
                );
                assert_eq!(
                    got.mean_time_s.to_bits(),
                    want.mean_time_s.to_bits(),
                    "time bits at ({p},{a})"
                );
            }
        }

        // All shards failing: salvage has nothing to save — still a typed error.
        struct FailAll;
        impl ShardRunner for FailAll {
            fn run_shard(&self, _: &ExperimentSpec) -> Result<ShardResult, ShardRunError> {
                Err(ShardRunError::from("boom".to_string()))
            }
        }
        let opts = FleetOptions {
            shards: 3,
            max_retries: 0,
            allow_partial: true,
            ..FleetOptions::default()
        };
        assert!(matches!(
            run_fleet(&spec, &opts, &FailAll).unwrap_err(),
            ShardError::Partial { .. }
        ));
    }
}
