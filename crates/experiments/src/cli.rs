//! The `fedopt` command line: one binary for every figure and every spec.
//!
//! The eight historical per-figure binaries collapsed into this module — one **tested**
//! argument parser (the `--seeds/--threads/--paper/--quick` conventions the old bins
//! shared by copy-paste, now unit-tested in one place) and one dispatcher:
//!
//! ```text
//! fedopt list                                   # the figure presets and what they show
//! fedopt spec --fig 2 [--paper] [--seeds N]     # print a figure's ExperimentSpec as JSON
//! fedopt run  --fig 2 [--paper] [--seeds N] [--threads N] [--json]
//! fedopt run  --spec experiment.json [--json]   # run any serialized spec ("-" = stdin)
//! fedopt spec --fig 2 | fedopt run --spec -     # specs are data: pipe them
//! fedopt sim  --preset rounds-quick [--json]    # round-structured FL simulation
//! fedopt spec --preset rounds-quick             # print a sim preset's spec
//! ```
//!
//! `run` prints each report as an aligned table plus CSV (the historical format), or —
//! with `--json` — one deterministic JSON document (reports + work counters) suitable for
//! golden-file diffs; the CI `cli-smoke` job pins exactly that. All diagnostics go to
//! stderr, so stdout is always exactly the payload.
//!
//! ## Fleet mode
//!
//! ```text
//! fedopt run --fig 2 --shards 4 [--cache-dir D] [--shard-timeout S] [--json]
//!            [--shard-retries N] [--shard-backoff-ms MS] [--shard-heartbeat S]
//!            [--allow-partial]
//! fedopt shard split --fig 2 --shards 4        # print the shard specs, don't run them
//! fedopt shard cache stats --cache-dir D       # size up a shard cache
//! fedopt shard cache gc --cache-dir D [--max-age SECS] [--max-bytes N]
//! fedopt run --spec - --shard-json             # worker mode (the coordinator's child)
//! ```
//!
//! `--shards N` splits the run's seed policy into `N` sub-range shards
//! ([`crate::shard::split`]) and runs each as a subprocess of this same binary
//! (`run --spec - --shard-json`), merging the shard results back bit-identically — a
//! sharded `--json` document is byte-for-byte the single-process one. With
//! `--cache-dir`, finished shards are stored content-addressed on disk and re-runs
//! answer from the cache; the document then grows `shard_cache_hits` /
//! `shard_cache_misses` counters (and only then, so uncached sharded output stays
//! diffable against single-process goldens).
//!
//! ## Failure semantics
//!
//! Workers emit `fedopt-heartbeat` progress lines on stderr; the coordinator kills a
//! worker that goes heartbeat-silent (`--shard-heartbeat`, default 30 s) or overruns
//! its wall clock (`--shard-timeout`), retries it with deterministic exponential
//! backoff (`--shard-retries` / `--shard-backoff-ms`), and — with `--allow-partial` —
//! salvages what completed, reporting the missing seed ranges as explicit holes
//! (`shard_holes` in the JSON document, a `note:` line in the tables) instead of
//! silently renormalizing means. The `FEDOPT_FAULT_PLAN` environment variable
//! ([`crate::fault`]) injects deterministic worker faults to chaos-test exactly this
//! path; only worker mode consults it.
//!
//! The binary itself (the facade crate's `src/bin/fedopt.rs`) is a thin wrapper over
//! [`main_with`], so
//! every branch here is exercisable from unit tests.

use crate::fault::{FaultKind, FaultPlan};
use crate::json::Json;
use crate::presets::{self, Variant};
use crate::report::FigureReport;
use crate::serve::{self, ServeOptions};
use crate::shard::{self, FleetOptions, FleetStats, ShardCache, ShardError, SubprocessRunner};
use crate::spec::{ExperimentSpec, SpecError, SpecRun};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The usage text (`fedopt help` / any parse error).
pub const USAGE: &str = "\
fedopt — declarative sweep runner for the ICDCS 2022 reproduction

USAGE:
  fedopt list                        list the figure and sim presets
  fedopt spec (--fig N [--paper] | --preset NAME) [--seeds N] [--threads N]
                                     print a preset as a JSON ExperimentSpec
  fedopt run --fig N [--paper|--quick] [--seeds N] [--threads N] [--json]
                                     run a figure preset
  fedopt run --spec FILE [--seeds N] [--threads N] [--json]
                                     run a serialized spec (FILE of '-' reads stdin)
  fedopt sim (--preset NAME | --spec FILE) [--seeds N] [--threads N] [--json]
                                     run a round-structured FL simulation: per-round
                                     channel redraws, stragglers, and policy columns
                                     (re-solve | static | fedaecs | elastic)
  fedopt run ... --shards N [--cache-dir DIR] [--shard-timeout SECS]
                 [--shard-retries N] [--shard-backoff-ms MS] [--shard-heartbeat SECS]
                 [--shard-heartbeat-interval-ms MS] [--allow-partial]
                                     split the run into N seed shards, execute them as
                                     fedopt subprocesses, merge bit-identically
  fedopt run ... --fill-holes REPORT --cache-dir DIR
                                     resume a salvaged run: re-run only the shards a
                                     --allow-partial JSON document reports as holes,
                                     replay the survivors from the cache, emit the
                                     complete document
  fedopt serve [--socket PATH] [--workers N] [--queue-depth N] [--deadline-ms MS]
               [--warm-staleness N] [--timing]
                                     long-lived solve service: JSON-lines requests on
                                     stdin (or a unix socket), one typed JSON response
                                     per request (ok | degraded | shed | invalid)
  fedopt shard split (--fig N | --spec FILE) --shards N
                                     print the N shard specs as a JSON array
  fedopt shard cache stats --cache-dir DIR
                                     report entry/tmp counts and bytes of a shard cache
  fedopt shard cache gc --cache-dir DIR [--max-age SECS] [--max-bytes N]
                                     expire old entries, evict LRU past the byte budget,
                                     and clean up crashed writers' tmp files
  fedopt help                        this text

OPTIONS:
  --fig N            figure number (2..=8)
  --preset NAME      round-simulation preset (rounds-quick | rounds-paper)
  --paper            full-scale paper preset (50 devices, 100 draws/point, warm start on)
  --quick            small CI preset (the default)
  --seeds N          override the draws per point with seeds 0..N
  --threads N        pin the sweep-engine worker count
  --json             emit one machine-readable JSON document instead of tables + CSV
  --spec FILE        run the ExperimentSpec in FILE ('-' for stdin)
  --shards N         fleet mode: seed-shard the sweep across N worker subprocesses
  --cache-dir DIR    content-addressed shard result cache (requires --shards)
  --shard-timeout S  per-shard wall-clock timeout in seconds (requires --shards)
  --shard-retries N  retries per failed shard before giving up; 0 disables
                     (requires --shards; default 1, spec engine.shard_retries overridable)
  --shard-backoff-ms MS
                     base of the exponential retry backoff (requires --shards; default 100)
  --shard-heartbeat S
                     kill a worker after S seconds of heartbeat silence
                     (requires --shards; default 30)
  --shard-heartbeat-interval-ms MS
                     pace the workers' heartbeat lines (requires --shards or
                     --fill-holes; default 500; must fit inside the --shard-heartbeat
                     silence window)
  --allow-partial    salvage mode: merge completed shards, report failed seed ranges as
                     explicit holes instead of failing the run (requires --shards)
  --fill-holes FILE  resume the salvaged JSON document FILE: re-run only its shard_holes
                     under the recorded shard_count split (requires --cache-dir — the
                     surviving shards replay from the cache)
  --shard-json       worker mode: print the raw shard result document (internal)
  --socket PATH      serve on a unix domain socket instead of stdin/stdout
  --workers N        serve: worker threads, each owning a hot solver workspace (default 2)
  --queue-depth N    serve: per-worker admission queue depth; a full queue sheds
                     (default 16)
  --deadline-ms MS   serve: default per-request wall-clock budget (a request's own
                     deadline_ms member overrides it)
  --warm-staleness N serve: warm-cache hits between drift-checked cold refreshes
                     (default 64)
  --timing           serve: include latency_us in every response (off by default — it
                     breaks replay byte-identity)

Environment: FEDOPT_SWEEP_THREADS pins the default worker count; FEDOPT_WARM_START
overrides every spec's warm-start default (0 forces cold, 1 forces warm);
FEDOPT_SHARD_HEARTBEAT_INTERVAL_MS paces worker heartbeats (the flag sets it);
FEDOPT_FAULT_PLAN (<kind>@<target>) injects a deterministic fault for chaos tests —
worker kinds fire on a shard's first seed, serve kinds (slowreq/poisonreq/floodreq)
on a request index.";

/// A CLI failure: a message for stderr (usage problems include the usage text).
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// What went wrong.
    pub message: String,
    /// Whether the error is a usage mistake (print [`USAGE`] along with it).
    pub usage: bool,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self { message: message.into(), usage: true }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self { message: message.into(), usage: false }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::runtime(e.to_string())
    }
}

impl From<ShardError> for CliError {
    fn from(e: ShardError) -> Self {
        CliError::runtime(e.to_string())
    }
}

/// Where a `run` gets its spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// A figure preset.
    Fig {
        /// The figure number.
        fig: u8,
        /// Paper scale instead of quick.
        paper: bool,
    },
    /// A serialized spec file (`"-"` = stdin).
    File(String),
}

/// Where a `sim` gets its spec: a named round-simulation preset or a spec file with a
/// `rounds` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimSource {
    /// A named round-simulation preset ([`presets::SIM_PRESETS`]).
    Preset(String),
    /// A serialized spec file (`"-"` = stdin); must carry a `rounds` section.
    File(String),
}

/// The `--seeds` / `--threads` overrides shared by `run` and `spec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Overrides {
    /// Replace the spec's seed policy with the range `0..N`.
    pub seeds: Option<u64>,
    /// Pin the engine worker count.
    pub threads: Option<usize>,
}

impl Overrides {
    fn apply(self, spec: &mut ExperimentSpec) {
        if let Some(n) = self.seeds {
            spec.override_seed_count(n);
        }
        if let Some(n) = self.threads {
            spec.engine.threads = Some(n);
        }
    }
}

/// The fleet-mode options of `fedopt run` (`--shards` and friends).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetArgs {
    /// Seed-shard the run across this many `fedopt` worker subprocesses.
    pub shards: Option<usize>,
    /// Content-addressed shard result cache directory (requires `shards`).
    pub cache_dir: Option<String>,
    /// Per-shard wall-clock timeout in seconds (requires `shards`).
    pub shard_timeout_s: Option<u64>,
    /// Retries per failed shard; `0` disables retrying (requires `shards`).
    pub shard_retries: Option<u64>,
    /// Base of the exponential retry backoff, in milliseconds (requires `shards`).
    pub shard_backoff_ms: Option<u64>,
    /// Kill a worker after this many seconds of heartbeat silence (requires `shards`).
    pub shard_heartbeat_s: Option<u64>,
    /// Pace the workers' heartbeat lines this many milliseconds apart (requires
    /// `shards` or `fill_holes`; default [`shard::DEFAULT_HEARTBEAT_INTERVAL`]).
    pub shard_heartbeat_interval_ms: Option<u64>,
    /// Salvage mode: merge completed shards, surface failures as explicit holes.
    pub allow_partial: bool,
    /// Resume mode: path of a salvaged `--json` document whose `shard_holes` are the
    /// only shards to re-run (requires `cache_dir`; excludes `shards`).
    pub fill_holes: Option<String>,
    /// Worker mode: print the raw [`crate::shard::ShardResult`] document and exit.
    pub shard_json: bool,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fedopt run …`
    Run {
        /// The spec to run.
        source: SpecSource,
        /// Seed/thread overrides.
        overrides: Overrides,
        /// Emit the JSON document instead of tables.
        json: bool,
        /// Sharded fleet execution options.
        fleet: FleetArgs,
    },
    /// `fedopt shard split …` — print the shard specs instead of running them.
    ShardSplit {
        /// The spec to split.
        source: SpecSource,
        /// How many shards.
        shards: usize,
        /// Seed/thread overrides, baked in before splitting.
        overrides: Overrides,
    },
    /// `fedopt shard cache stats --cache-dir DIR`
    CacheStats {
        /// The cache directory.
        dir: String,
    },
    /// `fedopt shard cache gc --cache-dir DIR [--max-age SECS] [--max-bytes N]`
    CacheGc {
        /// The cache directory.
        dir: String,
        /// Expire entries older than this many seconds.
        max_age_s: Option<u64>,
        /// Evict least-recently-modified entries until the cache fits this budget.
        max_bytes: Option<u64>,
    },
    /// `fedopt spec …`
    Spec {
        /// The figure number (`--fig N`); exactly one of `fig`/`preset` is set.
        fig: Option<u8>,
        /// A round-simulation preset name (`--preset NAME`).
        preset: Option<String>,
        /// Paper scale instead of quick (figure presets only).
        paper: bool,
        /// Baked into the printed spec.
        overrides: Overrides,
    },
    /// `fedopt sim …` — the round-structured FL simulation.
    Sim {
        /// The sim spec to run.
        source: SimSource,
        /// Seed/thread overrides.
        overrides: Overrides,
        /// Emit the JSON document instead of the table rendering.
        json: bool,
    },
    /// `fedopt serve …` — the long-lived, crash-isolated allocation service.
    Serve {
        /// Unix-socket path to listen on (`None` = one stdin/stdout session).
        socket: Option<String>,
        /// Worker threads, each owning a hot solver workspace.
        workers: usize,
        /// Per-worker admission-queue depth; a full queue sheds.
        queue_depth: usize,
        /// Default per-request wall-clock budget in milliseconds.
        deadline_ms: Option<u64>,
        /// Warm-cache hits between drift-checked cold refreshes.
        warm_staleness: u64,
        /// Include per-request latency in every response.
        timing: bool,
    },
    /// `fedopt list`
    List,
    /// `fedopt help` / `--help` / no arguments.
    Help,
}

// ---------------------------------------------------------------------------
// The one argument parser (inherited from the historical bins' common.rs)
// ---------------------------------------------------------------------------

/// Removes `--flag` from `args`; returns whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Removes one `--flag VALUE` / `--flag=VALUE` occurrence from `args`.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    let prefix = format!("{flag}=");
    let Some(idx) = args.iter().position(|a| a == flag || a.starts_with(&prefix)) else {
        return Ok(None);
    };
    let arg = args.remove(idx);
    if let Some(value) = arg.strip_prefix(&prefix) {
        return Ok(Some(value.to_string()));
    }
    if idx < args.len() && !args[idx].starts_with("--") {
        return Ok(Some(args.remove(idx)));
    }
    Err(CliError::usage(format!("{flag} requires a value (e.g. `{flag} 4`)")))
}

/// Removes one positive-integer-valued flag — the `--seeds N` / `--threads N` contract of
/// the historical figure binaries.
fn take_positive(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, CliError> {
    match take_value(args, flag)? {
        None => Ok(None),
        Some(value) => value.parse::<u64>().ok().filter(|&n| n > 0).map(Some).ok_or_else(|| {
            CliError::usage(format!(
                "{flag} requires a positive integer, got {value:?} (e.g. `{flag} 4`)"
            ))
        }),
    }
}

/// Removes one non-negative-integer-valued flag. Unlike [`take_positive`], `0` is a
/// meaningful value here (`--shard-retries 0` disables retrying; `--max-bytes 0`
/// evicts everything).
fn take_nonneg(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, CliError> {
    match take_value(args, flag)? {
        None => Ok(None),
        Some(value) => value.parse::<u64>().map(Some).map_err(|_| {
            CliError::usage(format!(
                "{flag} requires a non-negative integer, got {value:?} (e.g. `{flag} 2`)"
            ))
        }),
    }
}

fn take_overrides(args: &mut Vec<String>) -> Result<Overrides, CliError> {
    let seeds = take_positive(args, "--seeds")?;
    if let Some(n) = seeds {
        // The spec's own validation rejects this too, but only at run time — fail the
        // parse so `fedopt spec --seeds …` can never print an invalid spec either.
        if n > crate::spec::MAX_SEEDS {
            return Err(CliError::usage(format!(
                "--seeds {n} exceeds the per-spec maximum of {} — shard larger sweeps \
                 with `fedopt run --shards N` or `fedopt shard split`",
                crate::spec::MAX_SEEDS
            )));
        }
    }
    Ok(Overrides { seeds, threads: take_positive(args, "--threads")?.map(|n| n as usize) })
}

fn take_fig(args: &mut Vec<String>) -> Result<Option<u8>, CliError> {
    match take_value(args, "--fig")? {
        None => Ok(None),
        Some(value) => {
            let fig =
                value.parse::<u8>().ok().filter(|f| presets::FIGURES.contains(f)).ok_or_else(
                    || {
                        CliError::usage(format!(
                            "--fig requires a figure number in 2..=8, got {value:?}"
                        ))
                    },
                )?;
            Ok(Some(fig))
        }
    }
}

/// Returns `(paper, either_switch_present)`.
fn take_variant(args: &mut Vec<String>) -> Result<(bool, bool), CliError> {
    let paper = take_switch(args, "--paper");
    let quick = take_switch(args, "--quick");
    if paper && quick {
        return Err(CliError::usage("--paper and --quick are mutually exclusive"));
    }
    Ok((paper, paper || quick))
}

fn reject_leftovers(args: &[String]) -> Result<(), CliError> {
    if let Some(first) = args.first() {
        return Err(CliError::usage(format!("unrecognised argument {first:?}")));
    }
    Ok(())
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// [`CliError`] with `usage = true` on any unknown or malformed argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((verb, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<String> = rest.to_vec();
    match verb.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            reject_leftovers(&rest)?;
            Ok(Command::List)
        }
        "spec" => {
            let fig = take_fig(&mut rest)?;
            let preset = take_value(&mut rest, "--preset")?;
            let (paper, variant_given) = take_variant(&mut rest)?;
            let overrides = take_overrides(&mut rest)?;
            reject_leftovers(&rest)?;
            match (&fig, &preset) {
                (None, None) => {
                    return Err(CliError::usage("`fedopt spec` requires --fig N or --preset NAME"));
                }
                (Some(_), Some(_)) => {
                    return Err(CliError::usage("--fig and --preset are mutually exclusive"));
                }
                (None, Some(_)) if variant_given => {
                    return Err(CliError::usage(
                        "--paper/--quick scale figure presets; they cannot modify \
                         --preset NAME",
                    ));
                }
                _ => {}
            }
            Ok(Command::Spec { fig, preset, paper, overrides })
        }
        "sim" => {
            let preset = take_value(&mut rest, "--preset")?;
            let file = take_value(&mut rest, "--spec")?;
            let overrides = take_overrides(&mut rest)?;
            let json = take_switch(&mut rest, "--json");
            reject_leftovers(&rest)?;
            let source = match (preset, file) {
                (Some(name), None) => SimSource::Preset(name),
                (None, Some(path)) => SimSource::File(path),
                (Some(_), Some(_)) => {
                    return Err(CliError::usage("--preset and --spec are mutually exclusive"));
                }
                (None, None) => {
                    return Err(CliError::usage(
                        "`fedopt sim` requires --preset NAME or --spec FILE",
                    ));
                }
            };
            Ok(Command::Sim { source, overrides, json })
        }
        "run" => {
            let source = take_source(&mut rest)?
                .ok_or_else(|| CliError::usage("`fedopt run` requires --fig N or --spec FILE"))?;
            let overrides = take_overrides(&mut rest)?;
            let json = take_switch(&mut rest, "--json");
            let fleet = FleetArgs {
                shards: take_positive(&mut rest, "--shards")?.map(|n| n as usize),
                cache_dir: take_value(&mut rest, "--cache-dir")?,
                shard_timeout_s: take_positive(&mut rest, "--shard-timeout")?,
                shard_retries: take_nonneg(&mut rest, "--shard-retries")?,
                shard_backoff_ms: take_nonneg(&mut rest, "--shard-backoff-ms")?,
                shard_heartbeat_s: take_positive(&mut rest, "--shard-heartbeat")?,
                shard_heartbeat_interval_ms: take_positive(
                    &mut rest,
                    "--shard-heartbeat-interval-ms",
                )?,
                allow_partial: take_switch(&mut rest, "--allow-partial"),
                fill_holes: take_value(&mut rest, "--fill-holes")?,
                shard_json: take_switch(&mut rest, "--shard-json"),
            };
            reject_leftovers(&rest)?;
            if fleet.fill_holes.is_some() {
                if fleet.shards.is_some() {
                    return Err(CliError::usage(
                        "--fill-holes resumes the split recorded in the document; it \
                         cannot combine with --shards",
                    ));
                }
                if fleet.allow_partial {
                    return Err(CliError::usage(
                        "--fill-holes completes a salvaged run; --allow-partial would \
                         let it stay partial",
                    ));
                }
                if fleet.cache_dir.is_none() {
                    return Err(CliError::usage(
                        "--fill-holes requires --cache-dir DIR — the surviving shards \
                         replay from the shard cache, only the holes are recomputed",
                    ));
                }
            }
            if fleet.shards.is_none() && fleet.fill_holes.is_none() {
                for (set, flag) in [
                    (fleet.cache_dir.is_some(), "--cache-dir"),
                    (fleet.shard_timeout_s.is_some(), "--shard-timeout"),
                    (fleet.shard_retries.is_some(), "--shard-retries"),
                    (fleet.shard_backoff_ms.is_some(), "--shard-backoff-ms"),
                    (fleet.shard_heartbeat_s.is_some(), "--shard-heartbeat"),
                    (fleet.shard_heartbeat_interval_ms.is_some(), "--shard-heartbeat-interval-ms"),
                    (fleet.allow_partial, "--allow-partial"),
                ] {
                    if set {
                        return Err(CliError::usage(format!("{flag} requires --shards N")));
                    }
                }
            }
            if let Some(interval_ms) = fleet.shard_heartbeat_interval_ms {
                // A beat cadence slower than the allowed silence kills every healthy
                // worker between two beats — a configuration that can only lose.
                let window_s =
                    fleet.shard_heartbeat_s.unwrap_or(shard::DEFAULT_HEARTBEAT_TIMEOUT.as_secs());
                if window_s.saturating_mul(1000) < interval_ms {
                    return Err(CliError::usage(format!(
                        "--shard-heartbeat-interval-ms {interval_ms} exceeds the \
                         heartbeat-silence window of {window_s} s — every worker would \
                         be killed as stalled between two beats; raise --shard-heartbeat \
                         or lower the interval"
                    )));
                }
            }
            if fleet.shard_json && (json || fleet.shards.is_some() || fleet.fill_holes.is_some()) {
                return Err(CliError::usage(
                    "--shard-json is the worker-mode output format; it cannot combine \
                     with --json, --shards, or --fill-holes",
                ));
            }
            Ok(Command::Run { source, overrides, json, fleet })
        }
        "serve" => {
            let socket = take_value(&mut rest, "--socket")?;
            let workers = take_positive(&mut rest, "--workers")?
                .map_or(serve::DEFAULT_WORKERS, |n| n as usize);
            let queue_depth = take_positive(&mut rest, "--queue-depth")?
                .map_or(serve::DEFAULT_QUEUE_DEPTH, |n| n as usize);
            let deadline_ms = take_positive(&mut rest, "--deadline-ms")?;
            let warm_staleness = take_positive(&mut rest, "--warm-staleness")?
                .unwrap_or(serve::DEFAULT_WARM_STALENESS);
            let timing = take_switch(&mut rest, "--timing");
            reject_leftovers(&rest)?;
            Ok(Command::Serve { socket, workers, queue_depth, deadline_ms, warm_staleness, timing })
        }
        "shard" => match rest.split_first() {
            Some((sub, tail)) if sub == "split" => {
                let mut tail: Vec<String> = tail.to_vec();
                let source = take_source(&mut tail)?.ok_or_else(|| {
                    CliError::usage("`fedopt shard split` requires --fig N or --spec FILE")
                })?;
                let overrides = take_overrides(&mut tail)?;
                let shards = take_positive(&mut tail, "--shards")?
                    .ok_or_else(|| CliError::usage("`fedopt shard split` requires --shards N"))?
                    as usize;
                reject_leftovers(&tail)?;
                Ok(Command::ShardSplit { source, shards, overrides })
            }
            Some((sub, tail)) if sub == "cache" => {
                let mut tail: Vec<String> = tail.to_vec();
                let action = (!tail.is_empty()).then(|| tail.remove(0));
                let dir = |tail: &mut Vec<String>, what: &str| {
                    take_value(tail, "--cache-dir")?.ok_or_else(|| {
                        CliError::usage(format!(
                            "`fedopt shard cache {what}` requires --cache-dir DIR"
                        ))
                    })
                };
                match action.as_deref() {
                    Some("stats") => {
                        let dir = dir(&mut tail, "stats")?;
                        reject_leftovers(&tail)?;
                        Ok(Command::CacheStats { dir })
                    }
                    Some("gc") => {
                        let dir = dir(&mut tail, "gc")?;
                        let max_age_s = take_nonneg(&mut tail, "--max-age")?;
                        let max_bytes = take_nonneg(&mut tail, "--max-bytes")?;
                        reject_leftovers(&tail)?;
                        Ok(Command::CacheGc { dir, max_age_s, max_bytes })
                    }
                    _ => Err(CliError::usage(
                        "`fedopt shard cache` has two subcommands: `stats` and `gc`",
                    )),
                }
            }
            _ => Err(CliError::usage("`fedopt shard` has subcommands `split` and `cache`")),
        },
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

/// Parses the shared spec-source arguments (`--fig`/`--paper`/`--quick`/`--spec`).
/// `Ok(None)` when none were given — the verbs word their own "required" errors.
fn take_source(rest: &mut Vec<String>) -> Result<Option<SpecSource>, CliError> {
    let fig = take_fig(rest)?;
    let file = take_value(rest, "--spec")?;
    let (paper, variant_given) = take_variant(rest)?;
    match (fig, file) {
        (Some(fig), None) => Ok(Some(SpecSource::Fig { fig, paper })),
        (None, Some(path)) => {
            if variant_given {
                return Err(CliError::usage(
                    "--paper/--quick select a preset; they cannot modify --spec FILE",
                ));
            }
            Ok(Some(SpecSource::File(path)))
        }
        (Some(_), Some(_)) => Err(CliError::usage("--fig and --spec are mutually exclusive")),
        (None, None) => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

fn preset(fig: u8, paper: bool) -> Result<ExperimentSpec, CliError> {
    let variant = if paper { Variant::Paper } else { Variant::Quick };
    presets::spec(fig, variant)
        .ok_or_else(|| CliError::usage(format!("no preset for figure {fig}")))
}

/// Resolves a round-simulation preset name. The unknown-name error deliberately names
/// *both* preset families — a user who guessed the wrong family lands on their feet.
fn sim_preset(name: &str) -> Result<ExperimentSpec, CliError> {
    presets::sim(name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown preset {name:?} — sim presets are {}; figure presets are \
             fig{}..=fig{} (selected with --fig N)",
            presets::SIM_PRESETS.join(" | "),
            presets::FIGURES[0],
            presets::FIGURES[presets::FIGURES.len() - 1],
        ))
    })
}

/// Loads a `fedopt sim` spec and checks it actually has a `rounds` section — a sweep
/// spec fed to the wrong verb gets a pointer back to `fedopt run`, not a generic
/// validation error.
fn load_sim_spec(source: &SimSource) -> Result<ExperimentSpec, CliError> {
    let spec = match source {
        SimSource::Preset(name) => sim_preset(name)?,
        SimSource::File(path) => load_spec(&SpecSource::File(path.clone()))?,
    };
    if spec.rounds.is_none() {
        return Err(CliError::runtime(format!(
            "spec {:?} has no `rounds` section — `fedopt sim` runs round simulations; \
             sweep specs run with `fedopt run --spec …`",
            spec.id
        )));
    }
    Ok(spec)
}

fn load_spec(source: &SpecSource) -> Result<ExperimentSpec, CliError> {
    match source {
        SpecSource::Fig { fig, paper } => preset(*fig, *paper),
        SpecSource::File(path) => {
            let text = if path == "-" {
                std::io::read_to_string(std::io::stdin())
                    .map_err(|e| CliError::runtime(format!("reading stdin: {e}")))?
            } else {
                std::fs::read_to_string(path)
                    .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?
            };
            Ok(ExperimentSpec::from_json_str(&text)?)
        }
    }
}

/// The `list` payload.
pub fn render_list() -> String {
    let mut out = String::from("figure  preset ids      what it shows\n");
    for &fig in &presets::FIGURES {
        let summary = presets::summary(fig).expect("every listed figure has a summary");
        out.push_str(&format!("fig{fig}    quick | paper   {summary}\n"));
    }
    out.push_str("\nsim preset      what it shows\n");
    for name in presets::SIM_PRESETS {
        let summary = presets::sim_summary(name).expect("every listed sim preset has a summary");
        out.push_str(&format!("{name:<15} {summary}\n"));
    }
    out.push_str(
        "\nrun a figure with `fedopt run --fig N [--paper]`; run a round simulation with \
         `fedopt sim --preset NAME`; print either spec with `fedopt spec --fig N` / \
         `fedopt spec --preset NAME`.\n",
    );
    out
}

/// The deterministic JSON document `fedopt run --json` emits: the spec identity, every
/// rendered report (see [`FigureReport::to_json`]), and the sweep's work counters.
pub fn run_document(spec: &ExperimentSpec, run: &SpecRun) -> Json {
    run_document_with_fleet(spec, run, None)
}

/// [`run_document`] with optional fleet statistics. Every optional member is gated so
/// fault-free output stays byte-identical to the single-process document (the CI golden
/// diff depends on it): `shard_cache_hits` / `shard_cache_misses` appear only when a
/// cache directory was actually configured, `degraded_solves` only when the solver
/// watchdog actually degraded a cell, and `shard_holes` (plus the `shard_count` that
/// `--fill-holes` needs to reproduce the split) only when a salvaged run is missing
/// seed ranges.
pub fn run_document_with_fleet(
    spec: &ExperimentSpec,
    run: &SpecRun,
    fleet: Option<&FleetStats>,
) -> Json {
    let counters = &run.result.counters;
    let solver = &counters.solver;
    let mut solver_members = vec![
        ("outer_iterations", Json::uint(solver.outer_iterations)),
        ("jong_iterations", Json::uint(solver.jong_iterations)),
        ("kkt_solves", Json::uint(solver.kkt_solves)),
        ("mu_bisect_evals", Json::uint(solver.mu_bisect_evals)),
        ("sp2_fast_path_hits", Json::uint(solver.sp2_fast_path_hits)),
    ];
    if solver.degraded_solves > 0 {
        solver_members.push(("degraded_solves", Json::uint(solver.degraded_solves)));
    }
    let mut counter_members = vec![
        ("scenarios_built", Json::uint(counters.scenarios_built as u64)),
        ("cells_evaluated", Json::uint(counters.cells_evaluated as u64)),
        ("solver", Json::obj(solver_members)),
    ];
    if let Some(stats) = fleet {
        if stats.cache_enabled {
            counter_members.push(("shard_cache_hits", Json::uint(stats.shard_cache_hits)));
            counter_members.push(("shard_cache_misses", Json::uint(stats.shard_cache_misses)));
        }
    }
    let mut members = vec![
        ("schema_version".to_string(), Json::uint(crate::spec::SCHEMA_VERSION)),
        ("spec_id".to_string(), Json::Str(spec.id.clone())),
        ("reports".to_string(), Json::Arr(run.reports.iter().map(FigureReport::to_json).collect())),
        ("counters".to_string(), Json::obj(counter_members)),
    ];
    if let Some(stats) = fleet {
        if !stats.holes.is_empty() {
            let holes = stats
                .holes
                .iter()
                .map(|h| {
                    Json::obj([
                        ("shard", Json::uint(h.index as u64)),
                        ("seeds", Json::Str(h.seeds.clone())),
                        ("attempts", Json::uint(h.attempts as u64)),
                        ("error", Json::Str(h.error.clone())),
                    ])
                })
                .collect();
            members.push(("shard_holes".to_string(), Json::Arr(holes)));
            // Only salvaged documents record their split: `--fill-holes` needs it to
            // reproduce the identical shard boundaries, and gating it here keeps
            // fault-free output byte-identical to the single-process document.
            members.push(("shard_count".to_string(), Json::uint(stats.shards as u64)));
        }
    }
    Json::Obj(members)
}

/// Renders a finished run: the historical tables + CSV, or the JSON document.
pub fn render_run(spec: &ExperimentSpec, run: &SpecRun, json: bool) -> String {
    render_run_with_fleet(spec, run, json, None)
}

/// [`render_run`] with optional fleet statistics (cache counters and salvage holes are
/// JSON-mode members; in table mode the salvage caveat travels as each report's `note`).
pub fn render_run_with_fleet(
    spec: &ExperimentSpec,
    run: &SpecRun,
    json: bool,
    fleet: Option<&FleetStats>,
) -> String {
    if json {
        return run_document_with_fleet(spec, run, fleet).to_pretty_string();
    }
    let mut out = String::new();
    for report in &run.reports {
        out.push_str(&report.to_table_string());
        out.push('\n');
        out.push_str(&format!("--- CSV ({}) ---\n", report.id));
        out.push_str(&report.to_csv_string());
        out.push('\n');
    }
    out
}

/// Parses and executes a command line, returning the stdout payload. Progress goes to
/// stderr so stdout stays pipeable (`fedopt spec … | fedopt run --spec -`).
///
/// # Errors
///
/// [`CliError`] for usage mistakes, unreadable/invalid specs, and sweep failures.
pub fn main_with(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::List => Ok(render_list()),
        Command::Spec { fig, preset: sim_name, paper, overrides } => {
            let mut spec = match (fig, sim_name) {
                (Some(fig), None) => preset(fig, paper)?,
                (None, Some(name)) => sim_preset(&name)?,
                _ => unreachable!("parse enforces exactly one of --fig/--preset"),
            };
            overrides.apply(&mut spec);
            Ok(spec.to_json_string())
        }
        Command::Sim { source, overrides, json } => {
            let mut spec = load_sim_spec(&source)?;
            overrides.apply(&mut spec);
            let engine = spec.engine.to_engine();
            let rounds = spec.rounds.as_ref().expect("load_sim_spec checked for rounds");
            eprintln!(
                "simulating {} ({} rounds x {} policies x {} seeds, {} threads, warm start {})...",
                spec.id,
                rounds.rounds,
                rounds.policies.len(),
                spec.seeds.len(),
                engine.threads(),
                if engine.warm_starts() { "on" } else { "off" },
            );
            let run = crate::rounds::simulate_with_engine(&spec, &engine)?;
            Ok(if json { run.to_json_string() } else { run.to_table_string() })
        }
        Command::Run { source, overrides, json, fleet } => {
            let mut spec = load_spec(&source)?;
            overrides.apply(&mut spec);
            if fleet.shard_json {
                // Worker mode: raw samples out, nothing rendered. One compact line so the
                // coordinator can stream-parse stdout.
                return run_worker(&spec);
            }
            if let Some(report_path) = fleet.fill_holes.clone() {
                return run_fill_holes(&spec, &report_path, &fleet, json);
            }
            if let Some(shards) = fleet.shards {
                return run_fleet_command(&spec, shards, &fleet, json);
            }
            let engine = spec.engine.to_engine();
            eprintln!(
                "running {} ({} points x {} arms x {} draws/point, {} threads, warm start {})...",
                spec.id,
                spec.axis.values.len(),
                spec.arms.len(),
                spec.seeds.len(),
                engine.threads(),
                if engine.warm_starts() { "on" } else { "off" },
            );
            let run = spec.run_with_engine(&engine)?;
            Ok(render_run(&spec, &run, json))
        }
        Command::ShardSplit { source, shards, overrides } => {
            let mut spec = load_spec(&source)?;
            overrides.apply(&mut spec);
            let shard_specs = shard::split(&spec, shards)?;
            let doc = Json::Arr(shard_specs.iter().map(ExperimentSpec::to_json).collect());
            Ok(doc.to_pretty_string())
        }
        Command::CacheStats { dir } => {
            let stats = ShardCache::open(&dir)?.stats()?;
            Ok(format!(
                "cache {dir}\n  entries:   {} ({} bytes)\n  tmp files: {} ({} bytes)\n",
                stats.entries, stats.entry_bytes, stats.tmp_files, stats.tmp_bytes
            ))
        }
        Command::Serve { socket, workers, queue_depth, deadline_ms, warm_staleness, timing } => {
            // Only the serve-side fault kinds apply here; a plan targeting shard seeds
            // stays armed for worker subprocesses and is inert for the service.
            let fault = FaultPlan::from_env()
                .map_err(CliError::runtime)?
                .filter(|plan| plan.kind.is_serve_fault());
            let opts = ServeOptions {
                workers,
                queue_depth,
                deadline_ms,
                warm_staleness,
                timing,
                warm_start: None,
                fault,
            };
            run_serve_command(socket, &opts)
        }
        Command::CacheGc { dir, max_age_s, max_bytes } => {
            let report =
                ShardCache::open(&dir)?.gc(max_age_s.map(Duration::from_secs), max_bytes)?;
            Ok(format!(
                "cache {dir}\n  evicted:   {} entries ({} bytes)\n  tmp files: {} removed\n  \
                 retained:  {} entries ({} bytes)\n",
                report.evicted_entries,
                report.evicted_bytes,
                report.removed_tmp_files,
                report.retained_entries,
                report.retained_bytes
            ))
        }
    }
}

/// Worker mode (`fedopt run --spec - --shard-json`): compute the shard, heartbeat on
/// stderr while doing so, print the one-line wire document — unless a
/// [`FaultPlan`](crate::fault::FaultPlan) targets this shard, in which case misbehave
/// exactly as planned (this is the production failure surface the chaos suite drives).
fn run_worker(spec: &ExperimentSpec) -> Result<String, CliError> {
    let fault = FaultPlan::from_env()
        .map_err(CliError::runtime)?
        .filter(|plan| plan.applies_to(spec))
        .map(|plan| plan.kind);
    match fault {
        Some(FaultKind::CrashOnEntry) => {
            return Err(CliError::runtime("injected fault: crash on entry"));
        }
        Some(FaultKind::Stall) => {
            // Hang silently forever: no heartbeat, no output. Only the coordinator's
            // heartbeat timeout can end this worker.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        Some(FaultKind::StderrFlood) => {
            for i in 0..5000 {
                eprintln!("injected flood line {i}: runaway diagnostic output before a crash");
            }
            return Err(CliError::runtime("injected fault: stderr flood then crash"));
        }
        _ => {}
    }
    // The beat cadence comes from the coordinator (or the user) via the environment; a
    // malformed value is a loud startup error — a typo must not degrade into a silently
    // different liveness contract.
    let interval = shard::heartbeat_interval_env()
        .map_err(CliError::runtime)?
        .unwrap_or(shard::DEFAULT_HEARTBEAT_INTERVAL);
    let progress = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let result = std::thread::scope(|scope| {
        scope.spawn(|| {
            // Heartbeat immediately, then every `interval`, polling `stop` at 50 ms so
            // the worker exits promptly once the shard is done.
            let start = Instant::now();
            let slice = Duration::from_millis(50).min(interval);
            loop {
                eprintln!(
                    "{} t={:.1}s cells={}",
                    shard::HEARTBEAT_PREFIX,
                    start.elapsed().as_secs_f64(),
                    progress.load(Ordering::Relaxed)
                );
                let beat = Instant::now();
                while beat.elapsed() < interval {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(slice);
                }
            }
        });
        let result = shard::run_shard_in_process_with_progress(spec, Some(&progress));
        stop.store(true, Ordering::Relaxed);
        result
    })?;
    let line = result.to_json_string();
    match fault {
        Some(FaultKind::TruncateStdout) => {
            // Exit mid-stream: half a document, no newline, successful exit status —
            // the shape of a broken pipe or a disk-full stdout redirect.
            let mut cut = line.len() / 2;
            while !line.is_char_boundary(cut) {
                cut -= 1;
            }
            Ok(line[..cut].to_string())
        }
        Some(FaultKind::CorruptWire) => Ok(format!("{}\n", crate::fault::corrupt_payload(&line))),
        _ => Ok(format!("{line}\n")),
    }
}

/// The subprocess runner a fleet-mode (or fill-holes) command configures. Precedence
/// for the hardening knobs: CLI flag > spec `engine` field > default.
fn subprocess_runner(
    fleet: &FleetArgs,
    spec: &ExperimentSpec,
) -> Result<SubprocessRunner, CliError> {
    let program = std::env::current_exe()
        .map_err(|e| CliError::runtime(format!("cannot locate the fedopt binary: {e}")))?;
    let mut runner = SubprocessRunner::new(program);
    if let Some(secs) = fleet.shard_timeout_s.or(spec.engine.shard_timeout_s) {
        runner = runner.with_timeout(Duration::from_secs(secs));
    }
    if let Some(secs) = fleet.shard_heartbeat_s {
        runner = runner.with_heartbeat_timeout(Some(Duration::from_secs(secs)));
    }
    if let Some(ms) = fleet.shard_heartbeat_interval_ms {
        runner = runner.with_heartbeat_interval(Duration::from_millis(ms));
    }
    Ok(runner)
}

/// The [`FleetOptions`] a fleet-mode (or fill-holes) command configures.
fn fleet_options(
    fleet: &FleetArgs,
    spec: &ExperimentSpec,
    shards: usize,
    allow_partial: bool,
) -> Result<FleetOptions, CliError> {
    let cache = match &fleet.cache_dir {
        Some(dir) => Some(ShardCache::open(dir)?),
        None => None,
    };
    Ok(FleetOptions {
        shards,
        cache,
        concurrency: None,
        max_retries: fleet
            .shard_retries
            .or(spec.engine.shard_retries)
            .map_or(shard::DEFAULT_MAX_RETRIES, |n| n as usize),
        backoff: fleet.shard_backoff_ms.map_or(shard::DEFAULT_RETRY_BACKOFF, Duration::from_millis),
        allow_partial,
    })
}

/// The coordinator half of `fedopt run --shards N`: split, fan out to `fedopt`
/// subprocesses, merge, render.
fn run_fleet_command(
    spec: &ExperimentSpec,
    shards: usize,
    fleet: &FleetArgs,
    json: bool,
) -> Result<String, CliError> {
    let runner = subprocess_runner(fleet, spec)?;
    let opts = fleet_options(fleet, spec, shards, fleet.allow_partial)?;
    eprintln!(
        "running {} as a fleet ({} shards over {} draws/point{})...",
        spec.id,
        shards.min(spec.seeds.len().try_into().unwrap_or(usize::MAX)).max(1),
        spec.seeds.len(),
        match &fleet.cache_dir {
            Some(dir) => format!(", cache {dir}"),
            None => String::new(),
        },
    );
    let (result, stats) = shard::run_fleet(spec, &opts, &runner)?;
    if stats.cache_enabled {
        eprintln!(
            "fleet done: {} cache hits, {} misses, {} retries",
            stats.shard_cache_hits, stats.shard_cache_misses, stats.retries
        );
    }
    let mut reports = spec.render_reports(&result);
    if !stats.holes.is_empty() {
        eprintln!(
            "WARNING: salvaged a partial fleet run — {} shard(s) failed terminally; their \
             seed ranges are holes, means are over the surviving draws only:",
            stats.holes.len(),
        );
        for hole in &stats.holes {
            eprintln!("  shard {} (seeds {}): {}", hole.index, hole.seeds, hole.error);
        }
        let missing: Vec<String> = stats.holes.iter().map(|h| h.seeds.clone()).collect();
        let note = format!("salvaged fleet run: seeds {} missing", missing.join(", "));
        for report in &mut reports {
            report.note = Some(note.clone());
        }
    }
    let run = SpecRun { result, reports };
    Ok(render_run_with_fleet(spec, &run, json, Some(&stats)))
}

/// The resume half of salvage (`fedopt run --fill-holes REPORT`): read the salvaged
/// document's `shard_holes` and `shard_count`, re-run the identical split with the
/// survivors answering from the shard cache (cache-first, so only the holes cost
/// compute), and emit the complete document — byte-identical to a run that never
/// faulted. The document's `spec_id` must match the spec selected on the command line;
/// a document without holes, or without a recorded split, is a loud error rather than a
/// silent full re-run.
fn run_fill_holes(
    spec: &ExperimentSpec,
    report_path: &str,
    fleet: &FleetArgs,
    json: bool,
) -> Result<String, CliError> {
    let text = std::fs::read_to_string(report_path)
        .map_err(|e| CliError::runtime(format!("reading {report_path}: {e}")))?;
    let doc = Json::parse(&text).map_err(|e| {
        CliError::runtime(format!("--fill-holes: {report_path} is not a JSON run document: {e}"))
    })?;
    let doc_spec_id = doc.get("spec_id").and_then(Json::as_str).ok_or_else(|| {
        CliError::runtime(format!(
            "--fill-holes: {report_path} carries no spec_id — is it a `fedopt run --json` \
             document?"
        ))
    })?;
    if doc_spec_id != spec.id {
        return Err(CliError::runtime(format!(
            "--fill-holes: {report_path} documents spec {doc_spec_id:?} but the command \
             line selects {:?} — refusing to merge unrelated runs",
            spec.id
        )));
    }
    let holes = doc
        .get("shard_holes")
        .and_then(Json::as_array)
        .filter(|holes| !holes.is_empty())
        .ok_or_else(|| {
        CliError::runtime(format!(
            "--fill-holes: {report_path} reports no shard_holes — the document is \
                 already complete, nothing to fill"
        ))
    })?;
    let shard_count = doc.get("shard_count").and_then(Json::as_u64).ok_or_else(|| {
        CliError::runtime(format!(
            "--fill-holes: {report_path} records no shard_count — only salvaged documents \
             from `--shards N --allow-partial` runs are resumable"
        ))
    })? as usize;
    let missing: Vec<&str> =
        holes.iter().filter_map(|hole| hole.get("seeds").and_then(Json::as_str)).collect();
    eprintln!(
        "filling {} hole(s) of {report_path} (seeds {}) under the recorded {shard_count}-shard \
         split; surviving shards replay from the cache...",
        holes.len(),
        missing.join(", "),
    );
    let runner = subprocess_runner(fleet, spec)?;
    let opts = fleet_options(fleet, spec, shard_count, false)?;
    let (result, mut stats) = shard::run_fleet(spec, &opts, &runner)?;
    eprintln!(
        "holes filled: {} shard(s) answered from the cache, {} recomputed",
        stats.shard_cache_hits, stats.shard_cache_misses
    );
    // The filled document must be byte-identical to the never-faulted single-process
    // document — the cache traffic is reported on stderr (above), not in the payload.
    stats.cache_enabled = false;
    let reports = spec.render_reports(&result);
    let run = SpecRun { result, reports };
    Ok(render_run_with_fleet(spec, &run, json, Some(&stats)))
}

/// The `serve` verb: a long-lived allocation service over stdin/stdout or a unix
/// socket. Responses stream directly to the transport while the session runs — the
/// returned payload is empty on purpose — and the run's stats summary goes to stderr,
/// where all diagnostics live.
fn run_serve_command(socket: Option<String>, opts: &ServeOptions) -> Result<String, CliError> {
    eprintln!(
        "serving ({} worker(s), queue depth {}, default deadline {}, warm staleness {})...",
        opts.workers,
        opts.queue_depth,
        opts.deadline_ms.map_or_else(|| "none".to_string(), |ms| format!("{ms} ms")),
        opts.warm_staleness,
    );
    let stats = match socket {
        Some(path) => serve_socket(&path, opts)?,
        None => {
            // The owned handle (not StdoutLock, which is !Send) crosses into the
            // session's writer thread; it is the only stdout writer for the run.
            let stdin = std::io::stdin().lock();
            serve::serve_session(stdin, std::io::stdout(), opts, serve::drain_flag())
                .map_err(|e| CliError::runtime(format!("serve: {e}")))?
        }
    };
    eprintln!("{}", stats.summary_line());
    Ok(String::new())
}

#[cfg(unix)]
fn serve_socket(path: &str, opts: &ServeOptions) -> Result<serve::ServeStats, CliError> {
    eprintln!("listening on {path} (SIGTERM drains; each connection is one session)");
    serve::serve_unix_socket(std::path::Path::new(path), opts, serve::drain_flag())
        .map_err(|e| CliError::runtime(format!("serve --socket {path}: {e}")))
}

#[cfg(not(unix))]
fn serve_socket(path: &str, _opts: &ServeOptions) -> Result<serve::ServeStats, CliError> {
    Err(CliError::runtime(format!(
        "serve --socket {path}: unix domain sockets are unavailable on this platform; \
         use the stdin/stdout transport"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeedPolicy;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_the_documented_command_lines() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(
            parse(&argv("spec --fig 2")).unwrap(),
            Command::Spec {
                fig: Some(2),
                preset: None,
                paper: false,
                overrides: Overrides::default()
            }
        );
        assert_eq!(
            parse(&argv("spec --preset rounds-quick --seeds 2")).unwrap(),
            Command::Spec {
                fig: None,
                preset: Some("rounds-quick".to_string()),
                paper: false,
                overrides: Overrides { seeds: Some(2), threads: None },
            }
        );
        assert_eq!(
            parse(&argv("sim --preset rounds-quick --seeds 2 --threads 1 --json")).unwrap(),
            Command::Sim {
                source: SimSource::Preset("rounds-quick".to_string()),
                overrides: Overrides { seeds: Some(2), threads: Some(1) },
                json: true,
            }
        );
        assert_eq!(
            parse(&argv("sim --spec -")).unwrap(),
            Command::Sim {
                source: SimSource::File("-".to_string()),
                overrides: Overrides::default(),
                json: false,
            }
        );
        assert_eq!(
            parse(&argv("run --fig 7 --paper --seeds 25 --threads 8 --json")).unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 7, paper: true },
                overrides: Overrides { seeds: Some(25), threads: Some(8) },
                json: true,
                fleet: FleetArgs::default(),
            }
        );
        // `--flag=value` form and flag order both work (the historical bins' contract).
        assert_eq!(
            parse(&argv("run --json --seeds=3 --fig=2")).unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 2, paper: false },
                overrides: Overrides { seeds: Some(3), threads: None },
                json: true,
                fleet: FleetArgs::default(),
            }
        );
        assert_eq!(
            parse(&argv("run --spec - --json")).unwrap(),
            Command::Run {
                source: SpecSource::File("-".to_string()),
                overrides: Overrides::default(),
                json: true,
                fleet: FleetArgs::default(),
            }
        );
    }

    #[test]
    fn rejects_malformed_command_lines_with_usage_errors() {
        for bad in [
            "frobnicate",
            "run",
            "run --fig 1",
            "run --fig nine",
            "run --fig 2 --spec x.json",
            "run --fig 2 --paper --quick",
            "run --spec x.json --paper",
            "run --fig 2 --seeds 0",
            "run --fig 2 --seeds 9007199254740993",
            "run --spec x.json --quick",
            "run --fig 2 --seeds",
            "run --fig 2 --threads -3",
            "run --fig 2 --threads two",
            "spec",
            "spec --fig 2 extra",
            "spec --fig 2 --preset rounds-quick",
            "spec --preset rounds-quick --paper",
            "list --fig 2",
            // Sim combinations.
            "sim",
            "sim --preset rounds-quick --spec x.json",
            "sim --fig 2",
            "sim --preset rounds-quick --paper",
            "sim --preset rounds-quick extra",
            "sim --preset rounds-quick --seeds 0",
            // Fleet-flag combinations.
            "run --fig 2 --shards 0",
            "run --fig 2 --cache-dir /tmp/c",
            "run --fig 2 --shard-timeout 60",
            "run --fig 2 --shard-retries 2",
            "run --fig 2 --shard-backoff-ms 50",
            "run --fig 2 --shard-heartbeat 5",
            "run --fig 2 --allow-partial",
            "run --fig 2 --shards 2 --shard-retries -1",
            "run --fig 2 --shards 2 --shard-retries many",
            "run --fig 2 --shards 2 --shard-heartbeat 0",
            "run --fig 2 --shard-json --json",
            "run --fig 2 --shard-json --shards 2",
            // Heartbeat-interval combinations.
            "run --fig 2 --shard-heartbeat-interval-ms 500",
            "run --fig 2 --shards 2 --shard-heartbeat-interval-ms 0",
            "run --fig 2 --shards 2 --shard-heartbeat-interval-ms soon",
            // The silence window must fit at least one full beat interval.
            "run --fig 2 --shards 2 --shard-heartbeat 1 --shard-heartbeat-interval-ms 2000",
            "run --fig 2 --shards 2 --shard-heartbeat-interval-ms 31000",
            // Fill-holes combinations.
            "run --fig 2 --fill-holes r.json",
            "run --fig 2 --fill-holes r.json --cache-dir /tmp/c --shards 2",
            "run --fig 2 --fill-holes r.json --cache-dir /tmp/c --allow-partial",
            "run --fig 2 --fill-holes r.json --cache-dir /tmp/c --shard-json",
            // Serve combinations.
            "serve --workers 0",
            "serve --queue-depth 0",
            "serve --deadline-ms 0",
            "serve --warm-staleness none",
            "serve extra",
            "serve --fig 2",
            "shard",
            "shard merge",
            "shard split --shards 3",
            "shard split --fig 2",
            "shard split --fig 2 --spec x.json --shards 2",
            "shard cache",
            "shard cache stats",
            "shard cache gc --max-age 10",
            "shard cache flush --cache-dir /tmp/c",
            "shard cache gc --cache-dir /tmp/c --max-age never",
            "shard cache stats --cache-dir /tmp/c extra",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert!(err.usage, "{bad:?} must be a usage error, got {err:?}");
        }
    }

    #[test]
    fn parses_the_fleet_command_lines() {
        assert_eq!(
            parse(&argv("run --fig 2 --shards 3 --cache-dir /tmp/c --shard-timeout 90 --json"))
                .unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 2, paper: false },
                overrides: Overrides::default(),
                json: true,
                fleet: FleetArgs {
                    shards: Some(3),
                    cache_dir: Some("/tmp/c".to_string()),
                    shard_timeout_s: Some(90),
                    ..FleetArgs::default()
                },
            }
        );
        assert_eq!(
            parse(&argv(
                "run --fig 2 --shards 4 --shard-retries 0 --shard-backoff-ms 250 \
                 --shard-heartbeat 5 --allow-partial"
            ))
            .unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 2, paper: false },
                overrides: Overrides::default(),
                json: false,
                fleet: FleetArgs {
                    shards: Some(4),
                    shard_retries: Some(0),
                    shard_backoff_ms: Some(250),
                    shard_heartbeat_s: Some(5),
                    allow_partial: true,
                    ..FleetArgs::default()
                },
            }
        );
        assert_eq!(
            parse(&argv("shard cache stats --cache-dir /tmp/c")).unwrap(),
            Command::CacheStats { dir: "/tmp/c".to_string() }
        );
        assert_eq!(
            parse(&argv("shard cache gc --cache-dir /tmp/c --max-age 3600 --max-bytes 0")).unwrap(),
            Command::CacheGc {
                dir: "/tmp/c".to_string(),
                max_age_s: Some(3600),
                max_bytes: Some(0),
            }
        );
        assert_eq!(
            parse(&argv("shard cache gc --cache-dir /tmp/c")).unwrap(),
            Command::CacheGc { dir: "/tmp/c".to_string(), max_age_s: None, max_bytes: None }
        );
        assert_eq!(
            parse(&argv("run --spec - --shard-json")).unwrap(),
            Command::Run {
                source: SpecSource::File("-".to_string()),
                overrides: Overrides::default(),
                json: false,
                fleet: FleetArgs { shard_json: true, ..FleetArgs::default() },
            }
        );
        assert_eq!(
            parse(&argv("shard split --fig 5 --paper --seeds 40 --shards 8")).unwrap(),
            Command::ShardSplit {
                source: SpecSource::Fig { fig: 5, paper: true },
                shards: 8,
                overrides: Overrides { seeds: Some(40), threads: None },
            }
        );
        // The heartbeat cadence rides along when it fits inside the silence window.
        assert_eq!(
            parse(&argv(
                "run --fig 2 --shards 2 --shard-heartbeat 2 \
                         --shard-heartbeat-interval-ms 200"
            ))
            .unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 2, paper: false },
                overrides: Overrides::default(),
                json: false,
                fleet: FleetArgs {
                    shards: Some(2),
                    shard_heartbeat_s: Some(2),
                    shard_heartbeat_interval_ms: Some(200),
                    ..FleetArgs::default()
                },
            }
        );
        assert_eq!(
            parse(&argv("run --fig 2 --fill-holes salvaged.json --cache-dir /tmp/c --json"))
                .unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 2, paper: false },
                overrides: Overrides::default(),
                json: true,
                fleet: FleetArgs {
                    fill_holes: Some("salvaged.json".to_string()),
                    cache_dir: Some("/tmp/c".to_string()),
                    ..FleetArgs::default()
                },
            }
        );
    }

    #[test]
    fn parses_the_serve_command_lines() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                socket: None,
                workers: serve::DEFAULT_WORKERS,
                queue_depth: serve::DEFAULT_QUEUE_DEPTH,
                deadline_ms: None,
                warm_staleness: serve::DEFAULT_WARM_STALENESS,
                timing: false,
            }
        );
        assert_eq!(
            parse(&argv(
                "serve --socket /tmp/fedopt.sock --workers 4 --queue-depth 1 \
                 --deadline-ms 250 --warm-staleness 8 --timing"
            ))
            .unwrap(),
            Command::Serve {
                socket: Some("/tmp/fedopt.sock".to_string()),
                workers: 4,
                queue_depth: 1,
                deadline_ms: Some(250),
                warm_staleness: 8,
                timing: true,
            }
        );
    }

    #[test]
    fn fill_holes_rejects_documents_it_cannot_resume() {
        let dir = std::env::temp_dir().join(format!("fedopt-fill-holes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache");
        let run_with = |doc: &str| {
            let path = dir.join("report.json");
            std::fs::write(&path, doc).unwrap();
            main_with(&argv(&format!(
                "run --fig 2 --seeds 4 --json --fill-holes {} --cache-dir {}",
                path.display(),
                cache.display()
            )))
        };
        // The spec id of fig2-quick at 4 seeds, as the document must carry it.
        let spec_id = {
            let mut spec = preset(2, false).unwrap();
            Overrides { seeds: Some(4), threads: None }.apply(&mut spec);
            spec.id.clone()
        };
        for (doc, needle) in [
            ("not json", "not a JSON run document"),
            ("{\"reports\": []}", "carries no spec_id"),
            ("{\"spec_id\": \"some-other-spec\"}", "refusing to merge unrelated runs"),
            (&format!("{{\"spec_id\": {:?}}}", spec_id), "no shard_holes"),
            (&format!("{{\"spec_id\": {:?}, \"shard_holes\": []}}", spec_id), "no shard_holes"),
            (
                &format!("{{\"spec_id\": {:?}, \"shard_holes\": [{{\"shard\": 1}}]}}", spec_id),
                "no shard_count",
            ),
        ] {
            let err = run_with(doc).unwrap_err();
            assert!(!err.usage, "{doc:?} must be a runtime error");
            assert!(err.message.contains(needle), "{doc:?}: {}", err.message);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_split_prints_a_parseable_partition() {
        let out = main_with(&argv("shard split --fig 2 --seeds 5 --shards 3")).unwrap();
        let doc = Json::parse(&out).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        let shards: Vec<ExperimentSpec> =
            arr.iter().map(|v| ExperimentSpec::from_json(v).unwrap()).collect();
        let all_seeds: Vec<u64> = shards.iter().flat_map(|s| s.seeds.values()).collect();
        assert_eq!(all_seeds, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shard_json_worker_output_is_a_parseable_shard_result() {
        let mut spec = preset(2, false).unwrap();
        Overrides { seeds: Some(2), threads: Some(1) }.apply(&mut spec);
        let dir = std::env::temp_dir().join(format!("fedopt-cli-worker-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        std::fs::write(&path, spec.to_json_string()).unwrap();
        let out = main_with(&argv(&format!("run --spec {} --shard-json", path.display()))).unwrap();
        let result = crate::shard::ShardResult::from_json_str(&out).unwrap();
        assert_eq!(result.spec_id, spec.id);
        assert_eq!(result.n_seeds, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overrides_bake_into_the_spec() {
        let mut spec = preset(2, false).unwrap();
        Overrides { seeds: Some(5), threads: Some(3) }.apply(&mut spec);
        assert_eq!(spec.seeds.policy, SeedPolicy::Range { start: 0, count: 5 });
        assert_eq!(spec.engine.threads, Some(3));
    }

    #[test]
    fn spec_command_output_is_a_parseable_round_trip() {
        let out = main_with(&argv("spec --fig 3 --seeds 4 --threads 2")).expect("spec must print");
        let parsed = ExperimentSpec::from_json_str(&out).expect("printed spec must parse");
        let mut expected = preset(3, false).unwrap();
        Overrides { seeds: Some(4), threads: Some(2) }.apply(&mut expected);
        assert_eq!(parsed, expected);
    }

    #[test]
    fn spec_preset_output_is_a_parseable_round_trip() {
        let out = main_with(&argv("spec --preset rounds-quick --seeds 2"))
            .expect("sim preset spec must print");
        let parsed = ExperimentSpec::from_json_str(&out).expect("printed spec must parse");
        let mut expected = presets::sim("rounds-quick").unwrap();
        Overrides { seeds: Some(2), threads: None }.apply(&mut expected);
        assert_eq!(parsed, expected);
        assert!(parsed.rounds.is_some(), "sim preset specs carry a rounds section");
    }

    #[test]
    fn unknown_preset_errors_name_both_preset_families() {
        for line in ["spec --preset rounds-nope", "sim --preset rounds-nope"] {
            let err = main_with(&argv(line)).unwrap_err();
            assert!(err.usage, "{line:?} must be a usage error");
            for needle in ["rounds-quick", "rounds-paper", "fig2", "fig8"] {
                assert!(
                    err.message.contains(needle),
                    "{line:?}: error must name both preset families, missing {needle:?} \
                     in {}",
                    err.message
                );
            }
        }
    }

    #[test]
    fn sim_rejects_specs_without_a_rounds_section() {
        let spec = preset(2, false).unwrap();
        let dir = std::env::temp_dir().join(format!("fedopt-cli-sim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        std::fs::write(&path, spec.to_json_string()).unwrap();
        let err = main_with(&argv(&format!("sim --spec {}", path.display()))).unwrap_err();
        assert!(!err.usage, "a rounds-less spec is a runtime error, not a usage one");
        assert!(err.message.contains("fedopt run"), "points back to the sweep verb: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sim_command_renders_both_output_modes() {
        let json =
            main_with(&argv("sim --preset rounds-quick --seeds 1 --threads 1 --json")).unwrap();
        let doc = Json::parse(&json).expect("sim --json must be parseable JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("round_sim"));
        assert_eq!(doc.get("seeds").and_then(Json::as_f64), Some(1.0));
        let table = main_with(&argv("sim --preset rounds-quick --seeds 1 --threads 1")).unwrap();
        for label in ["re-solve", "static", "fedaecs", "elastic"] {
            assert!(table.contains(label), "table must show the {label} policy:\n{table}");
        }
    }

    #[test]
    fn list_names_every_figure() {
        let out = render_list();
        for &fig in &presets::FIGURES {
            assert!(out.contains(&format!("fig{fig}")), "missing fig{fig} in {out}");
        }
        for name in presets::SIM_PRESETS {
            assert!(out.contains(name), "missing sim preset {name} in {out}");
        }
    }

    #[test]
    fn help_is_returned_for_bare_invocations() {
        assert!(main_with(&[]).unwrap().contains("USAGE"));
        assert!(main_with(&argv("--help")).unwrap().contains("--spec FILE"));
    }
}
