//! The `fedopt` command line: one binary for every figure and every spec.
//!
//! The eight historical per-figure binaries collapsed into this module — one **tested**
//! argument parser (the `--seeds/--threads/--paper/--quick` conventions the old bins
//! shared by copy-paste, now unit-tested in one place) and one dispatcher:
//!
//! ```text
//! fedopt list                                   # the figure presets and what they show
//! fedopt spec --fig 2 [--paper] [--seeds N]     # print a figure's ExperimentSpec as JSON
//! fedopt run  --fig 2 [--paper] [--seeds N] [--threads N] [--json]
//! fedopt run  --spec experiment.json [--json]   # run any serialized spec ("-" = stdin)
//! fedopt spec --fig 2 | fedopt run --spec -     # specs are data: pipe them
//! ```
//!
//! `run` prints each report as an aligned table plus CSV (the historical format), or —
//! with `--json` — one deterministic JSON document (reports + work counters) suitable for
//! golden-file diffs; the CI `cli-smoke` job pins exactly that. All diagnostics go to
//! stderr, so stdout is always exactly the payload.
//!
//! The binary itself (the facade crate's `src/bin/fedopt.rs`) is a thin wrapper over
//! [`main_with`], so
//! every branch here is exercisable from unit tests.

use crate::json::Json;
use crate::presets::{self, Variant};
use crate::report::FigureReport;
use crate::spec::{ExperimentSpec, SpecError, SpecRun};
use std::fmt;

/// The usage text (`fedopt help` / any parse error).
pub const USAGE: &str = "\
fedopt — declarative sweep runner for the ICDCS 2022 reproduction

USAGE:
  fedopt list                        list the figure presets
  fedopt spec --fig N [--paper] [--seeds N] [--threads N]
                                     print a figure preset as a JSON ExperimentSpec
  fedopt run --fig N [--paper|--quick] [--seeds N] [--threads N] [--json]
                                     run a figure preset
  fedopt run --spec FILE [--seeds N] [--threads N] [--json]
                                     run a serialized spec (FILE of '-' reads stdin)
  fedopt help                        this text

OPTIONS:
  --fig N       figure number (2..=8)
  --paper       full-scale paper preset (50 devices, 100 draws/point, warm start on)
  --quick       small CI preset (the default)
  --seeds N     override the draws per point with seeds 0..N
  --threads N   pin the sweep-engine worker count
  --json        emit one machine-readable JSON document instead of tables + CSV
  --spec FILE   run the ExperimentSpec in FILE ('-' for stdin)

Environment: FEDOPT_SWEEP_THREADS pins the default worker count; FEDOPT_WARM_START
overrides every spec's warm-start default (0 forces cold, 1 forces warm).";

/// A CLI failure: a message for stderr (usage problems include the usage text).
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// What went wrong.
    pub message: String,
    /// Whether the error is a usage mistake (print [`USAGE`] along with it).
    pub usage: bool,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self { message: message.into(), usage: true }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self { message: message.into(), usage: false }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        CliError::runtime(e.to_string())
    }
}

/// Where a `run` gets its spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// A figure preset.
    Fig {
        /// The figure number.
        fig: u8,
        /// Paper scale instead of quick.
        paper: bool,
    },
    /// A serialized spec file (`"-"` = stdin).
    File(String),
}

/// The `--seeds` / `--threads` overrides shared by `run` and `spec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Overrides {
    /// Replace the spec's seed policy with the range `0..N`.
    pub seeds: Option<u64>,
    /// Pin the engine worker count.
    pub threads: Option<usize>,
}

impl Overrides {
    fn apply(self, spec: &mut ExperimentSpec) {
        if let Some(n) = self.seeds {
            spec.override_seed_count(n);
        }
        if let Some(n) = self.threads {
            spec.engine.threads = Some(n);
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fedopt run …`
    Run {
        /// The spec to run.
        source: SpecSource,
        /// Seed/thread overrides.
        overrides: Overrides,
        /// Emit the JSON document instead of tables.
        json: bool,
    },
    /// `fedopt spec …`
    Spec {
        /// The figure number.
        fig: u8,
        /// Paper scale instead of quick.
        paper: bool,
        /// Baked into the printed spec.
        overrides: Overrides,
    },
    /// `fedopt list`
    List,
    /// `fedopt help` / `--help` / no arguments.
    Help,
}

// ---------------------------------------------------------------------------
// The one argument parser (inherited from the historical bins' common.rs)
// ---------------------------------------------------------------------------

/// Removes `--flag` from `args`; returns whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Removes one `--flag VALUE` / `--flag=VALUE` occurrence from `args`.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, CliError> {
    let prefix = format!("{flag}=");
    let Some(idx) = args.iter().position(|a| a == flag || a.starts_with(&prefix)) else {
        return Ok(None);
    };
    let arg = args.remove(idx);
    if let Some(value) = arg.strip_prefix(&prefix) {
        return Ok(Some(value.to_string()));
    }
    if idx < args.len() && !args[idx].starts_with("--") {
        return Ok(Some(args.remove(idx)));
    }
    Err(CliError::usage(format!("{flag} requires a value (e.g. `{flag} 4`)")))
}

/// Removes one positive-integer-valued flag — the `--seeds N` / `--threads N` contract of
/// the historical figure binaries.
fn take_positive(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, CliError> {
    match take_value(args, flag)? {
        None => Ok(None),
        Some(value) => value.parse::<u64>().ok().filter(|&n| n > 0).map(Some).ok_or_else(|| {
            CliError::usage(format!(
                "{flag} requires a positive integer, got {value:?} (e.g. `{flag} 4`)"
            ))
        }),
    }
}

fn take_overrides(args: &mut Vec<String>) -> Result<Overrides, CliError> {
    let seeds = take_positive(args, "--seeds")?;
    if let Some(n) = seeds {
        // The spec's own validation rejects this too, but only at run time — fail the
        // parse so `fedopt spec --seeds …` can never print an invalid spec either.
        if n > crate::spec::MAX_SEEDS {
            return Err(CliError::usage(format!(
                "--seeds {n} exceeds the per-spec maximum of {} — shard larger sweeps \
                 into seed sub-ranges",
                crate::spec::MAX_SEEDS
            )));
        }
    }
    Ok(Overrides { seeds, threads: take_positive(args, "--threads")?.map(|n| n as usize) })
}

fn take_fig(args: &mut Vec<String>) -> Result<Option<u8>, CliError> {
    match take_value(args, "--fig")? {
        None => Ok(None),
        Some(value) => {
            let fig =
                value.parse::<u8>().ok().filter(|f| presets::FIGURES.contains(f)).ok_or_else(
                    || {
                        CliError::usage(format!(
                            "--fig requires a figure number in 2..=8, got {value:?}"
                        ))
                    },
                )?;
            Ok(Some(fig))
        }
    }
}

/// Returns `(paper, either_switch_present)`.
fn take_variant(args: &mut Vec<String>) -> Result<(bool, bool), CliError> {
    let paper = take_switch(args, "--paper");
    let quick = take_switch(args, "--quick");
    if paper && quick {
        return Err(CliError::usage("--paper and --quick are mutually exclusive"));
    }
    Ok((paper, paper || quick))
}

fn reject_leftovers(args: &[String]) -> Result<(), CliError> {
    if let Some(first) = args.first() {
        return Err(CliError::usage(format!("unrecognised argument {first:?}")));
    }
    Ok(())
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// [`CliError`] with `usage = true` on any unknown or malformed argument.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some((verb, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    let mut rest: Vec<String> = rest.to_vec();
    match verb.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => {
            reject_leftovers(&rest)?;
            Ok(Command::List)
        }
        "spec" => {
            let fig = take_fig(&mut rest)?
                .ok_or_else(|| CliError::usage("`fedopt spec` requires --fig N"))?;
            let (paper, _) = take_variant(&mut rest)?;
            let overrides = take_overrides(&mut rest)?;
            reject_leftovers(&rest)?;
            Ok(Command::Spec { fig, paper, overrides })
        }
        "run" => {
            let fig = take_fig(&mut rest)?;
            let file = take_value(&mut rest, "--spec")?;
            let (paper, variant_given) = take_variant(&mut rest)?;
            let overrides = take_overrides(&mut rest)?;
            let json = take_switch(&mut rest, "--json");
            reject_leftovers(&rest)?;
            let source = match (fig, file) {
                (Some(fig), None) => SpecSource::Fig { fig, paper },
                (None, Some(path)) => {
                    if variant_given {
                        return Err(CliError::usage(
                            "--paper/--quick select a preset; they cannot modify --spec FILE",
                        ));
                    }
                    SpecSource::File(path)
                }
                (Some(_), Some(_)) => {
                    return Err(CliError::usage("--fig and --spec are mutually exclusive"))
                }
                (None, None) => {
                    return Err(CliError::usage("`fedopt run` requires --fig N or --spec FILE"))
                }
            };
            Ok(Command::Run { source, overrides, json })
        }
        other => Err(CliError::usage(format!("unknown command {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

fn preset(fig: u8, paper: bool) -> Result<ExperimentSpec, CliError> {
    let variant = if paper { Variant::Paper } else { Variant::Quick };
    presets::spec(fig, variant)
        .ok_or_else(|| CliError::usage(format!("no preset for figure {fig}")))
}

fn load_spec(source: &SpecSource) -> Result<ExperimentSpec, CliError> {
    match source {
        SpecSource::Fig { fig, paper } => preset(*fig, *paper),
        SpecSource::File(path) => {
            let text = if path == "-" {
                std::io::read_to_string(std::io::stdin())
                    .map_err(|e| CliError::runtime(format!("reading stdin: {e}")))?
            } else {
                std::fs::read_to_string(path)
                    .map_err(|e| CliError::runtime(format!("reading {path}: {e}")))?
            };
            Ok(ExperimentSpec::from_json_str(&text)?)
        }
    }
}

/// The `list` payload.
pub fn render_list() -> String {
    let mut out = String::from("figure  preset ids      what it shows\n");
    for &fig in &presets::FIGURES {
        let summary = presets::summary(fig).expect("every listed figure has a summary");
        out.push_str(&format!("fig{fig}    quick | paper   {summary}\n"));
    }
    out.push_str("\nrun one with `fedopt run --fig N [--paper]`; print its spec with `fedopt spec --fig N`.\n");
    out
}

/// The deterministic JSON document `fedopt run --json` emits: the spec identity, every
/// rendered report (see [`FigureReport::to_json`]), and the sweep's work counters.
pub fn run_document(spec: &ExperimentSpec, run: &SpecRun) -> Json {
    let counters = &run.result.counters;
    let solver = &counters.solver;
    Json::obj([
        ("schema_version", Json::uint(crate::spec::SCHEMA_VERSION)),
        ("spec_id", Json::Str(spec.id.clone())),
        ("reports", Json::Arr(run.reports.iter().map(FigureReport::to_json).collect())),
        (
            "counters",
            Json::obj([
                ("scenarios_built", Json::uint(counters.scenarios_built as u64)),
                ("cells_evaluated", Json::uint(counters.cells_evaluated as u64)),
                (
                    "solver",
                    Json::obj([
                        ("outer_iterations", Json::uint(solver.outer_iterations)),
                        ("jong_iterations", Json::uint(solver.jong_iterations)),
                        ("kkt_solves", Json::uint(solver.kkt_solves)),
                        ("mu_bisect_evals", Json::uint(solver.mu_bisect_evals)),
                        ("sp2_fast_path_hits", Json::uint(solver.sp2_fast_path_hits)),
                    ]),
                ),
            ]),
        ),
    ])
}

/// Renders a finished run: the historical tables + CSV, or the JSON document.
pub fn render_run(spec: &ExperimentSpec, run: &SpecRun, json: bool) -> String {
    if json {
        return run_document(spec, run).to_pretty_string();
    }
    let mut out = String::new();
    for report in &run.reports {
        out.push_str(&report.to_table_string());
        out.push('\n');
        out.push_str(&format!("--- CSV ({}) ---\n", report.id));
        out.push_str(&report.to_csv_string());
        out.push('\n');
    }
    out
}

/// Parses and executes a command line, returning the stdout payload. Progress goes to
/// stderr so stdout stays pipeable (`fedopt spec … | fedopt run --spec -`).
///
/// # Errors
///
/// [`CliError`] for usage mistakes, unreadable/invalid specs, and sweep failures.
pub fn main_with(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::List => Ok(render_list()),
        Command::Spec { fig, paper, overrides } => {
            let mut spec = preset(fig, paper)?;
            overrides.apply(&mut spec);
            Ok(spec.to_json_string())
        }
        Command::Run { source, overrides, json } => {
            let mut spec = load_spec(&source)?;
            overrides.apply(&mut spec);
            let engine = spec.engine.to_engine();
            eprintln!(
                "running {} ({} points x {} arms x {} draws/point, {} threads, warm start {})...",
                spec.id,
                spec.axis.values.len(),
                spec.arms.len(),
                spec.seeds.len(),
                engine.threads(),
                if engine.warm_starts() { "on" } else { "off" },
            );
            let run = spec.run_with_engine(&engine)?;
            Ok(render_run(&spec, &run, json))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SeedPolicy;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_the_documented_command_lines() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
        assert_eq!(
            parse(&argv("spec --fig 2")).unwrap(),
            Command::Spec { fig: 2, paper: false, overrides: Overrides::default() }
        );
        assert_eq!(
            parse(&argv("run --fig 7 --paper --seeds 25 --threads 8 --json")).unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 7, paper: true },
                overrides: Overrides { seeds: Some(25), threads: Some(8) },
                json: true,
            }
        );
        // `--flag=value` form and flag order both work (the historical bins' contract).
        assert_eq!(
            parse(&argv("run --json --seeds=3 --fig=2")).unwrap(),
            Command::Run {
                source: SpecSource::Fig { fig: 2, paper: false },
                overrides: Overrides { seeds: Some(3), threads: None },
                json: true,
            }
        );
        assert_eq!(
            parse(&argv("run --spec - --json")).unwrap(),
            Command::Run {
                source: SpecSource::File("-".to_string()),
                overrides: Overrides::default(),
                json: true,
            }
        );
    }

    #[test]
    fn rejects_malformed_command_lines_with_usage_errors() {
        for bad in [
            "frobnicate",
            "run",
            "run --fig 1",
            "run --fig nine",
            "run --fig 2 --spec x.json",
            "run --fig 2 --paper --quick",
            "run --spec x.json --paper",
            "run --fig 2 --seeds 0",
            "run --fig 2 --seeds 9007199254740993",
            "run --spec x.json --quick",
            "run --fig 2 --seeds",
            "run --fig 2 --threads -3",
            "run --fig 2 --threads two",
            "spec",
            "spec --fig 2 extra",
            "list --fig 2",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert!(err.usage, "{bad:?} must be a usage error, got {err:?}");
        }
    }

    #[test]
    fn overrides_bake_into_the_spec() {
        let mut spec = preset(2, false).unwrap();
        Overrides { seeds: Some(5), threads: Some(3) }.apply(&mut spec);
        assert_eq!(spec.seeds.policy, SeedPolicy::Range { start: 0, count: 5 });
        assert_eq!(spec.engine.threads, Some(3));
    }

    #[test]
    fn spec_command_output_is_a_parseable_round_trip() {
        let out = main_with(&argv("spec --fig 3 --seeds 4 --threads 2")).expect("spec must print");
        let parsed = ExperimentSpec::from_json_str(&out).expect("printed spec must parse");
        let mut expected = preset(3, false).unwrap();
        Overrides { seeds: Some(4), threads: Some(2) }.apply(&mut expected);
        assert_eq!(parsed, expected);
    }

    #[test]
    fn list_names_every_figure() {
        let out = render_list();
        for &fig in &presets::FIGURES {
            assert!(out.contains(&format!("fig{fig}")), "missing fig{fig} in {out}");
        }
    }

    #[test]
    fn help_is_returned_for_bare_invocations() {
        assert!(main_with(&[]).unwrap().contains("USAGE"));
        assert!(main_with(&argv("--help")).unwrap().contains("--spec FILE"));
    }
}
