//! A small, dependency-free JSON value model with a deterministic writer and a strict
//! parser — the wire format of [`crate::spec::ExperimentSpec`] and the machine-readable
//! [`crate::report::FigureReport`] emitter.
//!
//! The build environment cannot fetch `serde_json` (the workspace's `serde` is an offline
//! marker shim), so this module implements exactly the subset the experiment stack needs:
//!
//! * **Deterministic output** — [`Json::Obj`] preserves insertion order (it is a
//!   `Vec<(String, Json)>`, not a hash map), so serializing the same value always produces
//!   the same bytes: specs can be diffed, cached by content hash, and compared against
//!   committed golden files byte for byte.
//! * **Lossless floats** — numbers are written with Rust's shortest-round-trip `f64`
//!   formatting and parsed with `str::parse::<f64>` (correctly rounded), so
//!   `parse(write(x)) == x` bit for bit for every finite `f64`. Non-finite values have no
//!   JSON representation; writers must map them (reports emit `null` for `NaN` cells) and
//!   the writer panics on a non-finite number as a programming error.
//! * **Strictness** — the parser rejects duplicate object keys, trailing input, and any
//!   non-JSON syntax, with byte offsets in errors. Integer precision: all numbers travel
//!   as `f64`, so integers are exact below `2^53` (the spec layer validates its `u64`
//!   seeds against that bound instead of silently rounding; `2^53` itself is excluded
//!   because `2^53 + 1` would alias onto it).

use std::fmt;

/// A JSON value. Object member order is preserved (and significant for output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (see the module docs for the integer-precision contract).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from members (a readability helper for writer code).
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from a `u64`, panicking when the value exceeds the exact-`f64` range
    /// (callers validate their integers against `2^53`; see the module docs).
    pub fn uint(value: u64) -> Self {
        assert!(value <= MAX_EXACT_INT, "integer {value} exceeds the exact JSON range (2^53)");
        Json::Num(value as f64)
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, if it is an integer-valued number in
    /// `[0, 2^53)` (see [`MAX_EXACT_INT`] for why the bound is exclusive of `2^53`).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= MAX_EXACT_INT as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as an exact `usize` (see [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation and a trailing newline — the canonical form
    /// for committed spec files and golden reports.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                assert!(n.is_finite(), "non-finite numbers have no JSON representation");
                // Rust's f64 Display is the shortest string that parses back to the same
                // bits — the lossless-float contract of this module.
                out.push_str(&format!("{n}"));
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, members.len(), '{', '}', |out, i, d| {
                    let (key, value) = &members[i];
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed, trailing content not).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the JSON document"));
        }
        Ok(value)
    }
}

/// Largest integer that round-trips *unambiguously* through an `f64`: `2^53 - 1`.
/// `2^53` itself is representable, but `2^53 + 1` rounds onto it, so admitting `2^53`
/// would let two distinct written integers parse to the same value — the silent rounding
/// this module promises to reject.
pub const MAX_EXACT_INT: u64 = (1 << 53) - 1;

/// The 64-bit FNV-1a hash of a byte string.
///
/// This is the content hash behind the shard result cache ([`crate::shard`]): cache keys
/// hash the canonical compact JSON of a shard spec, and cache entries carry the hash of
/// their payload so truncation or corruption is detected instead of trusted. FNV-1a is
/// deliberate — a tiny, dependency-free, *stable* hash (the constants are part of the
/// wire format, so `std`'s randomized `DefaultHasher` would not do); it is not
/// collision-resistant against adversaries, which is fine for a local result cache whose
/// entries are verified against the full spec text by the reader.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting depth [`Json::parse`] accepts. Bounds the parser's
/// recursion so a corrupt or adversarial document returns a [`JsonError`] instead of
/// overflowing the stack (mirrors `serde_json`'s default limit).
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Runs a container parser one nesting level deeper, rejecting depth > [`MAX_DEPTH`].
    fn nested(
        &mut self,
        parse: impl FnOnce(&mut Self) -> Result<Json, JsonError>,
    ) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting exceeds {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_offset = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    offset: key_offset,
                    message: format!("duplicate object key {key:?}"),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a maximal run of plain (unescaped, non-terminator) bytes at once.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                if self.peek().is_some_and(|c| c < 0x20) {
                    return Err(self.err("unescaped control character in string"));
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be followed by an
                            // escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!("plain-run loop stops only at '\"', '\\\\', or EOF"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // `from_str_radix` tolerates a leading '+', which JSON does not: require exactly
        // four hex digits by hand.
        if !self.bytes[self.pos..end].iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("invalid \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        // Leading zeros are invalid JSON ("01"), a lone zero is fine.
        if self.bytes[digits_start] == b'0' && self.pos > digits_start + 1 {
            return Err(JsonError {
                offset: digits_start,
                message: "leading zero in number".to_string(),
            });
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let value: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("number {text:?} does not fit an f64"),
        })?;
        if !value.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number {text:?} overflows an f64"),
            });
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::Str("fig2 — \"quick\"\n".to_string())),
            ("count", Json::uint(100)),
            ("ratio", Json::Num(0.1)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("values", Json::Arr(vec![Json::Num(-1.5e-9), Json::Num(5.0), Json::Arr(vec![])])),
            ("empty", Json::Obj(vec![])),
        ]);
        for text in [doc.to_compact_string(), doc.to_pretty_string()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "diverged on {text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            9.007199254740993e15,
            5.0,
            -0.0,
        ] {
            let text = Json::Num(v).to_compact_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text} -> {back}");
        }
    }

    #[test]
    fn integers_are_exact_up_to_2_pow_53() {
        for v in [0u64, 1, 100, MAX_EXACT_INT - 1, MAX_EXACT_INT] {
            let text = Json::uint(v).to_compact_string();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
        }
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        // 2^53 and 2^53 + 1 are indistinguishable once parsed (the literal rounds onto
        // 2^53), so both must be rejected rather than silently collapsing onto one seed.
        assert_eq!(Json::parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(Json::parse("9007199254740993").unwrap().as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(MAX_DEPTH + 1);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let mut nested_obj = String::new();
        for _ in 0..(MAX_DEPTH * 4) {
            nested_obj.push_str("{\"k\":");
        }
        assert!(Json::parse(&nested_obj).is_err());
        // Exactly at the limit still parses.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn strict_parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1 \"b\":2}",
            "{\"a\":1}extra",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "nul",
            "NaN",
            "+1",
            "{\"dup\":1,\"dup\":2}",
            "\"\\ud800\"",
            r#""\u+041""#,
            r#""\u00g1""#,
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let parsed = Json::parse(r#""a\u00e9\n\t\"\\\u0001 \ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "aé\n\t\"\\\u{1} 😀");
        let rewritten = parsed.to_compact_string();
        assert_eq!(Json::parse(&rewritten).unwrap(), parsed);
    }

    #[test]
    fn errors_carry_byte_offsets() {
        let err = Json::parse("{\"a\": nope}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"), "{err}");
    }

    #[test]
    fn accessors_select_by_type() {
        let doc = Json::parse(r#"{"s":"x","n":2,"b":false,"a":[1],"o":{}}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("n").unwrap().as_usize(), Some(2));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(doc.get("o").unwrap().as_object().unwrap().is_empty());
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.get("s").unwrap().as_f64(), None);
    }

    #[test]
    fn fnv1a_matches_the_published_test_vectors() {
        // The constants are part of the cache wire format: pin them to the reference
        // FNV-1a 64 vectors so a refactor can never silently re-key every cache.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
        // Sensitive to every byte and to order.
        assert_ne!(fnv1a_64(b"ab"), fnv1a_64(b"ba"));
    }
}
